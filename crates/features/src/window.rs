//! Raw per-window accumulation of everything the three feature vectors need.
//!
//! Windows are accumulated at a fine fixed granularity ([`SUBWINDOW`]) and
//! later aggregated to any collection period that is a multiple of it. This
//! lets one (expensive) execution serve every period in the paper's sweep
//! {5K, 8K, 9K, 10K, 11K, 12K, 15K, 19K} (Fig 3a).

use rhmd_trace::exec::{ExecEvent, Observer};
use rhmd_trace::isa::OPCODE_COUNT;
use rhmd_uarch::events::{CounterSet, COUNTER_DIMS};
use rhmd_uarch::faults::FaultModel;
use rhmd_uarch::{CoreModel, CounterSource};
use serde::{Deserialize, Serialize};

/// Fine accumulation granularity, in committed instructions.
pub const SUBWINDOW: u32 = 1_000;

/// Number of bins in the memory-delta histogram (paper's Memory feature).
pub const MEM_BINS: usize = 16;

/// Raw statistics of one window of committed instructions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawWindow {
    /// Committed instructions in the window (== the period except possibly
    /// in the final, truncated window).
    pub instructions: u64,
    /// Executed count of each opcode class.
    pub opcode_counts: [u64; OPCODE_COUNT],
    /// Histogram over log2-binned deltas between consecutive memory-access
    /// addresses.
    pub mem_delta_hist: [u64; MEM_BINS],
    /// Hardware event counters for the window.
    pub counters: CounterSet,
}

impl Default for RawWindow {
    fn default() -> RawWindow {
        RawWindow {
            instructions: 0,
            opcode_counts: [0; OPCODE_COUNT],
            mem_delta_hist: [0; MEM_BINS],
            counters: CounterSet::default(),
        }
    }
}

impl RawWindow {
    /// Merges `other` into `self` (for aggregating subwindows).
    pub fn merge(&mut self, other: &RawWindow) {
        self.instructions += other.instructions;
        for (a, b) in self.opcode_counts.iter_mut().zip(&other.opcode_counts) {
            *a += b;
        }
        for (a, b) in self.mem_delta_hist.iter_mut().zip(&other.mem_delta_hist) {
            *a += b;
        }
        self.counters += other.counters;
    }

    /// Total memory accesses recorded in the delta histogram.
    pub fn mem_accesses(&self) -> u64 {
        self.mem_delta_hist.iter().sum()
    }
}

/// Maps an address delta to its histogram bin.
///
/// Bin 0 holds repeated addresses (delta 0); bin `b ≥ 1` holds deltas in
/// `[2^(b-1), 2^b)`, with the last bin absorbing everything larger.
#[inline]
pub fn delta_bin(prev: u64, addr: u64) -> usize {
    let delta = prev.abs_diff(addr);
    if delta == 0 {
        0
    } else {
        ((64 - delta.leading_zeros()) as usize).min(MEM_BINS - 1)
    }
}

/// An [`Observer`] that drives a commit-stage core and slices the stream
/// into [`SUBWINDOW`]-sized [`RawWindow`]s.
///
/// Generic over the core so the same accumulation logic runs against the
/// optimized [`CoreModel`] (the default) or the frozen
/// [`rhmd_uarch::ReferenceCore`] differential oracle.
///
/// # Examples
///
/// ```
/// use rhmd_features::window::WindowAccumulator;
/// use rhmd_trace::exec::ExecLimits;
/// use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};
/// use rhmd_uarch::{CoreConfig, CoreModel};
///
/// let program = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(0);
/// let mut acc = WindowAccumulator::new(CoreModel::new(CoreConfig::default()));
/// program.execute(ExecLimits::instructions(5_000), &mut acc);
/// assert_eq!(acc.finish().len(), 5);
/// ```
#[derive(Debug)]
pub struct WindowAccumulator<C = CoreModel> {
    core: C,
    current: RawWindow,
    windows: Vec<RawWindow>,
    last_mem_addr: Option<u64>,
}

impl<C: Observer + CounterSource> WindowAccumulator<C> {
    /// Creates an accumulator running the stream through `core`.
    pub fn new(core: C) -> WindowAccumulator<C> {
        WindowAccumulator {
            core,
            current: RawWindow::default(),
            windows: Vec::new(),
            last_mem_addr: None,
        }
    }

    /// Finalizes accumulation, returning all complete subwindows plus a
    /// trailing partial subwindow if one is non-empty.
    pub fn finish(mut self) -> Vec<RawWindow> {
        self.seal_current();
        self.windows
    }

    fn seal_current(&mut self) {
        if self.current.instructions > 0 {
            let mut window = std::mem::take(&mut self.current);
            window.counters = self.core.drain_counters();
            self.windows.push(window);
        }
    }
}

impl<C: Observer + CounterSource> Observer for WindowAccumulator<C> {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        self.core.observe(ev);
        let w = &mut self.current;
        w.instructions += 1;
        w.opcode_counts[ev.opcode.index()] += 1;
        if let Some(mem) = ev.mem {
            if let Some(prev) = self.last_mem_addr {
                w.mem_delta_hist[delta_bin(prev, mem.addr)] += 1;
            }
            self.last_mem_addr = Some(mem.addr);
        }
        if w.instructions == u64::from(SUBWINDOW) {
            self.seal_current();
        }
    }
}

/// Aggregates fine subwindows into collection windows of `period`
/// instructions, dropping a trailing partial window.
///
/// # Panics
///
/// Panics if `period` is zero or not a multiple of [`SUBWINDOW`].
pub fn aggregate(subwindows: &[RawWindow], period: u32) -> Vec<RawWindow> {
    assert!(
        period > 0 && period.is_multiple_of(SUBWINDOW),
        "period {period} must be a positive multiple of {SUBWINDOW}"
    );
    let per = (period / SUBWINDOW) as usize;
    subwindows
        .chunks(per)
        .filter(|chunk| {
            chunk.len() == per && chunk.iter().all(|w| w.instructions == u64::from(SUBWINDOW))
        })
        .map(|chunk| {
            let mut merged = RawWindow::default();
            for w in chunk {
                merged.merge(w);
            }
            merged
        })
        .collect()
}

/// Like [`aggregate`], but tolerant of gaps: chunks whose subwindows were
/// dropped or coalesced by fault injection are kept as long as they carry at
/// least `min_fill` of the period's instructions. Feature projection
/// normalizes by the window's *actual* counts, so short windows renormalize
/// instead of skewing low.
///
/// With `min_fill = 1.0` and a clean stream this matches [`aggregate`]
/// exactly (coalesced reads can exceed the period; they are kept too).
///
/// # Panics
///
/// Panics if `period` is zero or not a multiple of [`SUBWINDOW`].
pub fn aggregate_with_gaps(subwindows: &[RawWindow], period: u32, min_fill: f64) -> Vec<RawWindow> {
    assert!(
        period > 0 && period.is_multiple_of(SUBWINDOW),
        "period {period} must be a positive multiple of {SUBWINDOW}"
    );
    let per = (period / SUBWINDOW) as usize;
    subwindows
        .chunks(per)
        .filter_map(|chunk| {
            let mut merged = RawWindow::default();
            for w in chunk {
                merged.merge(w);
            }
            let fill = merged.instructions as f64 / f64::from(period);
            (merged.instructions > 0 && fill >= min_fill).then_some(merged)
        })
        .collect()
}

/// Runs a subwindow stream through a counter [`FaultModel`].
///
/// Every observable channel of a [`RawWindow`] is treated as a hardware
/// counter: the [`CounterSet`] channels first, then the opcode counts, then
/// the memory-delta histogram bins. The `instructions` field is the
/// ground-truth committed count of the read interval and is *not*
/// corrupted — faults disturb observation, not execution — but reads lost
/// to interrupt coalescing merge whole subwindows, so downstream
/// aggregation sees over-full and missing windows exactly as a real sampler
/// would.
///
/// A zero-intensity model returns a bit-exact copy of the input.
pub fn apply_faults(subwindows: &[RawWindow], model: &FaultModel) -> Vec<RawWindow> {
    if model.is_identity() {
        return subwindows.to_vec();
    }
    let mut out: Vec<RawWindow> = Vec::with_capacity(subwindows.len());
    let mut pending: Option<RawWindow> = None;
    let mut prev: Option<RawWindow> = None;
    for (idx, clean) in subwindows.iter().enumerate() {
        let window = idx as u64;
        let mut merged = pending.take().unwrap_or_default();
        merged.merge(clean);
        if model.drops_window(window) {
            pending = Some(merged);
            continue;
        }
        let mut read = merged;
        model.corrupt_counters(
            window,
            &mut read.counters,
            prev.as_ref().map(|p: &RawWindow| &p.counters),
        );
        for (i, v) in read.opcode_counts.iter_mut().enumerate() {
            let ch = (COUNTER_DIMS + i) as u64;
            *v = model.corrupt_value(window, ch, *v, prev.as_ref().map(|p| p.opcode_counts[i]));
        }
        for (i, v) in read.mem_delta_hist.iter_mut().enumerate() {
            let ch = (COUNTER_DIMS + OPCODE_COUNT + i) as u64;
            *v = model.corrupt_value(window, ch, *v, prev.as_ref().map(|p| p.mem_delta_hist[i]));
        }
        prev = Some(read.clone());
        out.push(read);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_trace::exec::ExecLimits;
    use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};
    use rhmd_uarch::faults::FaultConfig;
    use rhmd_uarch::CoreConfig;

    fn subwindows(n_instr: u64) -> Vec<RawWindow> {
        let p = ProgramGenerator::new(benign_profile(BenignClass::Archiver)).generate(1);
        let mut acc = WindowAccumulator::new(CoreModel::new(CoreConfig::default()));
        p.execute(ExecLimits::instructions(n_instr), &mut acc);
        acc.finish()
    }

    #[test]
    fn subwindow_sizes_are_exact() {
        let subs = subwindows(10_500);
        assert_eq!(subs.len(), 11);
        for w in &subs[..10] {
            assert_eq!(w.instructions, 1_000);
            assert_eq!(w.opcode_counts.iter().sum::<u64>(), 1_000);
            assert_eq!(w.counters.instructions, 1_000);
        }
        assert_eq!(subs[10].instructions, 500);
    }

    #[test]
    fn aggregation_merges_counts() {
        let subs = subwindows(20_000);
        let windows = aggregate(&subs, 5_000);
        assert_eq!(windows.len(), 4);
        for w in &windows {
            assert_eq!(w.instructions, 5_000);
            assert_eq!(w.opcode_counts.iter().sum::<u64>(), 5_000);
        }
    }

    #[test]
    fn aggregation_drops_partial_tail() {
        let subs = subwindows(12_500);
        assert_eq!(aggregate(&subs, 10_000).len(), 1);
        assert_eq!(aggregate(&subs, 4_000).len(), 3);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn aggregation_rejects_bad_period() {
        let subs = subwindows(2_000);
        let _ = aggregate(&subs, 1_500);
    }

    #[test]
    fn delta_bins() {
        assert_eq!(delta_bin(100, 100), 0);
        assert_eq!(delta_bin(100, 101), 1);
        assert_eq!(delta_bin(100, 102), 2); // delta 2 → [2,4)
        assert_eq!(delta_bin(100, 98), 2); // absolute value
        assert_eq!(delta_bin(0, 1 << 20), MEM_BINS - 1); // saturates
    }

    #[test]
    fn histogram_counts_consecutive_pairs() {
        let subs = subwindows(5_000);
        let total: u64 = subs.iter().map(RawWindow::mem_accesses).sum();
        // Every memory access after the first contributes one delta.
        assert!(total > 0);
        let mem_instrs: u64 = subs
            .iter()
            .flat_map(|w| {
                rhmd_trace::isa::Opcode::ALL
                    .iter()
                    .filter(|op| op.is_memory())
                    .map(move |op| w.opcode_counts[op.index()])
            })
            .sum();
        assert_eq!(total, mem_instrs - 1);
    }

    #[test]
    fn apply_faults_identity_is_bit_exact() {
        let subs = subwindows(8_000);
        let model = FaultModel::new(FaultConfig::none(), 3);
        assert_eq!(apply_faults(&subs, &model), subs);
    }

    #[test]
    fn apply_faults_preserves_ground_truth_instructions() {
        let subs = subwindows(8_000);
        let model = FaultModel::new(FaultConfig::noise(0.3), 3);
        let faulted = apply_faults(&subs, &model);
        assert_eq!(faulted.len(), subs.len());
        for (f, c) in faulted.iter().zip(&subs) {
            assert_eq!(f.instructions, c.instructions);
        }
        assert_ne!(faulted, subs);
    }

    #[test]
    fn dropped_subwindows_coalesce() {
        let subs = subwindows(20_000);
        let model = FaultModel::new(FaultConfig::dropping(0.4), 5);
        let faulted = apply_faults(&subs, &model);
        assert!(faulted.len() < subs.len());
        // Coalesced reads carry the merged instruction count.
        assert!(faulted.iter().any(|w| w.instructions >= 2_000));
    }

    #[test]
    fn gap_tolerant_aggregation_keeps_short_windows() {
        let subs = subwindows(20_000);
        let model = FaultModel::new(FaultConfig::dropping(0.4), 5);
        let faulted = apply_faults(&subs, &model);
        // Strict aggregation discards windows whose chunks were disturbed …
        let strict = aggregate(&faulted, 5_000);
        // … while the gap-tolerant variant keeps anything half-full.
        let tolerant = aggregate_with_gaps(&faulted, 5_000, 0.5);
        assert!(tolerant.len() >= strict.len());
        assert!(!tolerant.is_empty());
        for w in &tolerant {
            assert!(w.instructions >= 2_500);
        }
    }

    #[test]
    fn gap_tolerant_matches_strict_on_clean_streams() {
        let subs = subwindows(20_000);
        assert_eq!(
            aggregate_with_gaps(&subs, 5_000, 1.0),
            aggregate(&subs, 5_000)
        );
    }

    #[test]
    fn merge_is_additive() {
        let subs = subwindows(3_000);
        let mut merged = RawWindow::default();
        for w in &subs {
            merged.merge(w);
        }
        assert_eq!(merged.instructions, 3_000);
        assert_eq!(
            merged.counters.instructions,
            subs.iter().map(|w| w.counters.instructions).sum::<u64>()
        );
    }
}
