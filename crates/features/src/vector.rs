//! Feature-vector definitions: the three vectors of paper §3 plus the
//! "combined" vectors the attacker uses against RHMDs (Figs 14–15).

use crate::window::{RawWindow, MEM_BINS};
use rhmd_trace::isa::Opcode;
use rhmd_uarch::events::COUNTER_DIMS;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which low-level feature a detector observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Executed instruction mix over a selected opcode subset (paper:
    /// "Instructions").
    Instructions,
    /// Histogram of address deltas between consecutive memory references
    /// (paper: "Memory").
    Memory,
    /// Architectural event rates (paper: "Architectural").
    Architectural,
}

impl FeatureKind {
    /// The three base kinds.
    pub const ALL: [FeatureKind; 3] = [
        FeatureKind::Instructions,
        FeatureKind::Memory,
        FeatureKind::Architectural,
    ];
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureKind::Instructions => f.write_str("Instructions"),
            FeatureKind::Memory => f.write_str("Memory"),
            FeatureKind::Architectural => f.write_str("Architectural"),
        }
    }
}

/// A complete feature definition: what to extract and over which collection
/// period.
///
/// `FeatureSpec` is the unit of detector diversity in RHMD: base detectors
/// differ in `kind` and/or `period`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Kinds concatenated into the vector. One entry for a base detector;
    /// several for the attacker's "combined" reverse-engineering vectors.
    pub kinds: Vec<FeatureKind>,
    /// Collection period in committed instructions.
    pub period: u32,
    /// Opcode subset observed by [`FeatureKind::Instructions`] components
    /// (the top-delta opcodes chosen on the victim's training set).
    pub opcodes: Vec<Opcode>,
}

impl FeatureSpec {
    /// A single-kind spec.
    pub fn new(kind: FeatureKind, period: u32, opcodes: Vec<Opcode>) -> FeatureSpec {
        FeatureSpec {
            kinds: vec![kind],
            period,
            opcodes,
        }
    }

    /// A combined spec concatenating several kinds (attacker's union
    /// feature, Figs 14–15).
    pub fn combined(kinds: Vec<FeatureKind>, period: u32, opcodes: Vec<Opcode>) -> FeatureSpec {
        FeatureSpec {
            kinds,
            period,
            opcodes,
        }
    }

    /// Dimensionality of vectors produced by this spec.
    pub fn dims(&self) -> usize {
        self.kinds
            .iter()
            .map(|k| match k {
                FeatureKind::Instructions => self.opcodes.len(),
                FeatureKind::Memory => MEM_BINS,
                FeatureKind::Architectural => COUNTER_DIMS,
            })
            .sum()
    }

    /// Human-readable names of each dimension.
    pub fn dim_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.dims());
        for kind in &self.kinds {
            match kind {
                FeatureKind::Instructions => {
                    names.extend(self.opcodes.iter().map(|op| format!("freq[{op}]")));
                }
                FeatureKind::Memory => {
                    names.extend((0..MEM_BINS).map(|b| format!("mem_delta[2^{b}]")));
                }
                FeatureKind::Architectural => {
                    names.extend(
                        rhmd_uarch::events::COUNTER_NAMES
                            .iter()
                            .map(|n| format!("rate[{n}]")),
                    );
                }
            }
        }
        names
    }

    /// Projects a raw window onto this spec's feature vector.
    ///
    /// Instruction components are opcode *frequencies* (counts normalized by
    /// window instructions); memory components are a normalized delta
    /// histogram; architectural components are per-instruction event rates.
    ///
    /// Normalization is by the window's *actual* counts, so short (gap- or
    /// fault-truncated) windows renormalize instead of skewing low, and any
    /// non-finite component (possible only on corrupted inputs) is guarded
    /// to zero so downstream models never see NaN/Inf.
    pub fn project(&self, window: &RawWindow) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dims());
        self.project_into(window, &mut out);
        out
    }

    /// [`FeatureSpec::project`] appending into a caller-owned buffer: the
    /// flat-matrix hot path. Exactly [`FeatureSpec::dims`] values are
    /// appended (prior contents are untouched) and the non-finite guard
    /// applies only to the appended region.
    pub fn project_into(&self, window: &RawWindow, out: &mut Vec<f64>) {
        let start = out.len();
        for kind in &self.kinds {
            match kind {
                FeatureKind::Instructions => {
                    let denom = window.instructions.max(1) as f64;
                    out.extend(
                        self.opcodes
                            .iter()
                            .map(|op| window.opcode_counts[op.index()] as f64 / denom),
                    );
                }
                FeatureKind::Memory => {
                    let denom = window.mem_accesses().max(1) as f64;
                    out.extend(window.mem_delta_hist.iter().map(|&c| c as f64 / denom));
                }
                FeatureKind::Architectural => {
                    out.extend(window.counters.to_rates());
                }
            }
        }
        for v in &mut out[start..] {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
    }

    /// A stable 64-bit digest of everything that determines this spec's
    /// projection: kinds (in order), collection period, and the opcode
    /// subset (in order). Two specs that project every window identically
    /// hash identically across processes, which is what lets cached feature
    /// vectors be keyed by spec instead of recomputed per detector.
    pub fn stable_hash(&self) -> u64 {
        use rhmd_trace::seed::mix_seed;
        let mut h = 0x6665_6174_7370_6563; // b"featspec"
        for kind in &self.kinds {
            h = mix_seed(
                h,
                match kind {
                    FeatureKind::Instructions => 1,
                    FeatureKind::Memory => 2,
                    FeatureKind::Architectural => 3,
                },
            );
        }
        h = mix_seed(h, u64::from(self.period));
        for op in &self.opcodes {
            h = mix_seed(h, op.index() as u64);
        }
        h
    }

    /// Short label such as `"Instructions@10k"` or
    /// `"Instructions+Memory@5k"`.
    pub fn label(&self) -> String {
        let kinds = self
            .kinds
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join("+");
        format!("{kinds}@{}k", self.period / 1000)
    }
}

impl fmt::Display for FeatureSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: FeatureKind) -> FeatureSpec {
        FeatureSpec::new(kind, 10_000, vec![Opcode::Add, Opcode::Xor, Opcode::Load])
    }

    fn window() -> RawWindow {
        let mut w = RawWindow {
            instructions: 100,
            ..RawWindow::default()
        };
        w.opcode_counts[Opcode::Add.index()] = 30;
        w.opcode_counts[Opcode::Xor.index()] = 10;
        w.opcode_counts[Opcode::Load.index()] = 20;
        w.mem_delta_hist[0] = 5;
        w.mem_delta_hist[3] = 15;
        w.counters.instructions = 100;
        w.counters.loads = 20;
        w
    }

    #[test]
    fn dims_match_projection() {
        for kind in FeatureKind::ALL {
            let s = spec(kind);
            assert_eq!(s.project(&window()).len(), s.dims());
            assert_eq!(s.dim_names().len(), s.dims());
        }
    }

    #[test]
    fn instruction_features_are_frequencies() {
        let v = spec(FeatureKind::Instructions).project(&window());
        assert_eq!(v, vec![0.3, 0.1, 0.2]);
    }

    #[test]
    fn memory_features_sum_to_one() {
        let v = spec(FeatureKind::Memory).project(&window());
        let total: f64 = v.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(v[0], 0.25);
        assert_eq!(v[3], 0.75);
    }

    #[test]
    fn architectural_features_are_rates() {
        let v = spec(FeatureKind::Architectural).project(&window());
        assert_eq!(v[0], 1.0); // window fill
        assert!((v[1] - 0.2).abs() < 1e-12); // loads rate
    }

    #[test]
    fn combined_concatenates() {
        let s = FeatureSpec::combined(
            vec![FeatureKind::Instructions, FeatureKind::Memory],
            10_000,
            vec![Opcode::Add],
        );
        assert_eq!(s.dims(), 1 + MEM_BINS);
        assert_eq!(s.project(&window()).len(), s.dims());
        assert_eq!(s.label(), "Instructions+Memory@10k");
    }

    #[test]
    fn labels_are_readable() {
        assert_eq!(spec(FeatureKind::Memory).label(), "Memory@10k");
    }

    #[test]
    fn stable_hash_tracks_projection_identity() {
        let a = spec(FeatureKind::Instructions);
        assert_eq!(a.stable_hash(), spec(FeatureKind::Instructions).stable_hash());
        // Any field that changes the projection changes the hash.
        assert_ne!(a.stable_hash(), spec(FeatureKind::Memory).stable_hash());
        let other_period = FeatureSpec::new(FeatureKind::Instructions, 5_000, a.opcodes.clone());
        assert_ne!(a.stable_hash(), other_period.stable_hash());
        let other_opcodes =
            FeatureSpec::new(FeatureKind::Instructions, 10_000, vec![Opcode::Add, Opcode::Xor]);
        assert_ne!(a.stable_hash(), other_opcodes.stable_hash());
        // Kind order matters for combined specs (the vector layout differs).
        let ab = FeatureSpec::combined(
            vec![FeatureKind::Instructions, FeatureKind::Memory],
            10_000,
            vec![],
        );
        let ba = FeatureSpec::combined(
            vec![FeatureKind::Memory, FeatureKind::Instructions],
            10_000,
            vec![],
        );
        assert_ne!(ab.stable_hash(), ba.stable_hash());
    }
}
