//! Feature selection for the Instructions vector.
//!
//! Paper §3: the Instructions feature "tracks the frequency of instructions
//! that show the most different frequency (delta) between normal programs
//! and malware in the training set".

use crate::window::RawWindow;
use rhmd_trace::isa::{Opcode, OPCODE_COUNT};

/// Default number of opcodes retained by the Instructions feature.
pub const DEFAULT_TOP_K: usize = 16;

/// Mean opcode-frequency vector over a set of windows.
fn mean_frequencies<'a, I>(windows: I) -> [f64; OPCODE_COUNT]
where
    I: IntoIterator<Item = &'a RawWindow>,
{
    let mut sums = [0.0; OPCODE_COUNT];
    let mut n = 0u64;
    for w in windows {
        let denom = w.instructions.max(1) as f64;
        for (s, &c) in sums.iter_mut().zip(&w.opcode_counts) {
            *s += c as f64 / denom;
        }
        n += 1;
    }
    if n > 0 {
        for s in &mut sums {
            *s /= n as f64;
        }
    }
    sums
}

/// Selects the `k` opcodes whose mean executed frequency differs most
/// between malware and benign windows.
///
/// Ties (and the ordering of the result) are deterministic: opcodes are
/// ranked by `(delta, index)` descending, then returned sorted by index so
/// the feature layout is stable.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds [`OPCODE_COUNT`].
///
/// # Examples
///
/// ```
/// use rhmd_features::select::select_top_delta_opcodes;
/// use rhmd_features::window::RawWindow;
/// use rhmd_trace::isa::Opcode;
///
/// let mut benign = RawWindow::default();
/// benign.instructions = 100;
/// benign.opcode_counts[Opcode::Fpu.index()] = 90;
/// let mut malware = RawWindow::default();
/// malware.instructions = 100;
/// malware.opcode_counts[Opcode::Xor.index()] = 90;
///
/// let top = select_top_delta_opcodes(&[malware], &[benign], 2);
/// assert!(top.contains(&Opcode::Xor) && top.contains(&Opcode::Fpu));
/// ```
pub fn select_top_delta_opcodes(
    malware: &[RawWindow],
    benign: &[RawWindow],
    k: usize,
) -> Vec<Opcode> {
    assert!(k > 0 && k <= OPCODE_COUNT, "k must be in 1..={OPCODE_COUNT}");
    let mal = mean_frequencies(malware);
    let ben = mean_frequencies(benign);
    let mut ranked: Vec<(f64, usize)> = mal
        .iter()
        .zip(&ben)
        .enumerate()
        .map(|(i, (m, b))| ((m - b).abs(), i))
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)));
    let mut chosen: Vec<usize> = ranked[..k].iter().map(|&(_, i)| i).collect();
    chosen.sort_unstable();
    chosen.into_iter().map(Opcode::from_index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_with(pairs: &[(Opcode, u64)]) -> RawWindow {
        let mut w = RawWindow {
            instructions: 1_000,
            ..RawWindow::default()
        };
        for &(op, c) in pairs {
            w.opcode_counts[op.index()] = c;
        }
        w
    }

    #[test]
    fn picks_most_discriminative() {
        let malware = vec![window_with(&[(Opcode::Xor, 500), (Opcode::Add, 100)])];
        let benign = vec![window_with(&[(Opcode::Fpu, 400), (Opcode::Add, 120)])];
        let top = select_top_delta_opcodes(&malware, &benign, 2);
        assert_eq!(top, vec![Opcode::Xor, Opcode::Fpu]);
    }

    #[test]
    fn result_is_sorted_by_opcode_index() {
        let malware = vec![window_with(&[(Opcode::Syscall, 100), (Opcode::Mov, 200)])];
        let benign = vec![window_with(&[(Opcode::Load, 300)])];
        let top = select_top_delta_opcodes(&malware, &benign, 3);
        let mut sorted = top.clone();
        sorted.sort_by_key(|op| op.index());
        assert_eq!(top, sorted);
    }

    #[test]
    fn deterministic_under_repeat() {
        let malware = vec![window_with(&[(Opcode::Xor, 10)])];
        let benign = vec![window_with(&[(Opcode::Add, 10)])];
        let a = select_top_delta_opcodes(&malware, &benign, 5);
        let b = select_top_delta_opcodes(&malware, &benign, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_empty_window_sets() {
        let top = select_top_delta_opcodes(&[], &[], 4);
        assert_eq!(top.len(), 4);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn rejects_zero_k() {
        let _ = select_top_delta_opcodes(&[], &[], 0);
    }
}
