//! Windowed hardware-feature extraction for the RHMD reproduction.
//!
//! Implements the three feature vectors of paper §3 over collection windows
//! of committed instructions:
//!
//! * **Instructions** — frequencies of the opcodes whose executed frequency
//!   differs most between malware and benign training programs
//!   ([`select::select_top_delta_opcodes`]);
//! * **Memory** — a histogram of log2-binned deltas between consecutive
//!   memory-reference addresses;
//! * **Architectural** — per-instruction rates of hardware events
//!   (cache misses, mispredictions, unaligned accesses, …) from
//!   [`rhmd_uarch`].
//!
//! Extraction is two-phase: [`pipeline::trace_subwindows`] runs a program
//! once at fine granularity, and any [`vector::FeatureSpec`] (kind × period ×
//! opcode subset) can then be projected from the cached subwindows — the
//! pattern every period/feature sweep in the paper relies on. When the
//! consumer knows its specs up front, [`stream::stream_features_into`]
//! fuses tracing, aggregation, and projection into one batched pass that
//! writes rows straight into caller-owned buffers (bit-identical output).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pipeline;
pub mod select;
pub mod stream;
pub mod vector;
pub mod window;

pub use pipeline::{extract, project_windows, trace_subwindows};
pub use stream::{collect_subwindows, stream_features_into, LaneSpec, StreamOutcome};
pub use select::{select_top_delta_opcodes, DEFAULT_TOP_K};
pub use vector::{FeatureKind, FeatureSpec};
pub use window::{RawWindow, MEM_BINS, SUBWINDOW};
