//! Property-based tests: fault injection composed with the feature
//! pipeline never poisons downstream consumers.

use proptest::prelude::*;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_features::window::{aggregate_with_gaps, apply_faults, RawWindow, SUBWINDOW};
use rhmd_trace::isa::{Opcode, OPCODE_COUNT};
use rhmd_uarch::faults::{FaultConfig, FaultModel};

/// A full subwindow with plausible opcode / memory / counter content.
fn any_subwindow() -> impl Strategy<Value = RawWindow> {
    (
        prop::collection::vec(0u64..200, OPCODE_COUNT),
        prop::collection::vec(0u64..200, 16),
        0u64..500,
    )
        .prop_map(|(ops, hist, misses)| {
            let mut w = RawWindow::default();
            for (slot, v) in w.opcode_counts.iter_mut().zip(&ops) {
                *slot = *v;
            }
            for (slot, v) in w.mem_delta_hist.iter_mut().zip(&hist) {
                *slot = *v;
            }
            w.instructions = u64::from(SUBWINDOW);
            w.counters.instructions = u64::from(SUBWINDOW);
            w.counters.loads = hist.iter().sum();
            w.counters.l2_misses = misses;
            w
        })
}

fn any_stream() -> impl Strategy<Value = Vec<RawWindow>> {
    prop::collection::vec(any_subwindow(), 5..30)
}

fn any_fault() -> impl Strategy<Value = FaultConfig> {
    (0usize..6, 0.05f64..0.5, 8u32..24).prop_map(|(kind, rate, bits)| match kind {
        0 => FaultConfig::noise(rate),
        1 => FaultConfig::dropping(rate),
        2 => FaultConfig::multiplexed(rate),
        3 => FaultConfig::bursty(rate / 2.0, 4),
        4 => FaultConfig::saturating(bits),
        _ => FaultConfig::wrapping(bits),
    })
}

fn all_specs() -> Vec<FeatureSpec> {
    let opcodes: Vec<Opcode> = Opcode::ALL[..8].to_vec();
    FeatureKind::ALL
        .iter()
        .map(|&k| FeatureSpec::new(k, 10_000, opcodes.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero-intensity fault injection leaves the subwindow stream AND every
    /// extracted feature vector bit-identical.
    #[test]
    fn zero_intensity_pipeline_is_bit_exact(
        stream in any_stream(),
        seed in any::<u64>(),
    ) {
        let model = FaultModel::new(FaultConfig::none(), seed);
        let faulted = apply_faults(&stream, &model);
        prop_assert_eq!(&faulted, &stream);
        for spec in all_specs() {
            for (a, b) in stream.iter().zip(&faulted) {
                let va = spec.project(a);
                let vb = spec.project(b);
                prop_assert!(
                    va.iter().zip(&vb).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "feature vectors must be bit-identical under {}",
                    spec.label()
                );
            }
        }
    }

    /// Faulted pipelines never emit NaN/Inf features, for any fault kind,
    /// intensity, and seed — corrupted windows renormalize or zero out.
    #[test]
    fn faulted_features_are_always_finite(
        stream in any_stream(),
        config in any_fault(),
        seed in any::<u64>(),
    ) {
        let model = FaultModel::new(config, seed);
        let faulted = apply_faults(&stream, &model);
        for spec in all_specs() {
            for window in aggregate_with_gaps(&faulted, 10_000, 0.0) {
                let v = spec.project(&window);
                prop_assert!(
                    v.iter().all(|x| x.is_finite()),
                    "non-finite feature under {} with {config:?}",
                    spec.label()
                );
            }
        }
    }

    /// Dropped reads coalesce instead of vanishing: ground-truth committed
    /// instructions are conserved up to the truncated trailing run, and the
    /// surviving count matches the configured drop rate within tolerance.
    #[test]
    fn drops_coalesce_and_match_rate(
        stream in prop::collection::vec(any_subwindow(), 40..120),
        rate in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let model = FaultModel::new(FaultConfig::dropping(rate), seed);
        let faulted = apply_faults(&stream, &model);
        let original: u64 = stream.iter().map(|w| w.instructions).sum();
        let surviving: u64 = faulted.iter().map(|w| w.instructions).sum();
        prop_assert!(surviving <= original);
        // Any shortfall is exactly a trailing run of dropped reads.
        let tail = (original - surviving) / u64::from(SUBWINDOW);
        prop_assert!(
            (0..tail).all(|k| model.drops_window(stream.len() as u64 - 1 - k)),
            "missing instructions must come from a dropped trailing run"
        );
        // Surviving read count tracks (1 - rate) within a loose tolerance.
        let expected = (1.0 - rate) * stream.len() as f64;
        prop_assert!(
            (faulted.len() as f64 - expected).abs() < 0.25 * stream.len() as f64,
            "{} surviving of {}, expected ~{expected:.0}",
            faulted.len(),
            stream.len()
        );
    }
}
