//! Property-based tests of feature extraction invariants.

use proptest::prelude::*;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_features::window::{aggregate, delta_bin, RawWindow, MEM_BINS, SUBWINDOW};
use rhmd_trace::isa::{Opcode, OPCODE_COUNT};

fn any_window() -> impl Strategy<Value = RawWindow> {
    (
        prop::collection::vec(0u64..50, OPCODE_COUNT),
        prop::collection::vec(0u64..50, MEM_BINS),
    )
        .prop_map(|(ops, hist)| {
            let mut w = RawWindow::default();
            for (slot, v) in w.opcode_counts.iter_mut().zip(&ops) {
                *slot = *v;
            }
            for (slot, v) in w.mem_delta_hist.iter_mut().zip(&hist) {
                *slot = *v;
            }
            w.instructions = w.opcode_counts.iter().sum::<u64>().max(1);
            w.counters.instructions = w.instructions;
            w
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Memory feature vectors are a probability distribution over bins
    /// whenever any access was recorded.
    #[test]
    fn memory_projection_normalizes(w in any_window()) {
        let spec = FeatureSpec::new(FeatureKind::Memory, 10_000, vec![]);
        let v = spec.project(&w);
        prop_assert_eq!(v.len(), MEM_BINS);
        let total: f64 = v.iter().sum();
        if w.mem_accesses() > 0 {
            prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        } else {
            prop_assert_eq!(total, 0.0);
        }
    }

    /// Instruction frequencies never exceed one and respect counts.
    #[test]
    fn instruction_projection_bounds(w in any_window()) {
        let opcodes: Vec<Opcode> = Opcode::ALL[..8].to_vec();
        let spec = FeatureSpec::new(FeatureKind::Instructions, 10_000, opcodes.clone());
        let v = spec.project(&w);
        for (f, op) in v.iter().zip(&opcodes) {
            prop_assert!((0.0..=1.0).contains(f));
            let expected = w.opcode_counts[op.index()] as f64 / w.instructions as f64;
            prop_assert!((f - expected).abs() < 1e-12);
        }
    }

    /// Aggregation is additive: the merged window carries exactly the
    /// component sums.
    #[test]
    fn aggregation_is_additive(windows in prop::collection::vec(any_window(), 1..10)) {
        // Regularize sizes to exactly one subwindow each.
        let mut subs = windows;
        for w in &mut subs {
            w.instructions = u64::from(SUBWINDOW);
            w.counters.instructions = u64::from(SUBWINDOW);
        }
        let n = subs.len() as u32;
        let merged = aggregate(&subs, n * SUBWINDOW);
        prop_assert_eq!(merged.len(), 1);
        for op in 0..OPCODE_COUNT {
            let total: u64 = subs.iter().map(|w| w.opcode_counts[op]).sum();
            prop_assert_eq!(merged[0].opcode_counts[op], total);
        }
        for bin in 0..MEM_BINS {
            let total: u64 = subs.iter().map(|w| w.mem_delta_hist[bin]).sum();
            prop_assert_eq!(merged[0].mem_delta_hist[bin], total);
        }
    }

    /// delta_bin is symmetric and monotone in the delta magnitude.
    #[test]
    fn delta_bin_properties(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(delta_bin(a, b), delta_bin(b, a));
        let bin = delta_bin(a, b);
        prop_assert!(bin < MEM_BINS);
        if a == b {
            prop_assert_eq!(bin, 0);
        }
    }

    #[test]
    fn delta_bin_monotone(base in 0u64..1_000_000, d1 in 0u64..1_000_000, extra in 1u64..1_000_000) {
        let small = delta_bin(base, base + d1);
        let big = delta_bin(base, base + d1 + extra);
        prop_assert!(big >= small, "bin({d1})={small} > bin({})={big}", d1 + extra);
    }

    /// Projection dimensionality always matches the spec, including combined
    /// specs.
    #[test]
    fn dims_always_match(w in any_window(), k in 1usize..OPCODE_COUNT) {
        let opcodes: Vec<Opcode> = Opcode::ALL[..k].to_vec();
        for kinds in [
            vec![FeatureKind::Instructions],
            vec![FeatureKind::Memory, FeatureKind::Architectural],
            vec![FeatureKind::Instructions, FeatureKind::Memory, FeatureKind::Architectural],
        ] {
            let spec = FeatureSpec::combined(kinds, 10_000, opcodes.clone());
            prop_assert_eq!(spec.project(&w).len(), spec.dims());
        }
    }
}
