//! Property-based tests pinning the streaming trace→features hot path to
//! the two-phase reference pipeline, bit for bit.
//!
//! The streaming path (flat IR, batched µarch simulation, incremental
//! lanes) claims to be a pure optimization of the seed-era per-event
//! pipeline. These properties check that claim across random programs,
//! execution budgets, collection periods, fill thresholds, and fault
//! plans — the full cross product the experiments exercise.

use proptest::prelude::*;
use rhmd_features::pipeline::trace_subwindows_reference;
use rhmd_features::stream::{
    collect_subwindows, stream_features_into, LaneSpec,
};
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_features::window::{aggregate_with_gaps, apply_faults};
use rhmd_trace::exec::ExecLimits;
use rhmd_trace::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                           ProgramGenerator};
use rhmd_trace::Program;
use rhmd_uarch::faults::{FaultConfig, FaultModel};
use rhmd_uarch::CoreConfig;

fn any_profile_seeded() -> impl Strategy<Value = Program> {
    (0usize..14, 0u64..1000).prop_map(|(class, seed)| {
        if class < 6 {
            ProgramGenerator::new(malware_profile(MalwareFamily::ALL[class])).generate(seed)
        } else {
            ProgramGenerator::new(benign_profile(BenignClass::ALL[class - 6])).generate(seed)
        }
    })
}

fn any_kind() -> impl Strategy<Value = FeatureKind> {
    prop::sample::select(FeatureKind::ALL.to_vec())
}

/// A period that is a positive multiple of the subwindow size.
fn any_period() -> impl Strategy<Value = u32> {
    (1u32..12).prop_map(|k| k * 1_000)
}

fn any_spec() -> impl Strategy<Value = FeatureSpec> {
    (any_kind(), any_period()).prop_map(|(kind, period)| FeatureSpec::new(kind, period, vec![]))
}

fn any_fault() -> impl Strategy<Value = FaultConfig> {
    (0usize..7, 0.05f64..0.5, 8u32..24).prop_map(|(kind, rate, bits)| match kind {
        0 => FaultConfig::noise(rate),
        1 => FaultConfig::dropping(rate),
        2 => FaultConfig::multiplexed(rate),
        3 => FaultConfig::bursty(rate / 2.0, 4),
        4 => FaultConfig::saturating(bits),
        5 => FaultConfig::wrapping(bits),
        _ => FaultConfig::none(),
    })
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The batched flat-IR walk seals exactly the subwindows the per-event
    /// reference accumulator produces, on any program and budget.
    #[test]
    fn batched_subwindows_match_reference(
        program in any_profile_seeded(),
        budget in 1_000u64..30_000,
    ) {
        let limits = ExecLimits::instructions(budget);
        let reference = trace_subwindows_reference(&program, limits, CoreConfig::default());
        let (batched, summary) = collect_subwindows(&program, limits, CoreConfig::default());
        prop_assert_eq!(&batched, &reference);
        prop_assert_eq!(
            summary.instructions,
            batched.iter().map(|w| w.instructions).sum::<u64>()
        );
    }

    /// A clean streaming lane reproduces trace → aggregate → project
    /// bit-for-bit, for any spec kind, period, and fill threshold.
    #[test]
    fn clean_lane_matches_two_phase(
        program in any_profile_seeded(),
        budget in 1_000u64..30_000,
        kind in any_kind(),
        period in any_period(),
        min_fill in prop::sample::select(vec![0.0f64, 0.5, 1.0]),
    ) {
        let limits = ExecLimits::instructions(budget);
        let spec = FeatureSpec::new(kind, period, vec![]);
        let lanes = [LaneSpec { spec: &spec, min_fill, fault: None }];
        let mut out = Vec::new();
        let outcome =
            stream_features_into(&program, limits, CoreConfig::default(), &lanes, &mut [&mut out]);

        let reference = trace_subwindows_reference(&program, limits, CoreConfig::default());
        let windows = aggregate_with_gaps(&reference, period, min_fill);
        let mut expect = Vec::new();
        for w in &windows {
            spec.project_into(w, &mut expect);
        }
        prop_assert_eq!(outcome.rows, vec![windows.len()]);
        prop_assert!(bits_equal(&out, &expect));
    }

    /// A faulted lane reproduces trace → apply_faults → aggregate →
    /// project bit-for-bit, for any fault plan and seed.
    #[test]
    fn faulted_lane_matches_two_phase(
        program in any_profile_seeded(),
        budget in 1_000u64..30_000,
        spec in any_spec(),
        config in any_fault(),
        seed in any::<u64>(),
        min_fill in prop::sample::select(vec![0.0f64, 0.5]),
    ) {
        let limits = ExecLimits::instructions(budget);
        let period = spec.period;
        let model = FaultModel::new(config, seed);
        let lanes = [LaneSpec { spec: &spec, min_fill, fault: Some(&model) }];
        let mut out = Vec::new();
        let outcome =
            stream_features_into(&program, limits, CoreConfig::default(), &lanes, &mut [&mut out]);

        let reference = trace_subwindows_reference(&program, limits, CoreConfig::default());
        let faulted = apply_faults(&reference, &model);
        let windows = aggregate_with_gaps(&faulted, period, min_fill);
        let mut expect = Vec::new();
        for w in &windows {
            spec.project_into(w, &mut expect);
        }
        prop_assert_eq!(outcome.rows, vec![windows.len()]);
        prop_assert!(bits_equal(&out, &expect));
    }

    /// Lanes are independent: a multi-lane pass (mixed kinds, periods, and
    /// fault plans) produces exactly what each lane would alone.
    #[test]
    fn lanes_are_independent(
        program in any_profile_seeded(),
        budget in 5_000u64..25_000,
        periods in prop::collection::vec(any_period(), 2..4),
        config in any_fault(),
        seed in any::<u64>(),
    ) {
        let limits = ExecLimits::instructions(budget);
        let model = FaultModel::new(config, seed);
        let specs: Vec<FeatureSpec> = periods
            .iter()
            .zip(FeatureKind::ALL.iter().cycle())
            .map(|(&p, &k)| FeatureSpec::new(k, p, vec![]))
            .collect();
        let lanes: Vec<LaneSpec> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| LaneSpec {
                spec,
                min_fill: 0.5,
                fault: (i % 2 == 1).then_some(&model),
            })
            .collect();
        let mut bufs: Vec<Vec<f64>> = vec![Vec::new(); lanes.len()];
        let mut outs: Vec<&mut Vec<f64>> = bufs.iter_mut().collect();
        let joint =
            stream_features_into(&program, limits, CoreConfig::default(), &lanes, &mut outs);

        for (i, lane) in lanes.iter().enumerate() {
            let mut solo = Vec::new();
            let alone = stream_features_into(
                &program,
                limits,
                CoreConfig::default(),
                &[*lane],
                &mut [&mut solo],
            );
            prop_assert_eq!(joint.rows[i], alone.rows[0]);
            prop_assert!(bits_equal(&bufs[i], &solo), "lane {} diverged", i);
        }
    }
}
