//! The on-disk corpus store: generate traces and features once, evaluate
//! forever after from memory-mapped shards.
//!
//! Every evaluation path used to regenerate traces per run and cache
//! feature vectors in RAM, capping corpus size at available memory. The
//! store inverts that: `rhmd corpus build` (via [`StoreBuilder`]) traces
//! each *canonical* program once, projects every requested
//! [`FeatureSpec`], and streams the rows into per-spec shard files; later
//! runs [`CorpusStore::open`] the directory and read rows back as zero-copy
//! [`FeatureMatrix`] views over the page cache — no tracing, no per-program
//! allocation, bounded RSS at any corpus size.
//!
//! # Layout
//!
//! ```text
//! <dir>/store.json            checksummed manifest: schema version, the
//!                             full CorpusConfig, labels, strata, the
//!                             dedup mapping, and one entry per shard
//! <dir>/<spec_hash>.shard     versioned 64-byte header + row-major
//!                             little-endian f64 rows, FNV-checksummed
//! <dir>/journal/              PR-3 checkpoint journal of the build; a
//!                             killed build resumes from the last chunk
//! ```
//!
//! Shard header (all integers little-endian):
//!
//! ```text
//! offset  0  "RHMDSHRD"   magic (8 bytes)
//! offset  8  version      u32 (= SHARD_VERSION)
//! offset 12  flags        u32 (0 = little-endian payload)
//! offset 16  spec_hash    u64 (FeatureSpec::stable_hash)
//! offset 24  dims         u64
//! offset 32  rows         u64
//! offset 40  checksum     u64 (FNV-1a of the data bytes)
//! offset 48  data_len     u64 (bytes of row data)
//! offset 56  reserved     u64 (0)
//! ```
//!
//! The 64-byte header keeps the row data 8-byte aligned, so a mapped shard
//! slice *is* a valid [`FeatureMatrix`] and `Classifier::score_batch`
//! consumes it without a copy.
//!
//! # Dedup
//!
//! Programs are content-addressed by a structure hash (the serialized
//! program with its `name` cleared — two generated samples that differ only
//! in name are the same binary). Only the first occurrence (the *canonical*
//! program) is traced and stored; duplicates alias the canonical rows
//! through the manifest's `canonical` mapping, invisibly to every consumer:
//! `features_of(dup)` returns bit-identical rows to `features_of(canon)`.
//!
//! All writes go through the durable plane ([`rhmd_runtime::durable`]):
//! appends tolerate short writes, the manifest is checksummed and written
//! atomically, and partially built shards are truncated back to the last
//! journaled chunk on resume.

use crate::config::CorpusConfig;
use crate::corpus::Corpus;
use crate::traced::parallel_map_threads;
use rhmd_features::stream::{stream_features_into, LaneSpec};
use rhmd_features::vector::FeatureSpec;

std::thread_local! {
    /// Per-thread staging buffers for streamed feature rows, reused across
    /// every program a worker thread traces.
    static STAGING: std::cell::RefCell<Vec<Vec<f64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}
use rhmd_ml::matrix::FeatureMatrix;
use rhmd_ml::mmap::{MappedBuffer, NATIVE_F64_VIEWS};
use rhmd_runtime::ckpt::{Journal, Manifest};
use rhmd_runtime::durable::{fnv1a, Durable};
use rhmd_runtime::RhmdError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version of the store layout (manifest schema and shard header).
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// Version field written into every shard header.
pub const SHARD_VERSION: u32 = 1;

/// Shard file magic.
pub const SHARD_MAGIC: &[u8; 8] = b"RHMDSHRD";

/// Fixed shard header length; also the alignment pad that keeps row data at
/// an 8-byte boundary.
pub const SHARD_HEADER_LEN: usize = 64;

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "store.json";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming continuation of [`fnv1a`]: feeding chunks through
/// `fnv1a_update` starting from [`FNV_OFFSET`] equals hashing the
/// concatenation in one call.
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One shard (one [`FeatureSpec`]) recorded in the store manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard file name inside the store directory.
    pub file: String,
    /// Human-readable spec label (`"Memory@10k"`), for messages.
    pub label: String,
    /// The full feature spec, including the selected opcode subset.
    pub spec: FeatureSpec,
    /// `spec.stable_hash()`, the lookup key.
    pub spec_hash: u64,
    /// Row width.
    pub dims: u64,
    /// Total rows across all canonical programs.
    pub rows: u64,
    /// FNV-1a of the shard's row data, duplicated from the header so either
    /// copy detects tampering with the other.
    pub checksum: u64,
    /// Prefix row offsets per canonical program (`canonical_count + 1`
    /// entries): canonical rank `r` owns rows `row_offsets[r]..row_offsets[r+1]`.
    pub row_offsets: Vec<u64>,
}

/// The checksummed `store.json` manifest describing a corpus store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreManifest {
    /// Store layout version.
    pub schema_version: u32,
    /// The corpus configuration the store was generated from.
    pub config: CorpusConfig,
    /// Human-readable build configuration summary.
    pub config_summary: String,
    /// FNV-1a of `config_summary` — folded into cache keys and checkpoint
    /// manifests so stores with different configurations can never alias.
    pub config_hash: u64,
    /// Ground-truth label per program (`true` = malware), duplicates
    /// included.
    pub labels: Vec<bool>,
    /// Stratum id per program, for reconstructing the paper's stratified
    /// splits without the corpus.
    pub strata: Vec<u32>,
    /// Dedup mapping: `canonical[i]` is the id of the canonical program
    /// whose rows program `i` aliases (`canonical[i] == i` for canonicals).
    pub canonical: Vec<u64>,
    /// One entry per stored feature spec.
    pub shards: Vec<ShardEntry>,
}

impl StoreManifest {
    /// Number of programs (duplicates included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the store holds no programs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of canonical (actually stored) programs.
    #[must_use]
    pub fn canonical_count(&self) -> usize {
        self.canonical
            .iter()
            .enumerate()
            .filter(|(i, &c)| c == *i as u64)
            .count()
    }

    /// Fraction of programs that are duplicates of an earlier one.
    #[must_use]
    pub fn dedup_ratio(&self) -> f64 {
        if self.canonical.is_empty() {
            return 0.0;
        }
        1.0 - self.canonical_count() as f64 / self.canonical.len() as f64
    }
}

/// Summary statistics returned by [`StoreBuilder::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreSummary {
    /// Programs in the corpus (duplicates included).
    pub programs: usize,
    /// Canonical programs actually traced and stored.
    pub canonical: usize,
    /// Duplicate programs aliased to canonical rows.
    pub duplicates: usize,
    /// Feature specs (= shard files) written.
    pub shards: usize,
    /// Total rows written across all shards.
    pub rows: u64,
    /// Total shard bytes on disk (headers included).
    pub bytes: u64,
    /// Chunks skipped because a previous interrupted build had journaled
    /// them.
    pub resumed_chunks: usize,
}

/// Per-shard running state journaled after every chunk. `bytes`/`fnv`/`rows`
/// are absolute totals after the chunk, so a resumed build can truncate the
/// partial file to `bytes` and continue the checksum stream from `fnv`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SpecProgress {
    bytes: u64,
    fnv: u64,
    rows: u64,
    /// Rows contributed by each canonical program of this chunk, in order.
    program_rows: Vec<u64>,
}

/// The journaled record of one completed build chunk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ChunkRecord {
    specs: Vec<SpecProgress>,
}

/// Builds a corpus store directory: trace once, dedup, shard, checkpoint.
///
/// # Examples
///
/// ```no_run
/// use rhmd_data::config::CorpusConfig;
/// use rhmd_data::store::{CorpusStore, StoreBuilder};
/// use rhmd_features::{FeatureKind, FeatureSpec};
///
/// let spec = FeatureSpec::new(FeatureKind::Memory, 10_000, vec![]);
/// let summary = StoreBuilder::new("corpus-store", CorpusConfig::tiny())
///     .specs(vec![spec.clone()])
///     .build()
///     .unwrap();
/// assert!(summary.rows > 0);
/// let store = CorpusStore::open("corpus-store").unwrap();
/// let first = store.features_of(0, &spec).unwrap();
/// assert!(first.is_mapped() || first.len() > 0);
/// ```
#[derive(Debug)]
pub struct StoreBuilder {
    dir: PathBuf,
    config: CorpusConfig,
    corpus: Option<Corpus>,
    specs: Vec<FeatureSpec>,
    threads: usize,
    chunk: usize,
}

impl StoreBuilder {
    /// A builder writing to `dir` for the corpus generated by `config`.
    pub fn new(dir: impl Into<PathBuf>, config: CorpusConfig) -> StoreBuilder {
        StoreBuilder {
            dir: dir.into(),
            config,
            corpus: None,
            specs: Vec::new(),
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            chunk: 64,
        }
    }

    /// The feature specs to shard (one shard file each).
    #[must_use]
    pub fn specs(mut self, specs: Vec<FeatureSpec>) -> StoreBuilder {
        self.specs = specs;
        self
    }

    /// Worker threads for tracing (results are identical at any count).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> StoreBuilder {
        self.threads = threads.max(1);
        self
    }

    /// Canonical programs per build chunk (the checkpoint granularity).
    #[must_use]
    pub fn chunk(mut self, chunk: usize) -> StoreBuilder {
        self.chunk = chunk.max(1);
        self
    }

    /// Overrides the corpus instead of generating it from the config —
    /// used by dedup tests that need hand-built duplicate programs.
    #[must_use]
    pub fn with_corpus(mut self, corpus: Corpus) -> StoreBuilder {
        self.corpus = Some(corpus);
        self
    }

    /// The configuration summary string hashed into the build journal's
    /// manifest — a different config refuses to resume into this directory.
    #[must_use]
    pub fn summary(&self) -> String {
        let specs = self
            .specs
            .iter()
            .map(|s| format!("{}#{:016x}", s.label(), s.stable_hash()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "store;programs={};seed={};max_instructions={};specs={specs}",
            self.config.total_programs(),
            self.config.seed,
            self.config.max_instructions,
        )
    }

    /// Generates (or reuses) the corpus, dedups it, traces every canonical
    /// program once, and writes the shards + manifest.
    ///
    /// The build is chunked and journaled: re-running after a crash skips
    /// every journaled chunk, truncates partial shards back to the last
    /// consistent offset, and produces byte-identical shards to an
    /// uninterrupted build at any thread count.
    ///
    /// # Errors
    ///
    /// [`RhmdError::Config`] when no specs were given, [`RhmdError::Io`] /
    /// [`RhmdError::Parse`] on filesystem or journal trouble.
    pub fn build(self) -> Result<StoreSummary, RhmdError> {
        if self.specs.is_empty() {
            return Err(RhmdError::config("corpus store build needs at least one feature spec"));
        }
        let _span = rhmd_obs::span("store.build");
        let durable = Durable::from_env()?;
        std::fs::create_dir_all(&self.dir).map_err(|e| {
            RhmdError::io(self.dir.display().to_string(), format!("create store dir: {e}"))
        })?;

        let corpus = match &self.corpus {
            Some(c) => c.clone(),
            None => Corpus::build(&self.config),
        };
        let canonical = canonical_map(&corpus, self.threads)?;
        let canonical_ids: Vec<usize> = (0..corpus.len()).filter(|&i| canonical[i] == i).collect();
        rhmd_obs::add("store.duplicates", (corpus.len() - canonical_ids.len()) as u64);

        let summary_text = self.summary();
        let mut journal = Journal::create(
            &self.dir.join("journal"),
            &Manifest::new("corpus-build", &summary_text),
            Durable::from_env()?,
            1,
        )?;

        // Open one partial file per spec; resume state starts at an empty
        // header-sized prefix and is fast-forwarded by journaled chunks.
        let mut shards: Vec<ShardState> = self
            .specs
            .iter()
            .map(|spec| ShardState::open(&self.dir, spec, &durable))
            .collect::<Result<_, _>>()?;

        let limits = self.config.limits();
        let core_config = rhmd_uarch::CoreConfig::default();
        let mut resumed_chunks = 0usize;
        for (chunk_index, ids) in canonical_ids.chunks(self.chunk).enumerate() {
            let key = format!("chunk/{chunk_index}");
            let record = if journal.is_done(&key) {
                resumed_chunks += 1;
                rhmd_obs::incr("store.chunks_resumed");
                let (record, _) = journal
                    .unit(&key, || unreachable!("journaled chunks are never recomputed"))?;
                record
            } else {
                // Trace + project the chunk in parallel (ordered, so output
                // is identical at any thread count), then append rows
                // sequentially in program order. Each program is one
                // streaming pass: every spec is a clean lane fed from the
                // same execution, writing rows into per-thread staging
                // buffers reused across programs.
                let lanes: Vec<LaneSpec> = self.specs.iter().map(LaneSpec::clean).collect();
                let flats: Vec<Vec<(u64, Vec<u8>)>> =
                    parallel_map_threads(self.threads, ids, |&id| {
                        STAGING.with(|staging| {
                            let mut staging = staging.borrow_mut();
                            let want = lanes.len().max(staging.len());
                            staging.resize_with(want, Vec::new);
                            for buf in staging.iter_mut().take(lanes.len()) {
                                buf.clear();
                            }
                            let mut outs: Vec<&mut Vec<f64>> =
                                staging.iter_mut().take(lanes.len()).collect();
                            let outcome = stream_features_into(
                                corpus.program(id),
                                limits,
                                core_config,
                                &lanes,
                                &mut outs,
                            );
                            outcome
                                .rows
                                .iter()
                                .zip(outs.iter())
                                .map(|(&rows, buf)| {
                                    let bytes: Vec<u8> =
                                        buf.iter().flat_map(|v| v.to_le_bytes()).collect();
                                    (rows as u64, bytes)
                                })
                                .collect()
                        })
                    });
                let mut specs_progress: Vec<SpecProgress> = shards
                    .iter()
                    .map(|s| SpecProgress {
                        bytes: s.bytes,
                        fnv: s.fnv,
                        rows: s.rows,
                        program_rows: Vec::with_capacity(ids.len()),
                    })
                    .collect();
                for per_spec in &flats {
                    for (progress, shard, (rows, bytes)) in
                        itertools3(&mut specs_progress, &mut shards, per_spec)
                    {
                        progress.bytes = durable.append_at(
                            &shard.partial_path,
                            &mut shard.file,
                            progress.bytes,
                            bytes,
                        )?;
                        progress.fnv = fnv1a_update(progress.fnv, bytes);
                        progress.rows += rows;
                        progress.program_rows.push(*rows);
                    }
                }
                for shard in &mut shards {
                    durable.sync(&shard.partial_path, &mut shard.file)?;
                }
                let record = ChunkRecord { specs: specs_progress };
                let (record, _) = journal.unit(&key, move || record)?;
                record
            };
            if record.specs.len() != shards.len() {
                return Err(RhmdError::parse(
                    self.dir.display().to_string(),
                    "build journal does not match the requested specs; \
                     delete the store directory and rebuild",
                ));
            }
            for (shard, progress) in shards.iter_mut().zip(&record.specs) {
                shard.bytes = progress.bytes;
                shard.fnv = progress.fnv;
                shard.rows = progress.rows;
                shard.row_offsets.extend(progress.program_rows.iter().scan(
                    *shard.row_offsets.last().expect("offsets start at 0"),
                    |acc, &r| {
                        *acc += r;
                        Some(*acc)
                    },
                ));
            }
        }
        journal.sync()?;

        // Finalize: truncate any unjournaled tail, stamp the header, rename
        // into place, and write the manifest last — a store without a
        // manifest is simply not open-able, never half-open.
        let mut entries = Vec::with_capacity(shards.len());
        let mut total_bytes = 0u64;
        let mut total_rows = 0u64;
        for (shard, spec) in shards.iter_mut().zip(&self.specs) {
            entries.push(shard.finalize(spec, &durable)?);
            total_bytes += shard.bytes;
            total_rows += shard.rows;
        }
        let manifest = StoreManifest {
            schema_version: STORE_SCHEMA_VERSION,
            config: self.config,
            config_summary: summary_text.clone(),
            config_hash: fnv1a(summary_text.as_bytes()),
            labels: corpus.labels(),
            strata: corpus.strata(),
            canonical: canonical.iter().map(|&c| c as u64).collect(),
            shards: entries,
        };
        let json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| RhmdError::config(format!("cannot serialize store manifest: {e}")))?;
        durable.write_checksummed(&self.dir.join(MANIFEST_FILE), json.as_bytes())?;
        rhmd_obs::incr("store.builds");

        Ok(StoreSummary {
            programs: corpus.len(),
            canonical: canonical_ids.len(),
            duplicates: corpus.len() - canonical_ids.len(),
            shards: manifest.shards.len(),
            rows: total_rows,
            bytes: total_bytes,
            resumed_chunks,
        })
    }
}

/// Lock-step iteration over the three per-spec collections of a chunk.
fn itertools3<'a>(
    progress: &'a mut [SpecProgress],
    shards: &'a mut [ShardState],
    flat: &'a [(u64, Vec<u8>)],
) -> impl Iterator<Item = (&'a mut SpecProgress, &'a mut ShardState, &'a (u64, Vec<u8>))> {
    progress
        .iter_mut()
        .zip(shards.iter_mut())
        .zip(flat.iter())
        .map(|((p, s), f)| (p, s, f))
}

/// Structure hash and first-occurrence dedup over a corpus.
///
/// The hash covers the serialized program with its `name` cleared, so two
/// generated samples that differ only in name collapse; a (vanishingly
/// unlikely) hash collision is disarmed by an exact equality check before
/// aliasing.
fn canonical_map(corpus: &Corpus, threads: usize) -> Result<Vec<usize>, RhmdError> {
    let hashes: Vec<u64> = parallel_map_threads(threads, corpus.programs(), |p| {
        let mut anon = p.clone();
        anon.name = String::new();
        let json = serde_json::to_string(&anon).unwrap_or_default();
        fnv1a(json.as_bytes())
    });
    let mut first: HashMap<u64, usize> = HashMap::new();
    let mut canonical = Vec::with_capacity(corpus.len());
    for (i, &h) in hashes.iter().enumerate() {
        let canon = match first.get(&h) {
            Some(&j) => {
                let mut a = corpus.program(i).clone();
                let mut b = corpus.program(j).clone();
                a.name = String::new();
                b.name = String::new();
                if a == b {
                    j
                } else {
                    i // hash collision between distinct programs: keep both
                }
            }
            None => {
                first.insert(h, i);
                i
            }
        };
        canonical.push(canon);
    }
    Ok(canonical)
}

/// An open partial shard during a build.
#[derive(Debug)]
struct ShardState {
    partial_path: PathBuf,
    final_path: PathBuf,
    file: std::fs::File,
    /// Absolute file length in bytes (header included).
    bytes: u64,
    /// Running FNV-1a over the row data only.
    fnv: u64,
    rows: u64,
    row_offsets: Vec<u64>,
}

impl ShardState {
    fn open(dir: &Path, spec: &FeatureSpec, durable: &Durable) -> Result<ShardState, RhmdError> {
        let name = format!("{:016x}.shard", spec.stable_hash());
        let partial_path = dir.join(format!("{name}.partial"));
        let final_path = dir.join(name);
        // A finalized shard from a previous (complete or partially
        // finalized) build is demoted back to partial: the journal is the
        // authority on how many bytes are valid, and finalize re-stamps the
        // header either way.
        if final_path.exists() {
            durable.with_retry("reopen finalized shard", &partial_path, || {
                std::fs::rename(&final_path, &partial_path)
            })?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&partial_path)
            .map_err(|e| {
                RhmdError::io(partial_path.display().to_string(), format!("open shard: {e}"))
            })?;
        // Reserve the header so row appends start 8-byte aligned; the real
        // header is stamped at finalize time. A resumed partial keeps its
        // existing bytes — truncation back to the journaled offset happens
        // at the first recomputed append.
        let existing = file
            .metadata()
            .map_err(|e| {
                RhmdError::io(partial_path.display().to_string(), format!("stat shard: {e}"))
            })?
            .len();
        if existing < SHARD_HEADER_LEN as u64 {
            durable.append_at(&partial_path, &mut file, 0, &[0u8; SHARD_HEADER_LEN])?;
        }
        Ok(ShardState {
            partial_path,
            final_path,
            file,
            bytes: SHARD_HEADER_LEN as u64,
            fnv: FNV_OFFSET,
            rows: 0,
            row_offsets: vec![0],
        })
    }

    /// Truncates unjournaled garbage, writes the final header, fsyncs, and
    /// renames the partial into place.
    fn finalize(&mut self, spec: &FeatureSpec, durable: &Durable) -> Result<ShardEntry, RhmdError> {
        let header = encode_header(spec, self.rows, self.fnv, self.bytes);
        durable.with_retry("finalize shard", &self.partial_path, || {
            self.file.set_len(self.bytes)?;
            self.file.seek(std::io::SeekFrom::Start(0))?;
            self.file.write_all(&header)?;
            self.file.sync_all()
        })?;
        durable.with_retry("rename shard into place", &self.final_path, || {
            std::fs::rename(&self.partial_path, &self.final_path)
        })?;
        let dir = self.final_path.parent().unwrap_or(Path::new(".")).to_path_buf();
        durable.with_retry("fsync store dir", &dir, || {
            std::fs::File::open(&dir)?.sync_all()
        })?;
        Ok(ShardEntry {
            file: self
                .final_path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            label: spec.label(),
            spec: spec.clone(),
            spec_hash: spec.stable_hash(),
            dims: spec.dims() as u64,
            rows: self.rows,
            checksum: self.fnv,
            row_offsets: std::mem::take(&mut self.row_offsets),
        })
    }
}

fn encode_header(spec: &FeatureSpec, rows: u64, checksum: u64, total_bytes: u64) -> [u8; SHARD_HEADER_LEN] {
    let mut h = [0u8; SHARD_HEADER_LEN];
    h[0..8].copy_from_slice(SHARD_MAGIC);
    h[8..12].copy_from_slice(&SHARD_VERSION.to_le_bytes());
    // flags at 12..16 stay 0: little-endian payload.
    h[16..24].copy_from_slice(&spec.stable_hash().to_le_bytes());
    h[24..32].copy_from_slice(&(spec.dims() as u64).to_le_bytes());
    h[32..40].copy_from_slice(&rows.to_le_bytes());
    h[40..48].copy_from_slice(&checksum.to_le_bytes());
    h[48..56].copy_from_slice(&(total_bytes - SHARD_HEADER_LEN as u64).to_le_bytes());
    h
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// One opened, validated, memory-mapped shard.
#[derive(Debug)]
struct OpenShard {
    buf: Arc<MappedBuffer>,
    dims: usize,
    row_offsets: Vec<u64>,
}

/// A read-only corpus store: the manifest plus every shard mapped and
/// validated.
///
/// Rows come back as zero-copy [`FeatureMatrix`] views (see
/// [`CorpusStore::features_of`]); labels, strata, and the dedup mapping are
/// served from the manifest without touching the corpus generator.
#[derive(Debug)]
pub struct CorpusStore {
    dir: PathBuf,
    manifest: StoreManifest,
    identity: u64,
    /// Program id -> canonical rank (index into each shard's `row_offsets`).
    rank: Vec<usize>,
    shards: Vec<OpenShard>,
}

impl CorpusStore {
    /// Opens and fully validates a store directory: manifest checksum and
    /// schema, then every shard's magic, version, spec hash, geometry, and
    /// data checksum.
    ///
    /// # Errors
    ///
    /// [`RhmdError::Io`] when files are missing or unreadable;
    /// [`RhmdError::Parse`] on corrupt or truncated manifest/shards;
    /// [`RhmdError::Version`] on a schema or shard version this build does
    /// not support.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CorpusStore, RhmdError> {
        let dir = dir.into();
        let _span = rhmd_obs::span("store.open");
        let durable = Durable::from_env()?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            return Err(RhmdError::io(
                dir.display().to_string(),
                "not a corpus store (no store.json); run `rhmd corpus build` first",
            ));
        }
        let bytes = durable.read_checksummed(&manifest_path)?;
        let text = String::from_utf8(bytes)
            .map_err(|e| RhmdError::parse(manifest_path.display().to_string(), e.to_string()))?;
        let manifest: StoreManifest = serde_json::from_str(&text)
            .map_err(|e| RhmdError::parse(manifest_path.display().to_string(), e.to_string()))?;
        if manifest.schema_version != STORE_SCHEMA_VERSION {
            return Err(RhmdError::Version {
                found: manifest.schema_version,
                expected: STORE_SCHEMA_VERSION,
            });
        }
        if manifest.canonical.len() != manifest.labels.len()
            || manifest.strata.len() != manifest.labels.len()
        {
            return Err(RhmdError::parse(
                manifest_path.display().to_string(),
                "manifest label/strata/canonical lengths disagree",
            ));
        }

        let canonical_count = manifest.canonical_count();
        let mut rank_of = vec![usize::MAX; manifest.len()];
        let mut next = 0usize;
        for (i, &c) in manifest.canonical.iter().enumerate() {
            if c == i as u64 {
                rank_of[i] = next;
                next += 1;
            }
        }
        let mut rank = Vec::with_capacity(manifest.len());
        for &c in &manifest.canonical {
            let c = c as usize;
            let r = rank_of.get(c).copied().unwrap_or(usize::MAX);
            if r == usize::MAX {
                return Err(RhmdError::parse(
                    manifest_path.display().to_string(),
                    format!("canonical id {c} is not itself canonical"),
                ));
            }
            rank.push(r);
        }

        let mut shards = Vec::with_capacity(manifest.shards.len());
        for entry in &manifest.shards {
            shards.push(open_shard(&dir, entry, canonical_count)?);
            rhmd_obs::incr("store.shards_opened");
        }

        let canonical_dir = std::fs::canonicalize(&dir).unwrap_or_else(|_| dir.clone());
        let identity = fnv1a_update(
            fnv1a(canonical_dir.display().to_string().as_bytes()),
            &manifest.config_hash.to_le_bytes(),
        );
        Ok(CorpusStore {
            dir,
            manifest,
            identity,
            rank,
            shards,
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The validated manifest.
    #[must_use]
    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    /// The corpus configuration the store was generated from.
    #[must_use]
    pub fn config(&self) -> &CorpusConfig {
        &self.manifest.config
    }

    /// A stable identity for this store (canonical path + config hash),
    /// folded into feature-cache keys so rows from different stores — or
    /// from a store and live generation — can never alias.
    #[must_use]
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// Number of programs (duplicates included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.manifest.len()
    }

    /// Whether the store holds no programs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.manifest.is_empty()
    }

    /// Ground-truth labels, one per program.
    #[must_use]
    pub fn labels(&self) -> &[bool] {
        &self.manifest.labels
    }

    /// Stratum ids, one per program.
    #[must_use]
    pub fn strata(&self) -> &[u32] {
        &self.manifest.strata
    }

    /// The stored feature specs, in build order.
    pub fn specs(&self) -> impl Iterator<Item = &FeatureSpec> {
        self.manifest.shards.iter().map(|s| &s.spec)
    }

    /// Whether a spec projecting identically to `spec` is stored.
    #[must_use]
    pub fn has_spec(&self, spec: &FeatureSpec) -> bool {
        let h = spec.stable_hash();
        self.manifest.shards.iter().any(|s| s.spec_hash == h)
    }

    fn shard_index(&self, spec: &FeatureSpec) -> Result<usize, RhmdError> {
        let h = spec.stable_hash();
        self.manifest
            .shards
            .iter()
            .position(|s| s.spec_hash == h)
            .ok_or_else(|| {
                let have = self
                    .manifest
                    .shards
                    .iter()
                    .map(|s| s.label.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                RhmdError::config(format!(
                    "corpus store {} does not contain feature spec {} (stored: {have}); \
                     rebuild the store with this spec",
                    self.dir.display(),
                    spec.label(),
                ))
            })
    }

    /// All rows of program `index` under `spec`, as a zero-copy view into
    /// the mapped shard (an owned copy only on big-endian targets).
    /// Duplicate programs transparently read their canonical rows.
    ///
    /// # Errors
    ///
    /// [`RhmdError::Config`] when the spec is not stored or `index` is out
    /// of range.
    pub fn features_of(&self, index: usize, spec: &FeatureSpec) -> Result<FeatureMatrix, RhmdError> {
        if index >= self.len() {
            return Err(RhmdError::config(format!(
                "program index {index} out of range ({} programs in store)",
                self.len()
            )));
        }
        let si = self.shard_index(spec)?;
        if self.manifest.canonical[index] != index as u64 {
            rhmd_obs::incr("store.dedup_hits");
        }
        let shard = &self.shards[si];
        let rank = self.rank[index];
        let start = shard.row_offsets[rank];
        let rows = (shard.row_offsets[rank + 1] - start) as usize;
        let byte_offset = SHARD_HEADER_LEN + start as usize * shard.dims * 8;
        if NATIVE_F64_VIEWS {
            FeatureMatrix::from_mapped(Arc::clone(&shard.buf), byte_offset, shard.dims, rows)
                .ok_or_else(|| {
                    RhmdError::parse(
                        self.dir.display().to_string(),
                        format!("shard window for program {index} is out of bounds"),
                    )
                })
        } else {
            // Big-endian target: decode an owned copy (correct, not zero-copy).
            let bytes = shard.buf.as_bytes();
            let end = byte_offset + rows * shard.dims * 8;
            if end > bytes.len() {
                return Err(RhmdError::parse(
                    self.dir.display().to_string(),
                    format!("shard window for program {index} is out of bounds"),
                ));
            }
            let mut flat = Vec::with_capacity(rows * shard.dims);
            for chunk in bytes[byte_offset..end].chunks_exact(8) {
                flat.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            }
            let mut m = FeatureMatrix::from_flat(shard.dims.max(1), flat);
            if shard.dims == 0 {
                m = empty_rows(rows);
            }
            Ok(m)
        }
    }

    /// Number of feature rows program `index` contributes under `spec`.
    ///
    /// # Errors
    ///
    /// Same as [`CorpusStore::features_of`].
    pub fn rows_of(&self, index: usize, spec: &FeatureSpec) -> Result<usize, RhmdError> {
        let si = self.shard_index(spec)?;
        let shard = &self.shards[si];
        let rank = *self.rank.get(index).ok_or_else(|| {
            RhmdError::config(format!("program index {index} out of range"))
        })?;
        Ok((shard.row_offsets[rank + 1] - shard.row_offsets[rank]) as usize)
    }
}

/// A `dims == 0` matrix with `rows` empty rows (degenerate-spec support).
fn empty_rows(rows: usize) -> FeatureMatrix {
    let mut m = FeatureMatrix::new(0);
    for _ in 0..rows {
        m.push_row(&[]);
    }
    m
}

fn open_shard(dir: &Path, entry: &ShardEntry, canonical_count: usize) -> Result<OpenShard, RhmdError> {
    let path = dir.join(&entry.file);
    let reject = |message: String| RhmdError::parse(path.display().to_string(), message);
    let buf = MappedBuffer::map_file(&path)
        .map_err(|e| RhmdError::io(path.display().to_string(), format!("map shard: {e}")))?;
    let bytes = buf.as_bytes();
    if bytes.len() < SHARD_HEADER_LEN {
        return Err(reject(format!(
            "truncated shard: {} bytes is smaller than the {SHARD_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if &bytes[0..8] != SHARD_MAGIC {
        return Err(reject("bad shard magic (not a corpus shard)".to_string()));
    }
    let version = read_u32(bytes, 8);
    if version != SHARD_VERSION {
        return Err(RhmdError::Version {
            found: version,
            expected: SHARD_VERSION,
        });
    }
    let spec_hash = read_u64(bytes, 16);
    let dims = read_u64(bytes, 24);
    let rows = read_u64(bytes, 32);
    let checksum = read_u64(bytes, 40);
    let data_len = read_u64(bytes, 48);
    if spec_hash != entry.spec_hash || dims != entry.dims || rows != entry.rows {
        return Err(reject(format!(
            "shard header disagrees with manifest \
             (spec {spec_hash:016x}/{:016x}, dims {dims}/{}, rows {rows}/{})",
            entry.spec_hash, entry.dims, entry.rows
        )));
    }
    let expected_len = SHARD_HEADER_LEN as u64 + data_len;
    if bytes.len() as u64 != expected_len || data_len != rows * dims * 8 {
        return Err(reject(format!(
            "truncated or padded shard: {} bytes on disk, header promises {expected_len}",
            bytes.len()
        )));
    }
    let got = fnv1a(&bytes[SHARD_HEADER_LEN..]);
    if got != checksum || checksum != entry.checksum {
        return Err(reject(format!(
            "shard data checksum mismatch ({got:016x} != {checksum:016x}); \
             the shard is corrupt — rebuild the store"
        )));
    }
    if entry.row_offsets.len() != canonical_count + 1
        || entry.row_offsets.first() != Some(&0)
        || entry.row_offsets.last() != Some(&rows)
        || entry.row_offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(reject("manifest row offsets are inconsistent with the shard".to_string()));
    }
    Ok(OpenShard {
        buf: Arc::new(buf),
        dims: dims as usize,
        row_offsets: entry.row_offsets.clone(),
    })
}
