//! The program corpus: all malware and benign samples in one indexable set.

use crate::config::CorpusConfig;
use rhmd_trace::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                           ProgramGenerator};
use rhmd_trace::{Program, ProgramClass};
use std::fmt;

/// An immutable collection of generated programs with ground-truth labels.
///
/// # Examples
///
/// ```
/// use rhmd_data::config::CorpusConfig;
/// use rhmd_data::corpus::Corpus;
///
/// let corpus = Corpus::build(&CorpusConfig::tiny());
/// assert_eq!(corpus.len(), CorpusConfig::tiny().total_programs());
/// assert!(corpus.malware_count() > 0 && corpus.benign_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    programs: Vec<Program>,
}

impl Corpus {
    /// Generates the full corpus for `config`, deterministically.
    pub fn build(config: &CorpusConfig) -> Corpus {
        let mut programs =
            Vec::with_capacity(config.total_programs());
        for family in MalwareFamily::ALL {
            let generator = ProgramGenerator::new(malware_profile(family));
            for i in 0..config.malware_per_family {
                programs.push(generator.generate(config.seed ^ (i as u64)));
            }
        }
        for class in BenignClass::ALL {
            let generator = ProgramGenerator::new(benign_profile(class));
            for i in 0..config.benign_per_class {
                programs.push(generator.generate(config.seed ^ (i as u64)));
            }
        }
        Corpus { programs }
    }

    /// Wraps an explicit program list (used by evasion experiments that
    /// rewrite subsets of the corpus).
    pub fn from_programs(programs: Vec<Program>) -> Corpus {
        Corpus { programs }
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// All programs, in build order (malware families first).
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// The program at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn program(&self, index: usize) -> &Program {
        &self.programs[index]
    }

    /// Ground-truth label per program (`true` = malware).
    pub fn labels(&self) -> Vec<bool> {
        self.programs.iter().map(|p| p.class.label()).collect()
    }

    /// Stratum id per program (the generation family), for stratified
    /// splitting.
    pub fn strata(&self) -> Vec<u32> {
        self.programs.iter().map(|p| p.family).collect()
    }

    /// Indices of malware programs.
    pub fn malware_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.programs[i].class == ProgramClass::Malware)
            .collect()
    }

    /// Indices of benign programs.
    pub fn benign_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.programs[i].class == ProgramClass::Benign)
            .collect()
    }

    /// Number of malware programs.
    pub fn malware_count(&self) -> usize {
        self.malware_indices().len()
    }

    /// Number of benign programs.
    pub fn benign_count(&self) -> usize {
        self.benign_indices().len()
    }
}

impl fmt::Display for Corpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Corpus({} programs: {} malware, {} benign)",
            self.len(),
            self.malware_count(),
            self.benign_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let c = CorpusConfig::tiny();
        assert_eq!(Corpus::build(&c), Corpus::build(&c));
    }

    #[test]
    fn counts_match_config() {
        let cfg = CorpusConfig::tiny();
        let corpus = Corpus::build(&cfg);
        assert_eq!(corpus.malware_count(), cfg.malware_per_family * 6);
        assert_eq!(corpus.benign_count(), cfg.benign_per_class * 8);
    }

    #[test]
    fn labels_align_with_indices() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let labels = corpus.labels();
        for i in corpus.malware_indices() {
            assert!(labels[i]);
        }
        for i in corpus.benign_indices() {
            assert!(!labels[i]);
        }
    }

    #[test]
    fn strata_cover_all_families() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let mut strata = corpus.strata();
        strata.sort_unstable();
        strata.dedup();
        assert_eq!(strata.len(), 14); // 6 malware families + 8 benign classes
    }

    #[test]
    fn programs_have_unique_names() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let mut names: Vec<&str> = corpus.programs().iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }
}
