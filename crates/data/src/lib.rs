//! Synthetic corpus construction for the RHMD reproduction.
//!
//! Replaces the paper's MalwareDB corpus (3,000 malware + 554 benign Windows
//! programs) with deterministic synthetic programs:
//!
//! * [`config::CorpusConfig`] — scale presets (`tiny` → `paper`), selectable
//!   via the `RHMD_SCALE` environment variable;
//! * [`corpus::Corpus`] — all programs across 6 malware families and 8
//!   benign application classes;
//! * [`splits::Splits`] — the stratified 60/20/20 victim / attacker-train /
//!   attacker-test split of paper §3;
//! * [`traced::TracedCorpus`] — every program executed once (in parallel)
//!   into fine-grained windows, from which any feature spec can be
//!   projected;
//! * [`store::CorpusStore`] — the on-disk data plane: `rhmd corpus build`
//!   traces once into mmap-able feature shards (content-addressed dedup,
//!   checkpointed builds), and evaluation reads zero-copy
//!   [`rhmd_ml::FeatureMatrix`] views back with bounded RSS;
//! * [`source::CorpusSource`] — the streaming trait that makes the traced
//!   corpus and the store interchangeable (and bit-identical) to every
//!   consumer.
//!
//! # Examples
//!
//! ```
//! use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
//! use rhmd_features::{FeatureKind, FeatureSpec};
//! use rhmd_uarch::CoreConfig;
//!
//! let config = CorpusConfig::tiny();
//! let corpus = Corpus::build(&config);
//! let splits = Splits::new(&corpus, config.seed);
//! let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
//! let spec = FeatureSpec::new(FeatureKind::Architectural, 10_000, vec![]);
//! let train = traced.window_dataset(&splits.victim_train, &spec);
//! assert!(train.positives() > 0 && train.negatives() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod corpus;
pub mod source;
pub mod splits;
pub mod store;
pub mod traced;

pub use config::CorpusConfig;
pub use corpus::Corpus;
pub use source::{CorpusSource, SourceChunk};
pub use splits::Splits;
pub use store::{CorpusStore, StoreBuilder, StoreManifest, StoreSummary};
pub use traced::{parallel_map, parallel_map_threads, TracedCorpus};
