//! [`CorpusSource`]: one streaming API over "where do feature rows come
//! from" — the in-RAM generated corpus or the mmap'd on-disk store.
//!
//! The evaluator, the CLI verbs, and the bench figure binaries all consume
//! per-program feature matrices plus labels. Before the corpus store, that
//! contract was implicit in [`TracedCorpus`]'s inherent methods; the trait
//! makes it explicit so a store-backed run ([`crate::store::CorpusStore`])
//! and a live-generation run are interchangeable — and byte-identical,
//! which the `store-smoke` CI job asserts by diffing sweep cells from both
//! paths.

use crate::store::CorpusStore;
use crate::traced::TracedCorpus;
use rhmd_features::pipeline::project_windows_into;
use rhmd_features::vector::FeatureSpec;
use rhmd_ml::matrix::FeatureMatrix;
use rhmd_runtime::RhmdError;

/// A contiguous run of programs yielded by [`CorpusSource::iter_chunks`].
#[derive(Debug, Clone, PartialEq)]
pub struct SourceChunk {
    /// Index of the first program in this chunk.
    pub start: usize,
    /// One feature matrix per program, in index order (`start`,
    /// `start + 1`, ...). Store-backed chunks hold zero-copy views.
    pub matrices: Vec<FeatureMatrix>,
}

/// A corpus of labelled programs whose feature rows can be read one program
/// (or one bounded chunk) at a time.
///
/// Implementations must agree bit-for-bit: for the same underlying corpus,
/// [`CorpusSource::features_of`] returns identical rows whether they were
/// just generated or read back from a shard.
pub trait CorpusSource {
    /// Number of programs.
    fn len(&self) -> usize;

    /// Whether the source holds no programs.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ground-truth label per program (`true` = malware).
    fn labels(&self) -> Vec<bool>;

    /// Stratum id per program, for stratified splitting.
    fn strata(&self) -> Vec<u32>;

    /// A stable identity for the backing data, folded into feature-cache
    /// keys: `0` for live generation, the store's path/config hash
    /// otherwise. Two sources with different identities never share cache
    /// entries.
    fn identity(&self) -> u64;

    /// All feature rows of program `index` under `spec` (one row per
    /// collection window).
    ///
    /// # Errors
    ///
    /// [`RhmdError::Config`] when `index` is out of range or the source
    /// cannot produce `spec` (e.g. a store built without it).
    fn features_of(&self, index: usize, spec: &FeatureSpec) -> Result<FeatureMatrix, RhmdError>;

    /// Streams the whole source as chunks of at most `chunk` programs, in
    /// index order — the bounded-RSS bulk path.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CorpusSource::features_of`] failure.
    fn iter_chunks(
        &self,
        spec: &FeatureSpec,
        chunk: usize,
    ) -> Box<dyn Iterator<Item = Result<SourceChunk, RhmdError>> + '_>;
}

/// Shared [`CorpusSource::iter_chunks`] implementation over `features_of`.
fn chunked<'a, S: CorpusSource + ?Sized>(
    source: &'a S,
    spec: &FeatureSpec,
    chunk: usize,
) -> Box<dyn Iterator<Item = Result<SourceChunk, RhmdError>> + 'a> {
    let chunk = chunk.max(1);
    let len = source.len();
    let spec = spec.clone();
    Box::new((0..len).step_by(chunk).map(move |start| {
        let end = (start + chunk).min(len);
        let matrices = (start..end)
            .map(|i| source.features_of(i, &spec))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SourceChunk { start, matrices })
    }))
}

impl CorpusSource for TracedCorpus {
    fn len(&self) -> usize {
        self.corpus().len()
    }

    fn labels(&self) -> Vec<bool> {
        self.corpus().labels()
    }

    fn strata(&self) -> Vec<u32> {
        self.corpus().strata()
    }

    /// Live generation: identity `0` by definition.
    fn identity(&self) -> u64 {
        0
    }

    fn features_of(&self, index: usize, spec: &FeatureSpec) -> Result<FeatureMatrix, RhmdError> {
        if index >= self.corpus().len() {
            return Err(RhmdError::config(format!(
                "program index {index} out of range ({} programs)",
                self.corpus().len()
            )));
        }
        let mut buf = Vec::new();
        let rows = project_windows_into(self.subwindows(index), spec, &mut buf);
        if spec.dims() == 0 {
            // Degenerate specs still count windows; preserve the row count
            // the store path records.
            let mut m = FeatureMatrix::new(0);
            for _ in 0..rows {
                m.push_row(&[]);
            }
            return Ok(m);
        }
        Ok(FeatureMatrix::from_flat(spec.dims(), buf))
    }

    fn iter_chunks(
        &self,
        spec: &FeatureSpec,
        chunk: usize,
    ) -> Box<dyn Iterator<Item = Result<SourceChunk, RhmdError>> + '_> {
        chunked(self, spec, chunk)
    }
}

impl CorpusSource for CorpusStore {
    fn len(&self) -> usize {
        CorpusStore::len(self)
    }

    fn labels(&self) -> Vec<bool> {
        CorpusStore::labels(self).to_vec()
    }

    fn strata(&self) -> Vec<u32> {
        CorpusStore::strata(self).to_vec()
    }

    fn identity(&self) -> u64 {
        CorpusStore::identity(self)
    }

    fn features_of(&self, index: usize, spec: &FeatureSpec) -> Result<FeatureMatrix, RhmdError> {
        CorpusStore::features_of(self, index, spec)
    }

    fn iter_chunks(
        &self,
        spec: &FeatureSpec,
        chunk: usize,
    ) -> Box<dyn Iterator<Item = Result<SourceChunk, RhmdError>> + '_> {
        chunked(self, spec, chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use crate::corpus::Corpus;
    use rhmd_features::vector::FeatureKind;
    use rhmd_uarch::CoreConfig;

    fn traced() -> TracedCorpus {
        let cfg = CorpusConfig::tiny();
        TracedCorpus::trace(Corpus::build(&cfg), cfg.limits(), CoreConfig::default())
    }

    #[test]
    fn traced_source_matches_inherent_vectors() {
        let t = traced();
        let spec = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let m = CorpusSource::features_of(&t, 0, &spec).unwrap();
        let direct = t.program_vectors(0, &spec);
        assert_eq!(m.len(), direct.len());
        for (row, want) in (0..m.len()).zip(&direct) {
            assert_eq!(m.row(row), want.as_slice());
        }
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let t = traced();
        let spec = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let mut seen = 0usize;
        for chunk in t.iter_chunks(&spec, 7) {
            let chunk = chunk.unwrap();
            assert_eq!(chunk.start, seen);
            seen += chunk.matrices.len();
        }
        assert_eq!(seen, CorpusSource::len(&t));
    }

    #[test]
    fn out_of_range_is_a_config_error() {
        let t = traced();
        let spec = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let err = CorpusSource::features_of(&t, 100_000, &spec).unwrap_err();
        assert!(matches!(err, RhmdError::Config(_)));
    }
}
