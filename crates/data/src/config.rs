//! Corpus scale presets.
//!
//! The paper's corpus is 3,000 malware + 554 benign programs traced for up
//! to 15M instructions each — several terabytes of Pin traces collected over
//! weeks. The synthetic corpus scales that down by default; the `paper`
//! preset approximates the original counts for users with time to burn.

use rhmd_trace::exec::ExecLimits;
use serde::{Deserialize, Serialize};

/// How large a corpus to build and how long to trace each program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Programs generated per malware family (6 families).
    pub malware_per_family: usize,
    /// Programs generated per benign class (8 classes).
    pub benign_per_class: usize,
    /// Trace budget per program.
    pub max_instructions: u64,
    /// Trace budget per program (system calls).
    pub max_syscalls: u64,
    /// Master seed; programs, splits and detector training all derive from
    /// it.
    pub seed: u64,
}

impl CorpusConfig {
    /// Minimal corpus for unit tests (~70 programs, 30K instructions each).
    pub fn tiny() -> CorpusConfig {
        CorpusConfig {
            malware_per_family: 8,
            benign_per_class: 5,
            max_instructions: 60_000,
            max_syscalls: 200,
            seed: 0xda7a,
        }
    }

    /// Small corpus for fast experiment iterations (~210 programs).
    pub fn small() -> CorpusConfig {
        CorpusConfig {
            malware_per_family: 20,
            benign_per_class: 12,
            max_instructions: 100_000,
            max_syscalls: 300,
            seed: 0xda7a,
        }
    }

    /// Default experiment corpus (~400 programs, 200K instructions each):
    /// the paper's setup scaled ~7× down in programs and 75× in trace
    /// length.
    pub fn standard() -> CorpusConfig {
        CorpusConfig {
            malware_per_family: 40,
            benign_per_class: 18,
            max_instructions: 200_000,
            max_syscalls: 400,
            seed: 0xda7a,
        }
    }

    /// Paper-scale corpus: 3,000 malware + 552 benign, 1M-instruction
    /// traces. Expect hours of CPU time.
    pub fn paper() -> CorpusConfig {
        CorpusConfig {
            malware_per_family: 500,
            benign_per_class: 69,
            max_instructions: 1_000_000,
            max_syscalls: 5_000,
            seed: 0xda7a,
        }
    }

    /// Looks up a preset by name (`tiny` | `small` | `standard` | `paper`).
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names when `name` matches none of
    /// them, so callers can surface it to users verbatim.
    pub fn from_scale_name(name: &str) -> Result<CorpusConfig, String> {
        match name {
            "tiny" => Ok(CorpusConfig::tiny()),
            "small" => Ok(CorpusConfig::small()),
            "standard" => Ok(CorpusConfig::standard()),
            "paper" => Ok(CorpusConfig::paper()),
            other => Err(format!(
                "unknown scale '{other}' (expected tiny|small|standard|paper)"
            )),
        }
    }

    /// Reads `RHMD_SCALE` (`tiny` | `small` | `standard` | `paper`) from the
    /// environment, defaulting to [`CorpusConfig::standard`] when unset or
    /// unrecognized.
    pub fn from_env() -> CorpusConfig {
        match std::env::var("RHMD_SCALE") {
            Ok(name) => {
                CorpusConfig::from_scale_name(&name).unwrap_or_else(|_| CorpusConfig::standard())
            }
            Err(_) => CorpusConfig::standard(),
        }
    }

    /// The execution limits implied by the trace budgets.
    pub fn limits(&self) -> ExecLimits {
        ExecLimits {
            max_instructions: self.max_instructions,
            max_original_instructions: u64::MAX,
            max_syscalls: self.max_syscalls,
            max_call_depth: 128,
        }
    }

    /// Total programs this config generates.
    pub fn total_programs(&self) -> usize {
        self.malware_per_family * rhmd_trace::generate::MalwareFamily::ALL.len()
            + self.benign_per_class * rhmd_trace::generate::BenignClass::ALL.len()
    }
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_up() {
        assert!(CorpusConfig::tiny().total_programs() < CorpusConfig::small().total_programs());
        assert!(
            CorpusConfig::small().total_programs() < CorpusConfig::standard().total_programs()
        );
        assert!(
            CorpusConfig::standard().total_programs() < CorpusConfig::paper().total_programs()
        );
    }

    #[test]
    fn paper_preset_matches_paper_counts() {
        let p = CorpusConfig::paper();
        assert_eq!(p.malware_per_family * 6, 3_000);
        assert_eq!(p.benign_per_class * 8, 552); // paper: 554
    }

    #[test]
    fn scale_names_resolve() {
        assert_eq!(CorpusConfig::from_scale_name("tiny"), Ok(CorpusConfig::tiny()));
        assert_eq!(CorpusConfig::from_scale_name("paper"), Ok(CorpusConfig::paper()));
        let err = CorpusConfig::from_scale_name("galactic").unwrap_err();
        assert!(err.contains("galactic") && err.contains("tiny|small|standard|paper"));
    }

    #[test]
    fn limits_carry_budgets() {
        let c = CorpusConfig::tiny();
        let l = c.limits();
        assert_eq!(l.max_instructions, c.max_instructions);
        assert_eq!(l.max_syscalls, c.max_syscalls);
    }
}
