//! The paper's three-way corpus split (§3): 60% victim training, 20%
//! attacker training, 20% attacker testing — stratified per family so "each
//! set includes a randomly selected subset of malware samples from each type
//! of malware".

use crate::corpus::Corpus;
use rhmd_ml::split::stratified_split;
use serde::{Deserialize, Serialize};

/// Index sets of the three roles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Splits {
    /// Programs the victim (defender) trains on.
    pub victim_train: Vec<usize>,
    /// Programs the attacker queries the victim with, to train a surrogate.
    pub attacker_train: Vec<usize>,
    /// Programs the attacker evaluates agreement / evasion on.
    pub attacker_test: Vec<usize>,
}

impl Splits {
    /// Splits a corpus 60/20/20, stratified by generation family.
    pub fn new(corpus: &Corpus, seed: u64) -> Splits {
        Splits::from_strata(&corpus.strata(), seed)
    }

    /// Splits from a stratum vector alone — the corpus store records strata
    /// in its manifest, so store-backed runs rebuild the exact same splits
    /// without regenerating a [`Corpus`].
    pub fn from_strata(strata: &[u32], seed: u64) -> Splits {
        let groups = stratified_split(strata, &[0.6, 0.2, 0.2], seed);
        let mut iter = groups.into_iter();
        Splits {
            victim_train: iter.next().expect("three groups"),
            attacker_train: iter.next().expect("three groups"),
            attacker_test: iter.next().expect("three groups"),
        }
    }

    /// All three index sets in role order.
    pub fn roles(&self) -> [&[usize]; 3] {
        [
            &self.victim_train,
            &self.attacker_train,
            &self.attacker_test,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;

    #[test]
    fn splits_partition_the_corpus() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let s = Splits::new(&corpus, 1);
        let mut all: Vec<usize> = s
            .roles()
            .iter()
            .flat_map(|r| r.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..corpus.len()).collect::<Vec<_>>());
    }

    #[test]
    fn every_role_sees_malware_and_benign() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let labels = corpus.labels();
        let s = Splits::new(&corpus, 2);
        for role in s.roles() {
            assert!(role.iter().any(|&i| labels[i]), "role lacks malware");
            assert!(role.iter().any(|&i| !labels[i]), "role lacks benign");
        }
    }

    #[test]
    fn victim_split_is_largest() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let s = Splits::new(&corpus, 3);
        assert!(s.victim_train.len() > s.attacker_train.len());
        assert!(s.victim_train.len() > s.attacker_test.len());
    }

    #[test]
    fn from_strata_matches_corpus_splits() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        assert_eq!(
            Splits::new(&corpus, 11),
            Splits::from_strata(&corpus.strata(), 11)
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        assert_eq!(Splits::new(&corpus, 7), Splits::new(&corpus, 7));
        assert_ne!(Splits::new(&corpus, 7), Splits::new(&corpus, 8));
    }
}
