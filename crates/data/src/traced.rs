//! Traced corpus: every program executed once at fine window granularity,
//! so any feature kind × period combination can be projected without
//! re-simulation.
//!
//! This mirrors the paper's methodology: traces are collected once (weeks of
//! Pin runs in the original) and the many detector configurations are all
//! derived from the stored traces.

use crate::corpus::Corpus;
use rhmd_features::pipeline::{project_windows_into, trace_subwindows};
use rhmd_features::vector::FeatureSpec;
use rhmd_features::window::RawWindow;
use rhmd_ml::model::Dataset;
use rhmd_trace::exec::ExecLimits;
use rhmd_trace::Program;
use rhmd_uarch::CoreConfig;
use std::fmt;

/// Runs `f` over `items` on all available cores, preserving order.
///
/// Each item is independent and deterministic, so the result is identical to
/// a sequential map.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parallel_map_threads(threads, items, f)
}

/// [`parallel_map`] with an explicit worker count (the CLI's `--threads`).
///
/// Output is identical at any `threads` value, including 1: parallelism
/// only changes which worker computes each slot, never the result.
pub fn parallel_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let out_chunks: Vec<&mut [Option<R>]> = out.chunks_mut(chunk).collect();
    std::thread::scope(|scope| {
        for (slice, results) in items.chunks(chunk).zip(out_chunks) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in slice.iter().zip(results.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// A corpus plus its per-program subwindow traces.
pub struct TracedCorpus {
    corpus: Corpus,
    limits: ExecLimits,
    core_config: CoreConfig,
    subwindows: Vec<Vec<RawWindow>>,
}

impl TracedCorpus {
    /// Traces every program in `corpus` (in parallel across cores).
    pub fn trace(corpus: Corpus, limits: ExecLimits, core_config: CoreConfig) -> TracedCorpus {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        TracedCorpus::trace_threads(corpus, limits, core_config, threads)
    }

    /// Like [`TracedCorpus::trace`] with an explicit worker count. Traces
    /// are bit-identical at any `threads` value — each program's simulation
    /// is self-contained.
    pub fn trace_threads(
        corpus: Corpus,
        limits: ExecLimits,
        core_config: CoreConfig,
        threads: usize,
    ) -> TracedCorpus {
        let subwindows = parallel_map_threads(threads, corpus.programs(), |p| {
            trace_subwindows(p, limits, core_config)
        });
        rhmd_obs::add("data.programs_traced", subwindows.len() as u64);
        TracedCorpus {
            corpus,
            limits,
            core_config,
            subwindows,
        }
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The per-program trace limits used.
    pub fn limits(&self) -> ExecLimits {
        self.limits
    }

    /// The core model configuration used.
    pub fn core_config(&self) -> CoreConfig {
        self.core_config
    }

    /// Subwindows of program `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn subwindows(&self, index: usize) -> &[RawWindow] {
        &self.subwindows[index]
    }

    /// Feature vectors of program `index` under `spec` (one per window).
    pub fn program_vectors(&self, index: usize, spec: &FeatureSpec) -> Vec<Vec<f64>> {
        rhmd_features::pipeline::project_windows(&self.subwindows[index], spec)
    }

    /// Builds a window-level dataset over the given program indices,
    /// labelling every window with its program's ground truth.
    ///
    /// Each program is projected into one reused flat buffer and appended
    /// to the dataset's backing matrix in a single extend — no per-window
    /// allocation.
    pub fn window_dataset(&self, indices: &[usize], spec: &FeatureSpec) -> Dataset {
        let mut data = Dataset::new(spec.dims());
        let mut buf = Vec::new();
        for &i in indices {
            let label = self.corpus.program(i).class.label();
            buf.clear();
            project_windows_into(&self.subwindows[i], spec, &mut buf);
            data.extend_from_flat(&buf, label);
        }
        data
    }

    /// Like [`TracedCorpus::window_dataset`] but also returns, for each row,
    /// the index of the program it came from — needed for program-level
    /// (vote-averaged) decisions.
    pub fn window_dataset_with_owners(
        &self,
        indices: &[usize],
        spec: &FeatureSpec,
    ) -> (Dataset, Vec<usize>) {
        let mut data = Dataset::new(spec.dims());
        let mut owners = Vec::new();
        let mut buf = Vec::new();
        for &i in indices {
            let label = self.corpus.program(i).class.label();
            buf.clear();
            let windows = project_windows_into(&self.subwindows[i], spec, &mut buf);
            data.extend_from_flat(&buf, label);
            owners.extend(std::iter::repeat_n(i, windows));
        }
        (data, owners)
    }

    /// Traces a standalone program (e.g. an injected variant) with this
    /// corpus's limits and core configuration, scaling the instruction
    /// budget by `budget_factor` so payload-inflated programs still cover
    /// their original behaviour.
    pub fn trace_program(&self, program: &Program, budget_factor: f64) -> Vec<RawWindow> {
        let limits = ExecLimits {
            max_instructions: (self.limits.max_instructions as f64 * budget_factor) as u64,
            ..self.limits
        };
        trace_subwindows(program, limits, self.core_config)
    }
}

impl fmt::Debug for TracedCorpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracedCorpus")
            .field("programs", &self.corpus.len())
            .field("limits", &self.limits)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use rhmd_features::vector::FeatureKind;

    fn traced() -> TracedCorpus {
        let cfg = CorpusConfig::tiny();
        TracedCorpus::trace(Corpus::build(&cfg), cfg.limits(), CoreConfig::default())
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map::<u8, u8, _>(&[], |&x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(&[5], |&x: &u8| x + 1), vec![6]);
    }

    #[test]
    fn every_program_is_traced() {
        let t = traced();
        for i in 0..t.corpus().len() {
            assert!(!t.subwindows(i).is_empty(), "program {i} has no windows");
        }
    }

    #[test]
    fn window_dataset_labels_follow_programs() {
        let t = traced();
        let spec = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let malware = t.corpus().malware_indices();
        let data = t.window_dataset(&malware[..2.min(malware.len())], &spec);
        assert!(!data.is_empty());
        assert_eq!(data.positives(), data.len());
    }

    #[test]
    fn owners_align_with_rows() {
        let t = traced();
        let spec = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let idx = vec![0usize, 1];
        let (data, owners) = t.window_dataset_with_owners(&idx, &spec);
        assert_eq!(data.len(), owners.len());
        assert!(owners.iter().all(|o| idx.contains(o)));
    }

    #[test]
    fn tracing_matches_direct_extraction() {
        let cfg = CorpusConfig::tiny();
        let corpus = Corpus::build(&cfg);
        let t = TracedCorpus::trace(corpus.clone(), cfg.limits(), CoreConfig::default());
        let direct = trace_subwindows(corpus.program(3), cfg.limits(), CoreConfig::default());
        assert_eq!(t.subwindows(3), direct.as_slice());
    }
}
