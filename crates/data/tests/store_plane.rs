//! Corpus-store data-plane tests: shard round trips are bit-identical to
//! live generation at any thread count, corrupt shards are rejected with
//! typed errors, dedup is invisible to consumers, and interrupted builds
//! resume to identical bytes.

use rhmd_data::config::CorpusConfig;
use rhmd_data::corpus::Corpus;
use rhmd_data::source::CorpusSource;
use rhmd_data::store::{CorpusStore, StoreBuilder, SHARD_HEADER_LEN};
use rhmd_data::traced::TracedCorpus;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_runtime::RhmdError;
use rhmd_uarch::CoreConfig;
use std::path::{Path, PathBuf};

fn small_config() -> CorpusConfig {
    CorpusConfig {
        malware_per_family: 2,
        benign_per_class: 2,
        max_instructions: 20_000,
        max_syscalls: 100,
        seed: 0x5708e,
    }
}

fn specs() -> Vec<FeatureSpec> {
    vec![
        FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]),
        FeatureSpec::new(FeatureKind::Architectural, 10_000, vec![]),
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rhmd-store-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "shard"))
        .collect();
    files.sort();
    files
}

#[test]
fn shard_round_trip_is_bit_identical_at_any_thread_count() {
    let config = small_config();
    let dir1 = temp_dir("threads1");
    let dir4 = temp_dir("threads4");
    let s1 = StoreBuilder::new(&dir1, config)
        .specs(specs())
        .threads(1)
        .build()
        .unwrap();
    let s4 = StoreBuilder::new(&dir4, config)
        .specs(specs())
        .threads(4)
        .chunk(3)
        .build()
        .unwrap();
    assert_eq!(s1.programs, config.total_programs());
    assert_eq!(s1.rows, s4.rows);

    // Shard files byte-for-byte identical across thread counts.
    let files1 = shard_files(&dir1);
    let files4 = shard_files(&dir4);
    assert_eq!(files1.len(), 2);
    for (a, b) in files1.iter().zip(&files4) {
        assert_eq!(a.file_name(), b.file_name());
        assert_eq!(std::fs::read(a).unwrap(), std::fs::read(b).unwrap());
    }

    // Mapped views bit-identical to live generation.
    let store = CorpusStore::open(&dir1).unwrap();
    let traced = TracedCorpus::trace(
        Corpus::build(&config),
        config.limits(),
        CoreConfig::default(),
    );
    assert_eq!(CorpusSource::len(&store), CorpusSource::len(&traced));
    assert_eq!(CorpusSource::labels(&store), CorpusSource::labels(&traced));
    assert_eq!(CorpusSource::strata(&store), CorpusSource::strata(&traced));
    for spec in specs() {
        for i in 0..CorpusSource::len(&store) {
            let from_store = store.features_of(i, &spec).unwrap();
            let live = CorpusSource::features_of(&traced, i, &spec).unwrap();
            assert_eq!(from_store, live, "program {i} spec {}", spec.label());
        }
    }

    std::fs::remove_dir_all(&dir1).ok();
    std::fs::remove_dir_all(&dir4).ok();
}

#[test]
fn store_and_live_sources_have_distinct_identities() {
    let config = small_config();
    let dir = temp_dir("identity");
    StoreBuilder::new(&dir, config)
        .specs(specs())
        .build()
        .unwrap();
    let store = CorpusStore::open(&dir).unwrap();
    let traced = TracedCorpus::trace(
        Corpus::build(&config),
        config.limits(),
        CoreConfig::default(),
    );
    assert_eq!(CorpusSource::identity(&traced), 0);
    assert_ne!(CorpusSource::identity(&store), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rebuilding_over_a_finished_store_resumes_to_identical_bytes() {
    let config = small_config();
    let dir = temp_dir("resume");
    let fresh = temp_dir("resume-fresh");
    StoreBuilder::new(&dir, config).specs(specs()).build().unwrap();
    let resumed = StoreBuilder::new(&dir, config).specs(specs()).build().unwrap();
    assert!(resumed.resumed_chunks > 0, "second build should skip journaled chunks");
    StoreBuilder::new(&fresh, config).specs(specs()).build().unwrap();
    for (a, b) in shard_files(&dir).iter().zip(shard_files(&fresh).iter()) {
        assert_eq!(std::fs::read(a).unwrap(), std::fs::read(b).unwrap());
    }
    CorpusStore::open(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&fresh).ok();
}

#[test]
fn truncated_and_corrupt_shards_are_rejected_with_typed_errors() {
    let config = small_config();
    let dir = temp_dir("corrupt");
    StoreBuilder::new(&dir, config)
        .specs(vec![specs().remove(0)])
        .build()
        .unwrap();
    let shard = shard_files(&dir).remove(0);
    let original = std::fs::read(&shard).unwrap();

    // Truncated data region.
    std::fs::write(&shard, &original[..original.len() - 8]).unwrap();
    match CorpusStore::open(&dir) {
        Err(RhmdError::Parse { message, .. }) => {
            assert!(message.contains("truncated"), "unexpected message: {message}")
        }
        other => panic!("expected Parse error for truncated shard, got {other:?}"),
    }

    // Flipped byte in the data region.
    let mut corrupt = original.clone();
    corrupt[SHARD_HEADER_LEN + 3] ^= 0xff;
    std::fs::write(&shard, &corrupt).unwrap();
    match CorpusStore::open(&dir) {
        Err(RhmdError::Parse { message, .. }) => {
            assert!(message.contains("checksum"), "unexpected message: {message}")
        }
        other => panic!("expected Parse error for corrupt shard, got {other:?}"),
    }

    // Wrong magic.
    let mut bad_magic = original.clone();
    bad_magic[0] = b'X';
    std::fs::write(&shard, &bad_magic).unwrap();
    match CorpusStore::open(&dir) {
        Err(RhmdError::Parse { message, .. }) => {
            assert!(message.contains("magic"), "unexpected message: {message}")
        }
        other => panic!("expected Parse error for bad magic, got {other:?}"),
    }

    // Unsupported shard version.
    let mut bad_version = original.clone();
    bad_version[8] = 99;
    std::fs::write(&shard, &bad_version).unwrap();
    assert!(matches!(
        CorpusStore::open(&dir),
        Err(RhmdError::Version { found: 99, .. })
    ));

    // Restoring the original bytes makes the store open again.
    std::fs::write(&shard, &original).unwrap();
    CorpusStore::open(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_spec_is_a_config_error_naming_the_stored_specs() {
    let config = small_config();
    let dir = temp_dir("missing-spec");
    StoreBuilder::new(&dir, config)
        .specs(vec![specs().remove(0)])
        .build()
        .unwrap();
    let store = CorpusStore::open(&dir).unwrap();
    let other = FeatureSpec::new(FeatureKind::Instructions, 5_000, vec![]);
    match store.features_of(0, &other) {
        Err(RhmdError::Config(message)) => {
            assert!(message.contains(&other.label()), "unexpected message: {message}")
        }
        other => panic!("expected Config error for missing spec, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Dedup semantics: duplicated programs alias the canonical rows exactly
/// and never change what any consumer observes.
#[test]
fn dedup_is_invisible_and_canonical_rows_always_win() {
    let config = small_config();
    let base = Corpus::build(&config);
    let mut programs = base.programs().to_vec();
    // Duplicate program 0 twice and program 3 once, under fresh names —
    // same structure, different identity.
    let mut dup_a = programs[0].clone();
    dup_a.name = "dup-of-0-a".to_string();
    let mut dup_b = programs[0].clone();
    dup_b.name = "dup-of-0-b".to_string();
    let mut dup_c = programs[3].clone();
    dup_c.name = "dup-of-3".to_string();
    programs.push(dup_a);
    programs.push(dup_b);
    programs.push(dup_c);
    let corpus = Corpus::from_programs(programs);
    let n = corpus.len();

    let dir = temp_dir("dedup");
    let summary = StoreBuilder::new(&dir, config)
        .specs(specs())
        .with_corpus(corpus.clone())
        .build()
        .unwrap();
    assert_eq!(summary.programs, n);
    assert_eq!(summary.duplicates, 3);
    assert_eq!(summary.canonical, n - 3);

    let store = CorpusStore::open(&dir).unwrap();
    let manifest = store.manifest();
    assert_eq!(manifest.canonical[n - 3], 0, "dup-of-0-a aliases program 0");
    assert_eq!(manifest.canonical[n - 2], 0, "dup-of-0-b aliases program 0");
    assert_eq!(manifest.canonical[n - 1], 3, "dup-of-3 aliases program 3");
    assert!(manifest.dedup_ratio() > 0.0);

    // Labels still come from each program (not its canonical), and the
    // duplicate's feature rows are bit-identical to the canonical's.
    assert_eq!(store.labels().len(), n);
    for spec in specs() {
        let canon = store.features_of(0, &spec).unwrap();
        for dup in [n - 3, n - 2] {
            assert_eq!(store.features_of(dup, &spec).unwrap(), canon);
        }
        assert_eq!(
            store.features_of(n - 1, &spec).unwrap(),
            store.features_of(3, &spec).unwrap()
        );
    }

    // And dedup never changes verdict inputs: rows equal live generation
    // for every program, duplicates included.
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    let spec = specs().remove(0);
    for i in 0..n {
        assert_eq!(
            store.features_of(i, &spec).unwrap(),
            CorpusSource::features_of(&traced, i, &spec).unwrap(),
            "program {i}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
