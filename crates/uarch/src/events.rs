//! Hardware event counters — the performance-monitoring unit the paper's
//! Architectural feature reads.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// One sample of the performance counters.
///
/// All counts are deltas over some interval (usually a collection window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSet {
    /// Committed instructions.
    pub instructions: u64,
    /// Load micro-accesses.
    pub loads: u64,
    /// Store micro-accesses.
    pub stores: u64,
    /// Unaligned memory accesses.
    pub unaligned: u64,
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Taken control transfers (all kinds).
    pub taken_branches: u64,
    /// Direction mispredictions.
    pub mispredicts: u64,
    /// BTB misses on taken transfers.
    pub btb_misses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Unified L2 misses.
    pub l2_misses: u64,
    /// Instruction-TLB misses.
    pub itlb_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
    /// Function calls.
    pub calls: u64,
    /// Function returns.
    pub returns: u64,
    /// System calls.
    pub syscalls: u64,
}

/// Number of scalar event channels exported to the Architectural feature.
pub const COUNTER_DIMS: usize = 16;

/// Names of the exported channels, in [`CounterSet::to_array`] order.
pub const COUNTER_NAMES: [&str; COUNTER_DIMS] = [
    "instructions",
    "loads",
    "stores",
    "unaligned",
    "cond_branches",
    "taken_branches",
    "mispredicts",
    "btb_misses",
    "icache_misses",
    "dcache_misses",
    "l2_misses",
    "itlb_misses",
    "dtlb_misses",
    "calls",
    "returns",
    "syscalls",
];

impl CounterSet {
    /// Exports the counters as a fixed-order array (see [`COUNTER_NAMES`]).
    pub fn to_array(&self) -> [u64; COUNTER_DIMS] {
        [
            self.instructions,
            self.loads,
            self.stores,
            self.unaligned,
            self.cond_branches,
            self.taken_branches,
            self.mispredicts,
            self.btb_misses,
            self.icache_misses,
            self.dcache_misses,
            self.l2_misses,
            self.itlb_misses,
            self.dtlb_misses,
            self.calls,
            self.returns,
            self.syscalls,
        ]
    }

    /// Rebuilds a counter set from a fixed-order array (inverse of
    /// [`CounterSet::to_array`]).
    pub fn from_array(a: [u64; COUNTER_DIMS]) -> CounterSet {
        CounterSet {
            instructions: a[0],
            loads: a[1],
            stores: a[2],
            unaligned: a[3],
            cond_branches: a[4],
            taken_branches: a[5],
            mispredicts: a[6],
            btb_misses: a[7],
            icache_misses: a[8],
            dcache_misses: a[9],
            l2_misses: a[10],
            itlb_misses: a[11],
            dtlb_misses: a[12],
            calls: a[13],
            returns: a[14],
            syscalls: a[15],
        }
    }

    /// Normalizes every channel by the committed-instruction count, yielding
    /// per-instruction rates suitable as detector features.
    pub fn to_rates(&self) -> [f64; COUNTER_DIMS] {
        let denom = self.instructions.max(1) as f64;
        let raw = self.to_array();
        let mut rates = [0.0; COUNTER_DIMS];
        for (r, &v) in rates.iter_mut().zip(&raw) {
            *r = v as f64 / denom;
        }
        // Channel 0 would always be 1.0; expose it as window fill instead
        // (useful for truncated final windows).
        rates[0] = 1.0;
        rates
    }
}

impl Add for CounterSet {
    type Output = CounterSet;

    fn add(mut self, rhs: CounterSet) -> CounterSet {
        self += rhs;
        self
    }
}

impl AddAssign for CounterSet {
    fn add_assign(&mut self, rhs: CounterSet) {
        self.instructions += rhs.instructions;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.unaligned += rhs.unaligned;
        self.cond_branches += rhs.cond_branches;
        self.taken_branches += rhs.taken_branches;
        self.mispredicts += rhs.mispredicts;
        self.btb_misses += rhs.btb_misses;
        self.icache_misses += rhs.icache_misses;
        self.dcache_misses += rhs.dcache_misses;
        self.l2_misses += rhs.l2_misses;
        self.itlb_misses += rhs.itlb_misses;
        self.dtlb_misses += rhs.dtlb_misses;
        self.calls += rhs.calls;
        self.returns += rhs.returns;
        self.syscalls += rhs.syscalls;
    }
}

impl Sub for CounterSet {
    type Output = CounterSet;

    /// Pairwise saturating difference, for delta-over-interval readings.
    fn sub(self, rhs: CounterSet) -> CounterSet {
        CounterSet {
            instructions: self.instructions.saturating_sub(rhs.instructions),
            loads: self.loads.saturating_sub(rhs.loads),
            stores: self.stores.saturating_sub(rhs.stores),
            unaligned: self.unaligned.saturating_sub(rhs.unaligned),
            cond_branches: self.cond_branches.saturating_sub(rhs.cond_branches),
            taken_branches: self.taken_branches.saturating_sub(rhs.taken_branches),
            mispredicts: self.mispredicts.saturating_sub(rhs.mispredicts),
            btb_misses: self.btb_misses.saturating_sub(rhs.btb_misses),
            icache_misses: self.icache_misses.saturating_sub(rhs.icache_misses),
            dcache_misses: self.dcache_misses.saturating_sub(rhs.dcache_misses),
            l2_misses: self.l2_misses.saturating_sub(rhs.l2_misses),
            itlb_misses: self.itlb_misses.saturating_sub(rhs.itlb_misses),
            dtlb_misses: self.dtlb_misses.saturating_sub(rhs.dtlb_misses),
            calls: self.calls.saturating_sub(rhs.calls),
            returns: self.returns.saturating_sub(rhs.returns),
            syscalls: self.syscalls.saturating_sub(rhs.syscalls),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_matches_names() {
        let c = CounterSet {
            instructions: 1,
            syscalls: 13,
            ..CounterSet::default()
        };
        let a = c.to_array();
        assert_eq!(a.len(), COUNTER_NAMES.len());
        assert_eq!(a[0], 1);
        assert_eq!(a[COUNTER_DIMS - 1], 13);
    }

    #[test]
    fn rates_normalize_by_instructions() {
        let c = CounterSet {
            instructions: 200,
            loads: 50,
            ..CounterSet::default()
        };
        let r = c.to_rates();
        assert_eq!(r[0], 1.0);
        assert!((r[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rates_survive_zero_instructions() {
        let r = CounterSet::default().to_rates();
        assert!(r.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let a = CounterSet {
            instructions: 10,
            loads: 4,
            ..CounterSet::default()
        };
        let b = CounterSet {
            instructions: 7,
            loads: 1,
            mispredicts: 2,
            ..CounterSet::default()
        };
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn sub_saturates() {
        let small = CounterSet {
            instructions: 1,
            ..CounterSet::default()
        };
        let big = CounterSet {
            instructions: 5,
            ..CounterSet::default()
        };
        assert_eq!((small - big).instructions, 0);
    }
}
