//! Frozen pre-refactor µarch implementation, kept as the differential
//! oracle for the optimized structures.
//!
//! These are the seed-era scan-based structures exactly as they shipped
//! before the trace-phase hot-path work: the cache divides by the set
//! count at runtime, probes ways with a linear scan, and picks its LRU
//! victim with a second `min_by_key` pass over the stamps; the TLB scans
//! every entry on each translation. [`ReferenceCore`] wires them together
//! with the original per-event commit-stage body.
//!
//! **Do not optimize this module.** Its entire value is that it shares no
//! code with [`crate::cache::Cache`], [`crate::tlb::Tlb`], or the batched
//! [`crate::CoreModel`] paths, so agreement between the two is evidence of
//! correctness rather than of a shared bug. It also serves as the honest
//! "before" leg of `bench_trace`: the pre-refactor path the speedup gate
//! is measured against.

use crate::branch::{Btb, GsharePredictor};
use crate::cache::CacheConfig;
use crate::core::{CoreConfig, CounterSource};
use crate::events::CounterSet;
use crate::tlb::{TlbConfig, PAGE_BYTES};
use rhmd_trace::exec::{BranchKind, ExecEvent, Observer};

/// Seed-era set-associative LRU cache: runtime division for the set index,
/// linear way scan, and a stamp `min_by_key` pass to find the victim.
#[derive(Debug, Clone)]
pub struct ScanCache {
    ways: usize,
    sets: u32,
    line_shift: u32,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl ScanCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> ScanCache {
        let sets = config.sets();
        let entries = (sets * config.ways) as usize;
        ScanCache {
            ways: config.ways as usize,
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Performs one access; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line % u64::from(self.sets)) as usize;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(way) = slots.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            return true;
        }
        self.misses += 1;
        let victim = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways > 0");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Accesses that straddle a line boundary touch both lines; returns the
    /// number of misses incurred (0–2).
    pub fn access_range(&mut self, addr: u64, size: u8) -> u32 {
        let first = u32::from(!self.access(addr));
        if size > 1 {
            let last = addr + u64::from(size) - 1;
            if (last >> self.line_shift) != (addr >> self.line_shift) {
                return first + u32::from(!self.access(last));
            }
        }
        first
    }
}

/// Seed-era fully-associative TLB: a linear scan over every entry per
/// translation, stamp-based LRU eviction.
#[derive(Debug, Clone)]
pub struct ScanTlb {
    pages: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    /// Total translations requested.
    pub accesses: u64,
    /// Translations that missed.
    pub misses: u64,
}

impl ScanTlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero.
    pub fn new(config: TlbConfig) -> ScanTlb {
        assert!(config.entries > 0, "TLB needs at least one entry");
        ScanTlb {
            pages: vec![u64::MAX; config.entries as usize],
            stamps: vec![0; config.entries as usize],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Translates one address; returns `true` on hit. Misses install the
    /// page, evicting the LRU entry.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let page = addr / PAGE_BYTES;
        if let Some(slot) = self.pages.iter().position(|&p| p == page) {
            self.stamps[slot] = self.clock;
            return true;
        }
        self.misses += 1;
        let victim = (0..self.pages.len())
            .min_by_key(|&i| self.stamps[i])
            .expect("entries > 0");
        self.pages[victim] = page;
        self.stamps[victim] = self.clock;
        false
    }
}

/// The seed-era commit-stage model: scan-based structures driven one
/// [`ExecEvent`] at a time. Decision-identical to [`crate::CoreModel`] —
/// and kept around precisely so that claim stays testable.
#[derive(Debug, Clone)]
pub struct ReferenceCore {
    icache: ScanCache,
    dcache: ScanCache,
    l2: ScanCache,
    itlb: ScanTlb,
    dtlb: ScanTlb,
    gshare: GsharePredictor,
    btb: Btb,
    counters: CounterSet,
}

impl ReferenceCore {
    /// Creates a core with cold structures.
    pub fn new(config: CoreConfig) -> ReferenceCore {
        ReferenceCore {
            icache: ScanCache::new(config.icache),
            dcache: ScanCache::new(config.dcache),
            l2: ScanCache::new(config.l2),
            itlb: ScanTlb::new(config.itlb),
            dtlb: ScanTlb::new(config.dtlb),
            gshare: GsharePredictor::new(config.branch.ghr_bits),
            btb: Btb::new(config.branch.btb_entries),
            counters: CounterSet::default(),
        }
    }

    /// Read-only view of the counters accumulated so far.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }
}

impl CounterSource for ReferenceCore {
    fn drain_counters(&mut self) -> CounterSet {
        std::mem::take(&mut self.counters)
    }
}

impl Observer for ReferenceCore {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        let c = &mut self.counters;
        c.instructions += 1;

        // Instruction fetch.
        if !self.itlb.access(ev.pc) {
            c.itlb_misses += 1;
        }
        let ic_misses = self.icache.access_range(ev.pc, 4);
        c.icache_misses += u64::from(ic_misses);
        if ic_misses > 0 && !self.l2.access(ev.pc) {
            c.l2_misses += 1;
        }

        // Data access.
        if let Some(mem) = ev.mem {
            if !self.dtlb.access(mem.addr) {
                c.dtlb_misses += 1;
            }
            let misses = self.dcache.access_range(mem.addr, mem.size);
            c.dcache_misses += u64::from(misses);
            if misses > 0 && !self.l2.access(mem.addr) {
                c.l2_misses += 1;
            }
            if ev.opcode.is_load() {
                c.loads += 1;
            }
            if ev.opcode.is_store() {
                c.stores += 1;
            }
            if mem.is_unaligned() {
                c.unaligned += 1;
            }
        }

        // Control flow.
        if let Some(branch) = ev.branch {
            match branch.kind {
                BranchKind::Conditional => {
                    c.cond_branches += 1;
                    if !self.gshare.predict_and_update(ev.pc, branch.taken) {
                        c.mispredicts += 1;
                    }
                }
                BranchKind::Call => c.calls += 1,
                BranchKind::Return => c.returns += 1,
                BranchKind::Jump => {}
            }
            if branch.taken {
                c.taken_branches += 1;
                if !self.btb.lookup_and_update(ev.pc, branch.target) {
                    c.btb_misses += 1;
                }
            }
        }

        if ev.syscall {
            c.syscalls += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreModel, Tlb};
    use crate::cache::Cache;
    use rhmd_trace::exec::ExecLimits;
    use rhmd_trace::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                               ProgramGenerator};

    /// The optimized per-event core must be decision-identical to the
    /// frozen seed implementation over realistic traces.
    #[test]
    fn optimized_core_matches_reference() {
        let profiles = [
            benign_profile(BenignClass::Browser),
            benign_profile(BenignClass::SpecCompute),
            malware_profile(MalwareFamily::Worm),
            malware_profile(MalwareFamily::Keylogger),
        ];
        for (seed, profile) in profiles.into_iter().enumerate() {
            let p = ProgramGenerator::new(profile).generate(seed as u64 + 11);
            let mut reference = ReferenceCore::new(CoreConfig::default());
            let mut optimized = CoreModel::new(CoreConfig::default());
            p.execute(ExecLimits::instructions(30_000), &mut reference);
            p.execute(ExecLimits::instructions(30_000), &mut optimized);
            assert_eq!(reference.drain_counters(), optimized.drain_counters());
        }
    }

    /// Structure-level cross-check on adversarial address streams.
    #[test]
    fn scan_structures_match_optimized_structures() {
        let mut rng = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let cache_cfg = CacheConfig { size_bytes: 1024, line_bytes: 64, ways: 2 };
        let tlb_cfg = TlbConfig { entries: 4 };
        let mut scan_cache = ScanCache::new(cache_cfg);
        let mut cache = Cache::new(cache_cfg);
        let mut scan_tlb = ScanTlb::new(tlb_cfg);
        let mut tlb = Tlb::new(tlb_cfg);
        for _ in 0..50_000 {
            let addr = next() % (1 << 16);
            assert_eq!(scan_cache.access(addr), cache.access(addr));
            assert_eq!(scan_tlb.access(addr), tlb.access(addr));
        }
        assert_eq!(scan_cache.misses, cache.misses);
        assert_eq!(scan_tlb.misses, tlb.misses);
    }
}
