//! Approximate cycle accounting on top of the event counters.
//!
//! The paper reports evasion overhead as *execution time* (Fig 9); the
//! executor counts instructions. This module closes the gap with a simple
//! in-order timing model: every committed instruction costs one base cycle
//! plus event penalties. It is deliberately coarse — the detectors never see
//! cycles — but it lets the harness express overheads the way the paper
//! does and exposes IPC as a diagnostic.

use crate::events::CounterSet;
use serde::{Deserialize, Serialize};

/// Cycle penalties charged per event, on top of 1 cycle per instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// L1 (instruction or data) miss that hits in L2.
    pub l1_miss_penalty: f64,
    /// L2 miss (memory access).
    pub l2_miss_penalty: f64,
    /// TLB miss (page walk).
    pub tlb_miss_penalty: f64,
    /// Branch direction misprediction (pipeline flush).
    pub mispredict_penalty: f64,
    /// BTB miss on a taken transfer (fetch bubble).
    pub btb_miss_penalty: f64,
    /// System call (privilege transition).
    pub syscall_penalty: f64,
}

impl Default for TimingModel {
    /// Penalties typical of a small in-order core with an on-chip L2.
    fn default() -> TimingModel {
        TimingModel {
            l1_miss_penalty: 10.0,
            l2_miss_penalty: 80.0,
            tlb_miss_penalty: 20.0,
            mispredict_penalty: 12.0,
            btb_miss_penalty: 3.0,
            syscall_penalty: 150.0,
        }
    }
}

impl TimingModel {
    /// Estimated cycles to execute the events in `counters`.
    pub fn cycles(&self, counters: &CounterSet) -> f64 {
        // L1 misses that also missed L2 are charged both penalties, like a
        // real hierarchy; l2_misses is a subset of (icache+dcache) misses.
        counters.instructions as f64
            + (counters.icache_misses + counters.dcache_misses) as f64 * self.l1_miss_penalty
            + counters.l2_misses as f64 * self.l2_miss_penalty
            + (counters.itlb_misses + counters.dtlb_misses) as f64 * self.tlb_miss_penalty
            + counters.mispredicts as f64 * self.mispredict_penalty
            + counters.btb_misses as f64 * self.btb_miss_penalty
            + counters.syscalls as f64 * self.syscall_penalty
    }

    /// Instructions per cycle implied by the counters.
    pub fn ipc(&self, counters: &CounterSet) -> f64 {
        let cycles = self.cycles(counters);
        if cycles == 0.0 {
            0.0
        } else {
            counters.instructions as f64 / cycles
        }
    }

    /// Relative execution-time overhead of `modified` vs `baseline` traces
    /// of the same original workload — the paper's Fig 9 dynamic-overhead
    /// metric expressed in time.
    pub fn time_overhead(&self, baseline: &CounterSet, modified: &CounterSet) -> f64 {
        let base = self.cycles(baseline);
        if base == 0.0 {
            0.0
        } else {
            (self.cycles(modified) - base) / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(instructions: u64) -> CounterSet {
        CounterSet {
            instructions,
            ..CounterSet::default()
        }
    }

    #[test]
    fn ideal_stream_is_one_ipc() {
        let model = TimingModel::default();
        let c = counters(1_000);
        assert_eq!(model.cycles(&c), 1_000.0);
        assert_eq!(model.ipc(&c), 1.0);
    }

    #[test]
    fn penalties_reduce_ipc() {
        let model = TimingModel::default();
        let mut c = counters(1_000);
        c.dcache_misses = 50;
        c.mispredicts = 20;
        assert!(model.ipc(&c) < 1.0);
        assert_eq!(model.cycles(&c), 1_000.0 + 500.0 + 240.0);
    }

    #[test]
    fn l2_misses_cost_more_than_l1() {
        let model = TimingModel::default();
        let mut l1_only = counters(1_000);
        l1_only.dcache_misses = 10;
        let mut through_l2 = l1_only;
        through_l2.l2_misses = 10;
        assert!(model.cycles(&through_l2) > model.cycles(&l1_only));
    }

    #[test]
    fn overhead_is_relative() {
        let model = TimingModel::default();
        let base = counters(1_000);
        let mut modified = counters(1_300);
        modified.syscalls = 0;
        let overhead = model.time_overhead(&base, &modified);
        assert!((overhead - 0.3).abs() < 1e-12);
        assert_eq!(model.time_overhead(&counters(0), &modified), 0.0);
    }

    #[test]
    fn zero_counters_are_safe() {
        let model = TimingModel::default();
        assert_eq!(model.ipc(&CounterSet::default()), 0.0);
    }
}
