//! Microarchitecture simulation substrate for the RHMD reproduction.
//!
//! The paper's Architectural feature vector reads hardware performance
//! counters: cache miss rates, branch prediction outcomes, unaligned
//! accesses, and similar commit-stage events. Since we have no hardware
//! PMU, this crate simulates the structures those counters observe:
//!
//! * [`cache`] — set-associative LRU caches (L1I / L1D);
//! * [`branch`] — a gshare direction predictor and a direct-mapped BTB;
//! * [`tlb`] — fully-associative instruction/data TLBs;
//! * [`timing`] — approximate cycle/IPC accounting over the counters;
//! * [`events`] — the counter architecture ([`events::CounterSet`]);
//! * [`core`] — the commit-stage model tying them together as a
//!   [`rhmd_trace::exec::Observer`];
//! * [`faults`] — seeded counter fault injection (noise, saturation,
//!   wraparound, dropped reads, multiplexing, burst corruption);
//! * [`reference`](mod@reference) — the frozen pre-refactor scan-based implementation,
//!   kept as the differential oracle for the optimized structures.
//!
//! # Examples
//!
//! ```
//! use rhmd_trace::exec::ExecLimits;
//! use rhmd_trace::generate::{malware_profile, MalwareFamily, ProgramGenerator};
//! use rhmd_uarch::{CoreConfig, CoreModel};
//!
//! let bot = ProgramGenerator::new(malware_profile(MalwareFamily::ClickFraud)).generate(3);
//! let mut core = CoreModel::new(CoreConfig::default());
//! bot.execute(ExecLimits::instructions(50_000), &mut core);
//! assert!(core.counters().dcache_misses > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
pub mod cache;
pub mod core;
pub mod events;
pub mod faults;
pub mod reference;
pub mod timing;
pub mod tlb;

pub use crate::core::{CoreConfig, CoreModel, CounterSource, DataMemo};
pub use branch::{BranchConfig, Btb, GsharePredictor};
pub use cache::{Cache, CacheConfig, LineMemo};
pub use events::{CounterSet, COUNTER_DIMS, COUNTER_NAMES};
pub use faults::{FaultConfig, FaultModel, FaultedCore, Overflow};
pub use reference::ReferenceCore;
pub use timing::TimingModel;
pub use tlb::{PageMemo, Tlb, TlbConfig};
