//! Set-associative cache model with LRU replacement.
//!
//! Feeds the cache-miss components of the paper's Architectural feature.
//! Timing is not modelled — only hit/miss behaviour matters to the detectors.

use serde::{Deserialize, Serialize};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// A 32 KiB, 4-way, 64 B-line L1 configuration.
    pub fn l1_32k() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 4,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size,
    /// or capacity not divisible into sets).
    pub fn sets(&self) -> u32 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.ways > 0, "associativity must be positive");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways) && lines > 0,
            "capacity must divide into an integral number of sets"
        );
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// One set-associative cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use rhmd_uarch::cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::l1_32k());
/// assert!(!c.access(0x1000)); // cold miss
/// assert!(c.access(0x1000));  // hit
/// assert!(c.access(0x1004));  // same line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: u32,
    line_shift: u32,
    /// Tag per way per set; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamp per way per set (higher = more recent).
    stamps: Vec<u64>,
    clock: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        let entries = (sets * config.ways) as usize;
        Cache {
            config,
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Performs one access; returns `true` on hit. Misses allocate.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line % u64::from(self.sets)) as usize;
        let tag = line;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let slots = &mut self.tags[base..base + ways];
        if let Some(way) = slots.iter().position(|&t| t == tag) {
            self.stamps[base + way] = self.clock;
            return true;
        }
        self.misses += 1;
        // Evict LRU way.
        let victim = (0..ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways > 0");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Accesses that straddle a line boundary touch both lines; returns the
    /// number of misses incurred (0–2).
    pub fn access_range(&mut self, addr: u64, size: u8) -> u32 {
        let first = !self.access(addr) as u32;
        if size > 1 {
            let last = addr + u64::from(size) - 1;
            if (last >> self.line_shift) != (addr >> self.line_shift) {
                return first + !self.access(last) as u32;
            }
        }
        first
    }

    /// Miss rate over all accesses so far (0.0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::l1_32k();
        assert_eq!(c.sets(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = CacheConfig {
            size_bytes: 1024,
            line_bytes: 48,
            ways: 2,
        }
        .sets();
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x7f)); // same 64B line
        assert!(!c.access(0x80)); // next line
        assert_eq!(c.misses, 2);
        assert_eq!(c.accesses, 4);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Tiny cache: 1 set, 2 ways, 64B lines.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 64,
            ways: 2,
        });
        assert!(!c.access(0)); // A
        assert!(!c.access(64)); // B (set 0 too: 1 set)
        assert!(c.access(0)); // A hit, B is now LRU
        assert!(!c.access(128)); // C evicts B
        assert!(c.access(0)); // A still resident
        assert!(!c.access(64)); // B was evicted
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        let misses = c.access_range(0x3e, 8); // crosses 0x40 boundary
        assert_eq!(misses, 2);
        assert_eq!(c.access_range(0x3e, 8), 0); // both lines now resident
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        });
        // Stream over 64 KiB twice: second pass still misses (capacity).
        for pass in 0..2 {
            for i in 0..1024u64 {
                c.access(i * 64);
            }
            if pass == 1 {
                assert!(c.miss_rate() > 0.99);
            }
        }
    }

    #[test]
    fn small_working_set_hits() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        for _ in 0..10 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
        }
        assert!(c.miss_rate() < 0.15, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        c.access(0);
        c.reset();
        assert_eq!(c.accesses, 0);
        assert_eq!(c.misses, 0);
        assert!(!c.access(0)); // cold again
    }
}
