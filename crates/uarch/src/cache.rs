//! Set-associative cache model with LRU replacement.
//!
//! Feeds the cache-miss components of the paper's Architectural feature.
//! Timing is not modelled — only hit/miss behaviour matters to the detectors.

use serde::{Deserialize, Serialize};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// A 32 KiB, 4-way, 64 B-line L1 configuration.
    pub fn l1_32k() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 4,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size,
    /// or capacity not divisible into sets).
    pub fn sets(&self) -> u32 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.ways > 0, "associativity must be positive");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways) && lines > 0,
            "capacity must divide into an integral number of sets"
        );
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// One set-associative cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use rhmd_uarch::cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::l1_32k());
/// assert!(!c.access(0x1000)); // cold miss
/// assert!(c.access(0x1000));  // hit
/// assert!(c.access(0x1004));  // same line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets - 1`; set selection is a mask, not a division (set counts are
    /// validated powers of two).
    set_mask: u64,
    line_shift: u32,
    /// Tag per way per set; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamp per way per set (higher = more recent).
    stamps: Vec<u64>,
    clock: u64,
    /// Line of the most recent access; `u64::MAX` = none yet. Because only
    /// [`Cache::access`] mutates the arrays, the last-touched line can never
    /// have been evicted between two consecutive accesses, so a repeat of it
    /// is a guaranteed hit — the invariant behind the memoized fast paths.
    last_line: u64,
    /// Absolute slot (`set * ways + way`) holding `last_line`.
    last_index: usize,
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

/// Caller-owned memo of where one access stream last hit, for
/// [`Cache::access_hinted`]. Unlike the cache's internal last-line memo
/// (depth 1, defeated by interleaved streams), a caller can keep one memo
/// per logical stream; the memo is self-validating — a hit requires the
/// remembered slot to still hold the remembered line — so staleness is
/// harmless.
#[derive(Debug, Clone, Copy)]
pub struct LineMemo {
    line: u64,
    index: usize,
}

impl Default for LineMemo {
    fn default() -> LineMemo {
        LineMemo {
            line: u64::MAX,
            index: 0,
        }
    }
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        let entries = (sets * config.ways) as usize;
        Cache {
            config,
            set_mask: u64::from(sets) - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; entries],
            stamps: vec![0; entries],
            clock: 0,
            last_line: u64::MAX,
            last_index: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Performs one access; returns `true` on hit. Misses allocate.
    ///
    /// The way scan and LRU victim search run together and branch-free:
    /// hit-or-miss is data-dependent and unpredictable on the corpus's
    /// random streams, so selecting the written slot with arithmetic
    /// instead of an early-exit scan avoids a mispredict per access. On a
    /// hit the tag write stores the value already present and the victim
    /// search result is discarded — state evolution is exactly the
    /// scan-then-evict original (first-lowest-index stamp tie-break
    /// preserved by the strict `<`).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let mut way = usize::MAX;
        let mut victim = 0usize;
        let mut min_stamp = u64::MAX;
        for w in 0..ways {
            if self.tags[base + w] == line {
                way = w;
            }
            if self.stamps[base + w] < min_stamp {
                min_stamp = self.stamps[base + w];
                victim = w;
            }
        }
        let hit = way != usize::MAX;
        let slot = base + if hit { way } else { victim };
        self.misses += u64::from(!hit);
        self.tags[slot] = line;
        self.stamps[slot] = self.clock;
        self.last_line = line;
        self.last_index = slot;
        hit
    }

    /// [`Cache::access`] with a last-line fast path: a repeat access to the
    /// most recently touched line skips the tag scan and LRU search. The
    /// resulting state (tags, stamps, clock, statistics) is bit-identical to
    /// the plain path — a repeat of the last line is always a hit whose only
    /// effects are the access count and a refreshed LRU stamp.
    #[inline]
    pub fn access_memoized(&mut self, addr: u64) -> bool {
        if addr >> self.line_shift == self.last_line {
            self.accesses += 1;
            self.clock += 1;
            self.stamps[self.last_index] = self.clock;
            return true;
        }
        self.access(addr)
    }

    /// [`Cache::access`] with a caller-owned per-stream memo on top of the
    /// internal last-line fast path. A repeat of the memoized line is a hit
    /// **iff** its remembered slot still holds it (`tags[index] == line`) —
    /// one array read proves residency no matter what was evicted in
    /// between, because install only happens on a miss, so a line never
    /// occupies two slots. State evolution (tags, stamps, clock,
    /// statistics) is bit-identical to the plain path.
    #[inline]
    pub fn access_hinted(&mut self, addr: u64, memo: &mut LineMemo) -> bool {
        let line = addr >> self.line_shift;
        if line == self.last_line {
            self.accesses += 1;
            self.clock += 1;
            self.stamps[self.last_index] = self.clock;
            memo.line = line;
            memo.index = self.last_index;
            return true;
        }
        if line == memo.line && self.tags[memo.index] == line {
            self.accesses += 1;
            self.clock += 1;
            self.stamps[memo.index] = self.clock;
            self.last_line = line;
            self.last_index = memo.index;
            return true;
        }
        let hit = self.access(addr);
        memo.line = line;
        memo.index = self.last_index;
        hit
    }

    /// [`Cache::access_range`] on the hinted path; state-identical to the
    /// plain variant. A straddling access leaves the memo on the second
    /// line, matching where the stream will touch next.
    #[inline]
    pub fn access_range_hinted(&mut self, addr: u64, size: u8, memo: &mut LineMemo) -> u32 {
        let first = !self.access_hinted(addr, memo) as u32;
        if size > 1 {
            let last = addr + u64::from(size) - 1;
            if (last >> self.line_shift) != (addr >> self.line_shift) {
                return first + !self.access_hinted(last, memo) as u32;
            }
        }
        first
    }

    /// Accesses that straddle a line boundary touch both lines; returns the
    /// number of misses incurred (0–2).
    pub fn access_range(&mut self, addr: u64, size: u8) -> u32 {
        let first = !self.access(addr) as u32;
        if size > 1 {
            let last = addr + u64::from(size) - 1;
            if (last >> self.line_shift) != (addr >> self.line_shift) {
                return first + !self.access(last) as u32;
            }
        }
        first
    }

    /// [`Cache::access_range`] on the memoized path; state-identical to the
    /// plain variant.
    #[inline]
    pub fn access_range_memoized(&mut self, addr: u64, size: u8) -> u32 {
        let first = !self.access_memoized(addr) as u32;
        if size > 1 {
            let last = addr + u64::from(size) - 1;
            if (last >> self.line_shift) != (addr >> self.line_shift) {
                return first + !self.access_memoized(last) as u32;
            }
        }
        first
    }

    /// Applies `count` further accesses to the most recently touched line in
    /// one step. Each would be a guaranteed hit whose intermediate LRU stamps
    /// are overwritten by the next, so only the final stamp is stored —
    /// bit-identical to `count` calls of [`Cache::access`] on that line.
    ///
    /// Callers must have touched the line via an access in this run; the
    /// batched executor guarantees this by construction.
    #[inline]
    pub fn bulk_repeat(&mut self, count: u64) {
        debug_assert!(self.last_line != u64::MAX, "bulk_repeat before any access");
        self.accesses += count;
        self.clock += count;
        self.stamps[self.last_index] = self.clock;
    }

    /// Miss rate over all accesses so far (0.0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.last_line = u64::MAX;
        self.last_index = 0;
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::l1_32k();
        assert_eq!(c.sets(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = CacheConfig {
            size_bytes: 1024,
            line_bytes: 48,
            ways: 2,
        }
        .sets();
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x7f)); // same 64B line
        assert!(!c.access(0x80)); // next line
        assert_eq!(c.misses, 2);
        assert_eq!(c.accesses, 4);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Tiny cache: 1 set, 2 ways, 64B lines.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 64,
            ways: 2,
        });
        assert!(!c.access(0)); // A
        assert!(!c.access(64)); // B (set 0 too: 1 set)
        assert!(c.access(0)); // A hit, B is now LRU
        assert!(!c.access(128)); // C evicts B
        assert!(c.access(0)); // A still resident
        assert!(!c.access(64)); // B was evicted
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        let misses = c.access_range(0x3e, 8); // crosses 0x40 boundary
        assert_eq!(misses, 2);
        assert_eq!(c.access_range(0x3e, 8), 0); // both lines now resident
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        });
        // Stream over 64 KiB twice: second pass still misses (capacity).
        for pass in 0..2 {
            for i in 0..1024u64 {
                c.access(i * 64);
            }
            if pass == 1 {
                assert!(c.miss_rate() > 0.99);
            }
        }
    }

    #[test]
    fn small_working_set_hits() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        for _ in 0..10 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
        }
        assert!(c.miss_rate() < 0.15, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        c.access(0);
        c.reset();
        assert_eq!(c.accesses, 0);
        assert_eq!(c.misses, 0);
        assert!(!c.access(0)); // cold again
    }

    /// The memoized and bulk paths evolve the cache bit-identically to the
    /// plain scan, including straddling accesses and eviction pressure.
    #[test]
    fn memoized_paths_are_state_identical() {
        let cfg = CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        };
        let mut plain = Cache::new(cfg);
        let mut memo = Cache::new(cfg);
        let mut x = 0x1234_5678_9abc_def0u64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % 8192;
            let size = [1u8, 4, 8, 64][(i % 4) as usize];
            assert_eq!(
                plain.access_range(addr, size),
                memo.access_range_memoized(addr, size)
            );
            if i % 7 == 0 {
                // Repeat whichever line the range touched last.
                let last_byte = addr + u64::from(size) - 1;
                let repeat = if last_byte >> 6 != addr >> 6 { last_byte } else { addr };
                for _ in 0..3 {
                    plain.access(repeat);
                }
                memo.bulk_repeat(3);
            }
        }
        assert_eq!(plain.accesses, memo.accesses);
        assert_eq!(plain.misses, memo.misses);
        assert_eq!(plain.tags, memo.tags);
        assert_eq!(plain.stamps, memo.stamps);
        assert_eq!(plain.clock, memo.clock);
    }

    /// The hinted path evolves the cache bit-identically to the plain scan
    /// under adversarially interleaved streams — including stale memos whose
    /// line was evicted and reinstalled elsewhere in the set.
    #[test]
    fn hinted_path_is_state_identical() {
        let cfg = CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        };
        let mut plain = Cache::new(cfg);
        let mut hinted = Cache::new(cfg);
        // Four interleaved streams: two strided (high memo hit rate), one
        // random (memo nearly always stale), one hammering a single line.
        let mut memos = [LineMemo::default(); 4];
        let mut cursors = [0u64, 4096, 0, 0x8000];
        let mut x = 0xdead_beef_1234_5678u64;
        for i in 0..20_000u64 {
            let s = (i % 4) as usize;
            let addr = match s {
                0 | 1 => {
                    let a = cursors[s];
                    cursors[s] = (cursors[s] + 24) % 16_384 + s as u64 * 4096;
                    a
                }
                2 => {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % 32_768
                }
                _ => cursors[3] + (i % 3),
            };
            let size = [1u8, 8, 64][(i % 3) as usize];
            assert_eq!(
                plain.access_range(addr, size),
                hinted.access_range_hinted(addr, size, &mut memos[s]),
                "access {i}"
            );
        }
        assert_eq!(plain.accesses, hinted.accesses);
        assert_eq!(plain.misses, hinted.misses);
        assert_eq!(plain.tags, hinted.tags);
        assert_eq!(plain.stamps, hinted.stamps);
        assert_eq!(plain.clock, hinted.clock);
        assert_eq!(plain.last_line, hinted.last_line);
        assert_eq!(plain.last_index, hinted.last_index);
    }
}
