//! The in-order core model that turns committed instructions into hardware
//! events.

use crate::branch::{BranchConfig, Btb, GsharePredictor};
use crate::cache::{Cache, CacheConfig, LineMemo};
use crate::events::CounterSet;
use crate::tlb::{PageMemo, Tlb, TlbConfig};
use rhmd_trace::exec::{BranchKind, BranchOutcome, ExecEvent, Observer};
use serde::{Deserialize, Serialize};

/// Full core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Unified second-level cache geometry.
    pub l2: CacheConfig,
    /// Instruction-TLB geometry.
    pub itlb: TlbConfig,
    /// Data-TLB geometry.
    pub dtlb: TlbConfig,
    /// Branch unit configuration.
    pub branch: BranchConfig,
}

impl Default for CoreConfig {
    /// 32 KiB L1I + 32 KiB L1D, 4K-entry gshare, 512-entry BTB — an
    /// AO486-class embedded core scaled to modern L1 sizes.
    fn default() -> CoreConfig {
        CoreConfig {
            icache: CacheConfig::l1_32k(),
            dcache: CacheConfig::l1_32k(),
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                line_bytes: 64,
                ways: 8,
            },
            itlb: TlbConfig { entries: 32 },
            dtlb: TlbConfig { entries: 64 },
            branch: BranchConfig::default(),
        }
    }
}

/// Commit-stage models that accumulate a [`CounterSet`] and can be
/// drained per collection window.
///
/// Implemented by the optimized [`CoreModel`] and the frozen
/// [`crate::reference::ReferenceCore`], so window accumulation can run
/// against either without caring which substrate is underneath.
pub trait CounterSource {
    /// Returns the counters accumulated since the last drain and resets
    /// them. Microarchitectural state (cache contents, predictor tables)
    /// persists, as in real hardware.
    fn drain_counters(&mut self) -> CounterSet;
}

/// Commit-stage model: consumes [`ExecEvent`]s, updates caches and
/// predictors, and accumulates [`CounterSet`] readings.
///
/// The paper's detectors "collect information from the commit stage of the
/// pipeline" (§7); this type is that collection logic.
///
/// # Examples
///
/// ```
/// use rhmd_trace::exec::ExecLimits;
/// use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};
/// use rhmd_uarch::core::{CoreConfig, CoreModel};
///
/// let program = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(0);
/// let mut core = CoreModel::new(CoreConfig::default());
/// program.execute(ExecLimits::instructions(10_000), &mut core);
/// let counters = core.drain_counters();
/// assert_eq!(counters.instructions, 10_000);
/// assert!(counters.cond_branches > 0);
/// ```
#[derive(Debug, Clone)]
pub struct CoreModel {
    icache: Cache,
    dcache: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    gshare: GsharePredictor,
    btb: Btb,
    counters: CounterSet,
}

impl CoreModel {
    /// Creates a core with cold structures.
    pub fn new(config: CoreConfig) -> CoreModel {
        CoreModel {
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            l2: Cache::new(config.l2),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            gshare: GsharePredictor::new(config.branch.ghr_bits),
            btb: Btb::new(config.branch.btb_entries),
            counters: CounterSet::default(),
        }
    }

    /// Returns the counters accumulated since the last drain and resets
    /// them. Microarchitectural state (cache contents, predictor tables)
    /// persists, as in real hardware.
    pub fn drain_counters(&mut self) -> CounterSet {
        std::mem::take(&mut self.counters)
    }

    /// Read-only view of the counters accumulated so far.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Lifetime I-cache miss rate.
    pub fn icache_miss_rate(&self) -> f64 {
        self.icache.miss_rate()
    }

    /// Lifetime D-cache miss rate.
    pub fn dcache_miss_rate(&self) -> f64 {
        self.dcache.miss_rate()
    }

    /// Lifetime direction-misprediction rate.
    pub fn misprediction_rate(&self) -> f64 {
        self.gshare.misprediction_rate()
    }

    /// Bytes guaranteed to share one I-cache line *and* one page: the
    /// granularity at which instruction fetches may be batched without
    /// reordering L2 accesses relative to the per-event path.
    pub fn fetch_span_bytes(&self) -> u64 {
        u64::from(self.icache.config().line_bytes).min(crate::tlb::PAGE_BYTES)
    }

    /// Bulk-adds `n` committed instructions to the counters.
    #[inline]
    pub fn add_instructions(&mut self, n: u64) {
        self.counters.instructions += n;
    }

    /// One full instruction fetch at `pc` — the fetch section of
    /// [`Observer::observe`] on the memoized structure paths. Bit-identical
    /// counter and structure evolution.
    #[inline]
    pub fn fetch_one(&mut self, pc: u64) {
        let c = &mut self.counters;
        if !self.itlb.access_memoized(pc) {
            c.itlb_misses += 1;
        }
        let ic_misses = self.icache.access_range_memoized(pc, 4);
        c.icache_misses += u64::from(ic_misses);
        if ic_misses > 0 && !self.l2.access(pc) {
            c.l2_misses += 1;
        }
    }

    /// Fetches a run of `count` consecutive 4-byte instructions known to
    /// share one I-cache line and one page: one full (possibly missing)
    /// fetch at `pc`, then `count - 1` guaranteed hits applied in bulk.
    ///
    /// Callers must guarantee the span property (see
    /// [`CoreModel::fetch_span_bytes`]); the batched executor derives runs
    /// from it, so a straddling fetch can never land here.
    #[inline]
    pub fn fetch_line_run(&mut self, pc: u64, count: u64) {
        self.fetch_one(pc);
        if count > 1 {
            self.itlb.bulk_repeat(count - 1);
            self.icache.bulk_repeat(count - 1);
        }
    }

    /// The data-access section of [`Observer::observe`] on the memoized
    /// structure paths: D-TLB, D-cache (with straddle), L2 on miss, and the
    /// load/store/unaligned counters.
    #[inline]
    pub fn data_access(&mut self, addr: u64, size: u8, is_load: bool, is_store: bool) {
        let c = &mut self.counters;
        if !self.dtlb.access_memoized(addr) {
            c.dtlb_misses += 1;
        }
        let misses = self.dcache.access_range_memoized(addr, size);
        c.dcache_misses += u64::from(misses);
        if misses > 0 && !self.l2.access(addr) {
            c.l2_misses += 1;
        }
        if is_load {
            c.loads += 1;
        }
        if is_store {
            c.stores += 1;
        }
        if size > 1 && !addr.is_multiple_of(u64::from(size)) {
            c.unaligned += 1;
        }
    }

    /// [`CoreModel::data_access`] with a caller-owned per-stream memo for
    /// the D-TLB and D-cache. The internal last-line/last-page memos are
    /// depth 1 and thrash when logical address streams interleave; a caller
    /// that knows which stream issued the access (the batched executor
    /// carries the stream id in the flat IR) keeps one [`DataMemo`] per
    /// stream and recovers the locality. Bit-identical counter and
    /// structure evolution.
    #[inline]
    pub fn data_access_hinted(
        &mut self,
        addr: u64,
        size: u8,
        is_load: bool,
        is_store: bool,
        memo: &mut DataMemo,
    ) {
        let c = &mut self.counters;
        if !self.dtlb.access_hinted(addr, &mut memo.dtlb) {
            c.dtlb_misses += 1;
        }
        let misses = self.dcache.access_range_hinted(addr, size, &mut memo.dcache);
        c.dcache_misses += u64::from(misses);
        if misses > 0 && !self.l2.access(addr) {
            c.l2_misses += 1;
        }
        if is_load {
            c.loads += 1;
        }
        if is_store {
            c.stores += 1;
        }
        if size > 1 && !addr.is_multiple_of(u64::from(size)) {
            c.unaligned += 1;
        }
    }

    /// The control-flow section of [`Observer::observe`]: direction
    /// prediction, BTB lookup, and the branch-class counters.
    #[inline]
    pub fn branch_event(&mut self, pc: u64, branch: &BranchOutcome) {
        let c = &mut self.counters;
        match branch.kind {
            BranchKind::Conditional => {
                c.cond_branches += 1;
                if !self.gshare.predict_and_update(pc, branch.taken) {
                    c.mispredicts += 1;
                }
            }
            BranchKind::Call => c.calls += 1,
            BranchKind::Return => c.returns += 1,
            BranchKind::Jump => {}
        }
        if branch.taken {
            c.taken_branches += 1;
            if !self.btb.lookup_and_update(pc, branch.target) {
                c.btb_misses += 1;
            }
        }
    }

    /// Counts one system call.
    #[inline]
    pub fn count_syscall(&mut self) {
        self.counters.syscalls += 1;
    }
}

/// Per-stream D-TLB + D-cache memo for [`CoreModel::data_access_hinted`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DataMemo {
    /// Where this stream last translated.
    pub dtlb: PageMemo,
    /// Where this stream last hit in the D-cache.
    pub dcache: LineMemo,
}

impl CounterSource for CoreModel {
    fn drain_counters(&mut self) -> CounterSet {
        CoreModel::drain_counters(self)
    }
}

impl Observer for CoreModel {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        let c = &mut self.counters;
        c.instructions += 1;

        // Instruction fetch.
        if !self.itlb.access(ev.pc) {
            c.itlb_misses += 1;
        }
        let ic_misses = self.icache.access_range(ev.pc, 4);
        c.icache_misses += u64::from(ic_misses);
        if ic_misses > 0 && !self.l2.access(ev.pc) {
            c.l2_misses += 1;
        }

        // Data access.
        if let Some(mem) = ev.mem {
            if !self.dtlb.access(mem.addr) {
                c.dtlb_misses += 1;
            }
            let misses = self.dcache.access_range(mem.addr, mem.size);
            c.dcache_misses += u64::from(misses);
            if misses > 0 && !self.l2.access(mem.addr) {
                c.l2_misses += 1;
            }
            if ev.opcode.is_load() {
                c.loads += 1;
            }
            if ev.opcode.is_store() {
                c.stores += 1;
            }
            if mem.is_unaligned() {
                c.unaligned += 1;
            }
        }

        // Control flow.
        if let Some(branch) = ev.branch {
            match branch.kind {
                BranchKind::Conditional => {
                    c.cond_branches += 1;
                    if !self.gshare.predict_and_update(ev.pc, branch.taken) {
                        c.mispredicts += 1;
                    }
                }
                BranchKind::Call => c.calls += 1,
                BranchKind::Return => c.returns += 1,
                BranchKind::Jump => {}
            }
            if branch.taken {
                c.taken_branches += 1;
                if !self.btb.lookup_and_update(ev.pc, branch.target) {
                    c.btb_misses += 1;
                }
            }
        }

        if ev.syscall {
            c.syscalls += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_trace::exec::ExecLimits;
    use rhmd_trace::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                               ProgramGenerator};

    fn run(core: &mut CoreModel, seed: u64) -> CounterSet {
        let p = ProgramGenerator::new(benign_profile(BenignClass::SpecCompute)).generate(seed);
        p.execute(ExecLimits::instructions(20_000), core);
        core.drain_counters()
    }

    #[test]
    fn counts_are_consistent() {
        let mut core = CoreModel::new(CoreConfig::default());
        let c = run(&mut core, 1);
        assert_eq!(c.instructions, 20_000);
        assert!(c.loads > 0 && c.stores > 0);
        assert!(c.cond_branches > 0);
        assert!(c.mispredicts <= c.cond_branches);
        assert!(c.taken_branches >= c.calls + c.returns);
        assert!(c.icache_misses <= 2 * c.instructions);
    }

    #[test]
    fn drain_resets_counters() {
        let mut core = CoreModel::new(CoreConfig::default());
        let first = run(&mut core, 1);
        assert!(first.instructions > 0);
        assert_eq!(core.counters().instructions, 0);
    }

    #[test]
    fn warm_structures_miss_less() {
        let mut core = CoreModel::new(CoreConfig::default());
        let cold = run(&mut core, 7);
        // Same program again on warm structures.
        let warm = run(&mut core, 7);
        assert!(
            warm.icache_misses < cold.icache_misses,
            "warm {} vs cold {}",
            warm.icache_misses,
            cold.icache_misses
        );
        assert!(warm.mispredicts <= cold.mispredicts);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = CoreModel::new(CoreConfig::default());
        let mut b = CoreModel::new(CoreConfig::default());
        assert_eq!(run(&mut a, 3), run(&mut b, 3));
    }

    #[test]
    fn classes_produce_different_profiles() {
        let mut a = CoreModel::new(CoreConfig::default());
        let spec = ProgramGenerator::new(benign_profile(BenignClass::SpecCompute)).generate(0);
        spec.execute(ExecLimits::instructions(30_000), &mut a);
        let compute = a.drain_counters();

        let mut b = CoreModel::new(CoreConfig::default());
        let worm = ProgramGenerator::new(malware_profile(MalwareFamily::Worm)).generate(0);
        worm.execute(ExecLimits::instructions(30_000), &mut b);
        let scanner = b.drain_counters();

        // A scanner's erratic control flow mispredicts far more than a
        // compute kernel's regular loops, and it performs many more system
        // calls — the class-level signals the Architectural feature uses.
        let compute_rate = compute.mispredicts as f64 / compute.cond_branches.max(1) as f64;
        let scanner_rate = scanner.mispredicts as f64 / scanner.cond_branches.max(1) as f64;
        assert!(
            scanner_rate > compute_rate,
            "scanner {scanner_rate} vs compute {compute_rate}"
        );
        assert!(scanner.syscalls > compute.syscalls);
    }
}
