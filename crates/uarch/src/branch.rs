//! Branch prediction: gshare direction predictor plus a direct-mapped BTB.
//!
//! Supplies the branch-prediction components of the Architectural feature
//! (mispredict counts, BTB misses). Predictor *accuracy* differences between
//! program classes — driven by branch bias and outcome persistence — are a
//! real discriminating signal, as in the prior HMD work the paper builds on.

use serde::{Deserialize, Serialize};

/// Configuration of the branch unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// log2 of the number of 2-bit counters in the gshare table.
    pub ghr_bits: u32,
    /// Number of BTB entries (power of two).
    pub btb_entries: u32,
}

impl Default for BranchConfig {
    /// 4K-entry gshare, 512-entry BTB.
    fn default() -> BranchConfig {
        BranchConfig {
            ghr_bits: 12,
            btb_entries: 512,
        }
    }
}

/// Gshare direction predictor: global history XOR pc indexing a table of
/// 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<u8>,
    history: u64,
    mask: u64,
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Direction mispredictions.
    pub mispredictions: u64,
}

impl GsharePredictor {
    /// Creates a predictor with `2^ghr_bits` counters, initialized weakly
    /// not-taken.
    pub fn new(ghr_bits: u32) -> GsharePredictor {
        assert!((4..=24).contains(&ghr_bits), "ghr_bits out of range");
        let size = 1usize << ghr_bits;
        GsharePredictor {
            table: vec![1; size],
            history: 0,
            mask: (size - 1) as u64,
            predictions: 0,
            mispredictions: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// Predicts and updates on the actual outcome; returns `true` if the
    /// prediction was correct.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.predictions += 1;
        let idx = self.index(pc);
        let counter = self.table[idx];
        let predicted_taken = counter >= 2;
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredictions += 1;
        }
        self.table[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        self.history = ((self.history << 1) | u64::from(taken)) & self.mask;
        correct
    }

    /// Fraction of conditional branches mispredicted.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// Direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    tags: Vec<u64>,
    targets: Vec<u64>,
    mask: u64,
    /// Taken control transfers looked up.
    pub lookups: u64,
    /// Lookups that missed or carried a stale target.
    pub misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32) -> Btb {
        assert!(entries.is_power_of_two(), "BTB entries must be a power of two");
        Btb {
            tags: vec![u64::MAX; entries as usize],
            targets: vec![0; entries as usize],
            mask: u64::from(entries - 1),
            lookups: 0,
            misses: 0,
        }
    }

    /// Looks up a taken transfer and installs the real target; returns
    /// `true` when the buffered target was present and correct.
    #[inline]
    pub fn lookup_and_update(&mut self, pc: u64, target: u64) -> bool {
        self.lookups += 1;
        let idx = ((pc >> 2) & self.mask) as usize;
        let hit = self.tags[idx] == pc && self.targets[idx] == target;
        if !hit {
            self.misses += 1;
            self.tags[idx] = pc;
            self.targets[idx] = target;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_constant_branch() {
        let mut p = GsharePredictor::new(10);
        for _ in 0..100 {
            p.predict_and_update(0x400000, true);
        }
        // Warm-up touches one counter per distinct history value (~ghr_bits
        // of them); after that, mispredictions stop.
        let warmup = p.mispredictions;
        assert!(warmup <= 15, "mispredictions {warmup}");
        for _ in 0..100 {
            p.predict_and_update(0x400000, true);
        }
        assert_eq!(p.mispredictions, warmup, "steady state should be perfect");
    }

    #[test]
    fn predictor_learns_alternating_pattern() {
        let mut p = GsharePredictor::new(12);
        let mut taken = false;
        for _ in 0..2000 {
            taken = !taken;
            p.predict_and_update(0x400010, taken);
        }
        // Global history captures period-2 patterns almost perfectly.
        assert!(
            p.misprediction_rate() < 0.1,
            "rate {}",
            p.misprediction_rate()
        );
    }

    #[test]
    fn predictor_struggles_on_random_branch() {
        let mut p = GsharePredictor::new(12);
        let mut state = 0x12345u64;
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.predict_and_update(0x400020, state >> 63 == 1);
        }
        assert!(
            p.misprediction_rate() > 0.35,
            "rate {}",
            p.misprediction_rate()
        );
    }

    #[test]
    fn btb_caches_targets() {
        let mut b = Btb::new(16);
        assert!(!b.lookup_and_update(0x400000, 0x401000));
        assert!(b.lookup_and_update(0x400000, 0x401000));
        // Target change invalidates.
        assert!(!b.lookup_and_update(0x400000, 0x402000));
    }

    #[test]
    fn btb_conflicts_evict() {
        let mut b = Btb::new(2);
        b.lookup_and_update(0x0, 0x100);
        b.lookup_and_update(0x8, 0x200); // same slot ((pc>>2)&1): 0x8>>2=2&1=0
        assert!(!b.lookup_and_update(0x0, 0x100));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn btb_size_validated() {
        let _ = Btb::new(3);
    }
}
