//! Translation lookaside buffers: small fully-associative LRU caches over
//! 4 KiB pages. TLB miss rates are another commit-stage event channel the
//! Architectural feature can observe — pointer-chasing malware walks many
//! more pages than a strided kernel.
//!
//! The model is true LRU over `entries` slots. The original implementation
//! kept per-slot stamps and did an O(entries) scan per translation plus an
//! O(entries) min-stamp search per eviction; this one keeps an
//! open-addressed page→slot index and an intrusive recency list, making
//! every translation O(1) while preserving the exact hit/miss and eviction
//! decisions: stamps were unique and strictly increasing, so stamp order
//! *is* recency order, and the only ties — never-used slots, all stamp
//! zero — broke toward the lowest slot index, which is the order the free
//! list pops. The golden suites pin this equivalence against seed-era
//! traces.

use serde::{Deserialize, Serialize};

/// Page size covered by one TLB entry.
pub const PAGE_BYTES: u64 = 4096;

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: u32,
}

impl Default for TlbConfig {
    /// A 64-entry L1 TLB.
    fn default() -> TlbConfig {
        TlbConfig { entries: 64 }
    }
}

/// Marker for an empty index slot / invalid page.
const EMPTY: u64 = u64::MAX;

/// Open-addressed page→slot map with linear probing and backward-shift
/// deletion, sized at ≤50% load so probe chains stay short. One insert and
/// one remove per TLB miss; one O(1) lookup per translation.
#[derive(Debug, Clone)]
struct PageIndex {
    keys: Vec<u64>,
    vals: Vec<u32>,
    mask: u64,
}

impl PageIndex {
    fn new(entries: u32) -> PageIndex {
        // ≤25% load: the table is a few KiB (L1-resident) and probe chains
        // degenerate to ~1 slot, which matters on the miss-heavy random
        // streams the corpus generates.
        let cap = (entries as usize * 4).next_power_of_two();
        PageIndex {
            keys: vec![EMPTY; cap],
            vals: vec![0; cap],
            mask: cap as u64 - 1,
        }
    }

    #[inline]
    fn start(&self, page: u64) -> usize {
        ((page.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) & self.mask) as usize
    }

    #[inline]
    fn get(&self, page: u64) -> Option<u32> {
        let mut i = self.start(page);
        loop {
            let k = self.keys[i];
            if k == page {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    #[inline]
    fn insert(&mut self, page: u64, slot: u32) {
        let mut i = self.start(page);
        while self.keys[i] != EMPTY {
            i = (i + 1) & self.mask as usize;
        }
        self.keys[i] = page;
        self.vals[i] = slot;
    }

    #[inline]
    fn remove(&mut self, page: u64) {
        let mask = self.mask as usize;
        let mut i = self.start(page);
        while self.keys[i] != page {
            i = (i + 1) & mask;
        }
        // Backward-shift deletion keeps probe chains intact without
        // tombstones.
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            let home = self.start(k);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.keys[i] = k;
                self.vals[i] = self.vals[j];
                i = j;
            }
        }
        self.keys[i] = EMPTY;
    }
}

/// Caller-owned memo of where one access stream last translated, for
/// [`Tlb::access_hinted`]. Self-validating like [`crate::cache::LineMemo`]:
/// a hit requires the remembered slot to still hold the remembered page,
/// so a stale memo simply falls back to the indexed lookup.
#[derive(Debug, Clone, Copy)]
pub struct PageMemo {
    page: u64,
    slot: usize,
}

impl Default for PageMemo {
    fn default() -> PageMemo {
        PageMemo {
            page: u64::MAX,
            slot: 0,
        }
    }
}

/// A fully-associative, true-LRU TLB.
///
/// # Examples
///
/// ```
/// use rhmd_uarch::tlb::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig { entries: 2 });
/// assert!(!tlb.access(0x0000)); // cold
/// assert!(tlb.access(0x0004));  // same page
/// assert!(!tlb.access(0x2000)); // new page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Page held by each slot; [`EMPTY`] = never used.
    pages: Vec<u64>,
    /// Intrusive recency list over slots: `next` points toward LRU.
    next: Vec<u32>,
    /// Intrusive recency list over slots: `prev` points toward MRU.
    prev: Vec<u32>,
    /// Most recently used slot.
    head: u32,
    /// Least recently used slot — the eviction victim.
    tail: u32,
    index: PageIndex,
    /// Page of the most recent translation; `u64::MAX` = none yet. Only
    /// [`Tlb::access`] mutates the entry array, so the last-translated page
    /// cannot have been evicted between consecutive accesses — a repeat of
    /// it is a guaranteed hit, which the memoized fast path exploits to skip
    /// even the indexed lookup.
    last_page: u64,
    /// Slot holding `last_page`.
    last_slot: usize,
    /// Total translations requested.
    pub accesses: u64,
    /// Translations that missed.
    pub misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero.
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.entries > 0, "TLB needs at least one entry");
        let n = config.entries as usize;
        // Recency order of never-used slots must pop 0, 1, 2, … to match
        // the stamp implementation's first-lowest-index tie-break: slot 0
        // is the tail, n-1 the head.
        let next: Vec<u32> = (0..n).map(|i| i.wrapping_sub(1) as u32).collect();
        let prev: Vec<u32> = (0..n).map(|i| (i + 1) as u32).collect();
        Tlb {
            pages: vec![EMPTY; n],
            next,
            prev,
            head: (n - 1) as u32,
            tail: 0,
            index: PageIndex::new(config.entries),
            last_page: u64::MAX,
            last_slot: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Moves `slot` to the MRU head of the recency list.
    #[inline]
    fn touch(&mut self, slot: u32) {
        if slot == self.head {
            return;
        }
        // Unlink.
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        self.next[p as usize] = n;
        if slot == self.tail {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        // Link at head.
        self.next[slot as usize] = self.head;
        self.prev[self.head as usize] = slot;
        self.head = slot;
    }

    /// Translates one address; returns `true` on hit. Misses install the
    /// page, evicting the LRU entry.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let page = addr / PAGE_BYTES;
        if let Some(slot) = self.index.get(page) {
            self.touch(slot);
            self.last_page = page;
            self.last_slot = slot as usize;
            return true;
        }
        self.misses += 1;
        let victim = self.tail;
        let old = self.pages[victim as usize];
        if old != EMPTY {
            self.index.remove(old);
        }
        self.index.insert(page, victim);
        self.pages[victim as usize] = page;
        self.touch(victim);
        self.last_page = page;
        self.last_slot = victim as usize;
        false
    }

    /// [`Tlb::access`] with a last-page fast path: repeat translations of
    /// the most recently used page skip even the indexed lookup. State
    /// (entries, recency order, statistics) is identical to the plain
    /// path — a repeat of the last page is always a hit on the slot already
    /// at the MRU head, so its only effect is the access count.
    #[inline]
    pub fn access_memoized(&mut self, addr: u64) -> bool {
        if addr / PAGE_BYTES == self.last_page {
            self.accesses += 1;
            return true;
        }
        self.access(addr)
    }

    /// [`Tlb::access`] with a caller-owned per-stream memo on top of the
    /// internal last-page fast path. A repeat of the memoized page is a hit
    /// **iff** its remembered slot still holds it (`pages[slot] == page`) —
    /// one array read proves residency regardless of intervening evictions,
    /// because install only happens on a miss, so a page never occupies two
    /// slots. State evolution is identical to the plain path.
    #[inline]
    pub fn access_hinted(&mut self, addr: u64, memo: &mut PageMemo) -> bool {
        let page = addr / PAGE_BYTES;
        if page == self.last_page {
            self.accesses += 1;
            memo.page = page;
            memo.slot = self.last_slot;
            return true;
        }
        if page == memo.page && self.pages[memo.slot] == page {
            self.accesses += 1;
            self.touch(memo.slot as u32);
            self.last_page = page;
            self.last_slot = memo.slot;
            return true;
        }
        let hit = self.access(addr);
        memo.page = page;
        memo.slot = self.last_slot;
        hit
    }

    /// Applies `count` further translations of the most recently used page
    /// in one step — bit-identical to `count` calls of [`Tlb::access`] on
    /// that page, which would each hit the slot already at the MRU head.
    ///
    /// Callers must have translated at least one address beforehand; the
    /// batched executor guarantees this by construction.
    #[inline]
    pub fn bulk_repeat(&mut self, count: u64) {
        debug_assert!(self.last_page != EMPTY, "bulk_repeat before any access");
        self.accesses += count;
    }

    /// Miss rate over all translations so far.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut tlb = Tlb::new(TlbConfig::default());
        assert!(!tlb.access(0x1000));
        for offset in (0..PAGE_BYTES).step_by(64) {
            assert!(tlb.access(0x1000 + offset));
        }
        assert_eq!(tlb.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(TlbConfig { entries: 2 });
        let (a, b, c) = (0, PAGE_BYTES, 2 * PAGE_BYTES);
        tlb.access(a);
        tlb.access(b);
        tlb.access(a); // A hit → B is LRU
        tlb.access(c); // C evicts B
        assert!(tlb.access(a));
        assert!(!tlb.access(b));
    }

    #[test]
    fn page_walk_heavy_pattern_misses() {
        let mut tlb = Tlb::new(TlbConfig::default());
        // Touch 1000 distinct pages round-robin: far exceeds capacity.
        for i in 0..10_000u64 {
            tlb.access((i % 1000) * PAGE_BYTES);
        }
        assert!(tlb.miss_rate() > 0.9, "miss rate {}", tlb.miss_rate());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(TlbConfig { entries: 0 });
    }

    /// Reference reimplementation of the original stamp-scan TLB, kept to
    /// pin the indexed implementation to the seed-era decision sequence.
    struct StampTlb {
        pages: Vec<u64>,
        stamps: Vec<u64>,
        clock: u64,
    }

    impl StampTlb {
        fn new(entries: u32) -> StampTlb {
            StampTlb {
                pages: vec![u64::MAX; entries as usize],
                stamps: vec![0; entries as usize],
                clock: 0,
            }
        }

        fn access(&mut self, addr: u64) -> bool {
            self.clock += 1;
            let page = addr / PAGE_BYTES;
            if let Some(slot) = self.pages.iter().position(|&p| p == page) {
                self.stamps[slot] = self.clock;
                return true;
            }
            let victim = (0..self.pages.len())
                .min_by_key(|&i| self.stamps[i])
                .unwrap();
            self.pages[victim] = page;
            self.stamps[victim] = self.clock;
            false
        }
    }

    /// The O(1) indexed TLB makes exactly the decisions the stamp-scan
    /// implementation made, slot for slot, under heavy random eviction.
    #[test]
    fn indexed_matches_stamp_scan() {
        for entries in [1u32, 2, 4, 64] {
            let mut new = Tlb::new(TlbConfig { entries });
            let mut old = StampTlb::new(entries);
            let mut x = 0x9e37_79b9_7f4a_7c15u64;
            for i in 0..50_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = x % (3 * u64::from(entries) * PAGE_BYTES);
                assert_eq!(old.access(addr), new.access(addr), "entries {entries}, access {i}");
                assert_eq!(old.pages, new.pages, "entries {entries}, access {i}");
            }
        }
    }

    /// The memoized and bulk paths evolve the TLB identically to the plain
    /// path, including under heavy eviction pressure.
    #[test]
    fn memoized_paths_are_state_identical() {
        let cfg = TlbConfig { entries: 4 };
        let mut plain = Tlb::new(cfg);
        let mut memo = Tlb::new(cfg);
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % (64 * PAGE_BYTES);
            assert_eq!(plain.access(addr), memo.access_memoized(addr));
            if i % 5 == 0 {
                for _ in 0..3 {
                    plain.access(addr);
                }
                memo.bulk_repeat(3);
            }
        }
        assert_eq!(plain.accesses, memo.accesses);
        assert_eq!(plain.misses, memo.misses);
        assert_eq!(plain.pages, memo.pages);
        assert_eq!(plain.next, memo.next);
        assert_eq!(plain.prev, memo.prev);
        assert_eq!(plain.head, memo.head);
        assert_eq!(plain.tail, memo.tail);
    }

    /// The hinted path evolves the TLB identically to the plain path under
    /// interleaved streams whose memos go stale via eviction.
    #[test]
    fn hinted_path_is_state_identical() {
        let cfg = TlbConfig { entries: 4 };
        let mut plain = Tlb::new(cfg);
        let mut hinted = Tlb::new(cfg);
        let mut memos = [PageMemo::default(); 3];
        let mut x = 0x0135_79bd_f246_8ace_u64;
        for i in 0..20_000u64 {
            let s = (i % 3) as usize;
            let addr = match s {
                // Stream 0 walks pages slowly; stream 1 stays on one page;
                // stream 2 jumps randomly across 16 pages (evicts heavily).
                0 => (i / 8) * PAGE_BYTES + (i % 8) * 64,
                1 => 0x100_0000 + (i % 100),
                _ => {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % 16) * PAGE_BYTES
                }
            };
            assert_eq!(
                plain.access(addr),
                hinted.access_hinted(addr, &mut memos[s]),
                "access {i}"
            );
        }
        assert_eq!(plain.accesses, hinted.accesses);
        assert_eq!(plain.misses, hinted.misses);
        assert_eq!(plain.pages, hinted.pages);
        assert_eq!(plain.next, hinted.next);
        assert_eq!(plain.prev, hinted.prev);
        assert_eq!(plain.head, hinted.head);
        assert_eq!(plain.tail, hinted.tail);
        assert_eq!(plain.last_page, hinted.last_page);
        assert_eq!(plain.last_slot, hinted.last_slot);
    }

    /// The open-addressed index stays consistent through random
    /// insert/remove churn (backward-shift deletion preserves chains).
    #[test]
    fn page_index_survives_churn() {
        let mut idx = PageIndex::new(64);
        let mut reference = std::collections::HashMap::new();
        let mut x = 0xfeed_face_cafe_beefu64;
        for _ in 0..50_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let page = x % 96;
            match reference.remove(&page) {
                Some(_) => idx.remove(page),
                None => {
                    if reference.len() < 64 {
                        let slot = (x >> 32) as u32 % 64;
                        reference.insert(page, slot);
                        idx.insert(page, slot);
                    }
                }
            }
            for (&p, &s) in &reference {
                assert_eq!(idx.get(p), Some(s));
            }
            assert_eq!(idx.get(x % 96 + 1000), None);
        }
    }
}
