//! Translation lookaside buffers: small fully-associative LRU caches over
//! 4 KiB pages. TLB miss rates are another commit-stage event channel the
//! Architectural feature can observe — pointer-chasing malware walks many
//! more pages than a strided kernel.

use serde::{Deserialize, Serialize};

/// Page size covered by one TLB entry.
pub const PAGE_BYTES: u64 = 4096;

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: u32,
}

impl Default for TlbConfig {
    /// A 64-entry L1 TLB.
    fn default() -> TlbConfig {
        TlbConfig { entries: 64 }
    }
}

/// A fully-associative, true-LRU TLB.
///
/// # Examples
///
/// ```
/// use rhmd_uarch::tlb::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig { entries: 2 });
/// assert!(!tlb.access(0x0000)); // cold
/// assert!(tlb.access(0x0004));  // same page
/// assert!(!tlb.access(0x2000)); // new page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    pages: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    /// Total translations requested.
    pub accesses: u64,
    /// Translations that missed.
    pub misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is zero.
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.entries > 0, "TLB needs at least one entry");
        Tlb {
            pages: vec![u64::MAX; config.entries as usize],
            stamps: vec![0; config.entries as usize],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Translates one address; returns `true` on hit. Misses install the
    /// page, evicting the LRU entry.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.clock += 1;
        let page = addr / PAGE_BYTES;
        if let Some(slot) = self.pages.iter().position(|&p| p == page) {
            self.stamps[slot] = self.clock;
            return true;
        }
        self.misses += 1;
        let victim = (0..self.pages.len())
            .min_by_key(|&i| self.stamps[i])
            .expect("entries > 0");
        self.pages[victim] = page;
        self.stamps[victim] = self.clock;
        false
    }

    /// Miss rate over all translations so far.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut tlb = Tlb::new(TlbConfig::default());
        assert!(!tlb.access(0x1000));
        for offset in (0..PAGE_BYTES).step_by(64) {
            assert!(tlb.access(0x1000 + offset));
        }
        assert_eq!(tlb.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(TlbConfig { entries: 2 });
        let (a, b, c) = (0, PAGE_BYTES, 2 * PAGE_BYTES);
        tlb.access(a);
        tlb.access(b);
        tlb.access(a); // A hit → B is LRU
        tlb.access(c); // C evicts B
        assert!(tlb.access(a));
        assert!(!tlb.access(b));
    }

    #[test]
    fn page_walk_heavy_pattern_misses() {
        let mut tlb = Tlb::new(TlbConfig::default());
        // Touch 1000 distinct pages round-robin: far exceeds capacity.
        for i in 0..10_000u64 {
            tlb.access((i % 1000) * PAGE_BYTES);
        }
        assert!(tlb.miss_rate() > 0.9, "miss rate {}", tlb.miss_rate());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(TlbConfig { entries: 0 });
    }
}
