//! Counter fault injection: a deterministic, seeded model of the ways real
//! performance-monitoring hardware corrupts the event stream an HMD reads.
//!
//! Real HPC-based detectors never see the bit-perfect counters the rest of
//! this crate simulates. Counters are narrow and saturate or wrap, reads are
//! lost to interrupt coalescing, a limited number of physical counters is
//! multiplexed across more logical events (so a channel reads stale or zero
//! for some windows), and electrical or firmware glitches corrupt whole
//! bursts of reads. [`FaultModel`] reproduces each of those effects on a
//! committed counter stream, keyed only on `(seed, window index, channel)`
//! so corruption is reproducible and independent of evaluation order.
//!
//! A zero-intensity model (the default config) is a bit-exact identity and
//! never touches a floating-point path, so fault-free runs stay
//! bit-identical to runs that never constructed a model at all.
//!
//! # Examples
//!
//! ```
//! use rhmd_uarch::events::CounterSet;
//! use rhmd_uarch::faults::{FaultConfig, FaultModel};
//!
//! let model = FaultModel::new(FaultConfig::noise(0.1), 7);
//! let clean = CounterSet { instructions: 1_000, loads: 240, ..CounterSet::default() };
//! let mut stream = vec![clean; 4];
//! model.corrupt_stream(&mut stream);
//! assert_eq!(stream.len(), 4); // noise never drops windows
//! ```

use crate::core::CoreModel;
use crate::events::{CounterSet, COUNTER_DIMS};
use rhmd_trace::exec::{ExecEvent, Observer};
use serde::{Deserialize, Serialize};

/// How a width-limited counter handles overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Overflow {
    /// The counter sticks at its maximum value.
    Saturate,
    /// The counter wraps modulo its width.
    Wrap,
}

/// Fault intensities, serde-configurable. The default is the identity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Relative standard deviation of per-channel multiplicative Gaussian
    /// noise (`0.1` ≈ ±10% read jitter).
    pub noise: f64,
    /// Standard deviation of additive Gaussian noise, in raw counts.
    pub additive: f64,
    /// Counter width in bits; `0` means unlimited (no overflow).
    pub counter_bits: u32,
    /// Overflow behaviour when `counter_bits > 0`.
    pub overflow: Overflow,
    /// Probability that a window's read is lost to interrupt coalescing and
    /// merged into the next surviving read.
    pub drop_rate: f64,
    /// Probability that a channel is multiplexed out for a window and reads
    /// stale (previous window's value, or zero for the first window).
    pub multiplex_rate: f64,
    /// Probability that a corruption burst *starts* at any given window.
    pub burst_rate: f64,
    /// Length of a corruption burst, in windows.
    pub burst_len: u32,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// The identity: no faults of any kind.
    pub fn none() -> FaultConfig {
        FaultConfig {
            noise: 0.0,
            additive: 0.0,
            counter_bits: 0,
            overflow: Overflow::Saturate,
            drop_rate: 0.0,
            multiplex_rate: 0.0,
            burst_rate: 0.0,
            burst_len: 4,
        }
    }

    /// Multiplicative Gaussian read noise with relative std-dev `sigma`.
    pub fn noise(sigma: f64) -> FaultConfig {
        FaultConfig {
            noise: sigma,
            ..FaultConfig::none()
        }
    }

    /// Saturating counters of `bits` width.
    pub fn saturating(bits: u32) -> FaultConfig {
        FaultConfig {
            counter_bits: bits,
            overflow: Overflow::Saturate,
            ..FaultConfig::none()
        }
    }

    /// Wrapping counters of `bits` width.
    pub fn wrapping(bits: u32) -> FaultConfig {
        FaultConfig {
            counter_bits: bits,
            overflow: Overflow::Wrap,
            ..FaultConfig::none()
        }
    }

    /// Interrupt-coalescing window drops at the given rate.
    pub fn dropping(rate: f64) -> FaultConfig {
        FaultConfig {
            drop_rate: rate,
            ..FaultConfig::none()
        }
    }

    /// Channel multiplexing: each channel reads stale with probability
    /// `rate` in each window.
    pub fn multiplexed(rate: f64) -> FaultConfig {
        FaultConfig {
            multiplex_rate: rate,
            ..FaultConfig::none()
        }
    }

    /// Burst corruption: bursts of `len` garbage windows start with
    /// probability `rate` per window.
    pub fn bursty(rate: f64, len: u32) -> FaultConfig {
        FaultConfig {
            burst_rate: rate,
            burst_len: len.max(1),
            ..FaultConfig::none()
        }
    }

    /// True when this config can never alter a value — the guarantee the
    /// zero-intensity identity property rests on.
    pub fn is_identity(&self) -> bool {
        self.noise == 0.0
            && self.additive == 0.0
            && self.counter_bits == 0
            && self.drop_rate == 0.0
            && self.multiplex_rate == 0.0
            && self.burst_rate == 0.0
    }

    /// A stable 64-bit digest of every intensity field, suitable as a cache
    /// key component: configs with identical effect hash identically across
    /// processes and runs (unlike `std::hash`, which is not guaranteed
    /// stable), and any field change reaches the digest.
    pub fn stable_hash(&self) -> u64 {
        use rhmd_trace::seed::mix_seed;
        let mut h = 0x6661_756c_7463_6667; // b"faultcfg"
        for bits in [
            self.noise.to_bits(),
            self.additive.to_bits(),
            u64::from(self.counter_bits),
            match self.overflow {
                Overflow::Saturate => 0,
                Overflow::Wrap => 1,
            },
            self.drop_rate.to_bits(),
            self.multiplex_rate.to_bits(),
            self.burst_rate.to_bits(),
            u64::from(self.burst_len),
        ] {
            h = mix_seed(h, bits);
        }
        h
    }
}

// Stream-separation tags so the drop, multiplex, burst, and noise decisions
// at one (window, channel) are independent of each other.
const TAG_DROP: u64 = 0x1;
const TAG_MUX: u64 = 0x2;
const TAG_BURST: u64 = 0x3;
const TAG_NOISE_A: u64 = 0x4;
const TAG_NOISE_B: u64 = 0x5;
const TAG_GARBAGE: u64 = 0x6;

/// SplitMix64 finalizer — a full-avalanche 64-bit mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a hash (53-bit resolution).
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded fault model over a committed counter stream.
///
/// Every decision is a pure function of `(seed, window index, channel)`:
/// corrupting window 17 gives the same answer whether or not windows 0–16
/// were corrupted first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    config: FaultConfig,
    seed: u64,
}

impl FaultModel {
    /// Creates a model applying `config` with the given seed.
    pub fn new(config: FaultConfig, seed: u64) -> FaultModel {
        FaultModel { config, seed }
    }

    /// The configured intensities.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The seed in effect.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when this model is a bit-exact identity.
    pub fn is_identity(&self) -> bool {
        self.config.is_identity()
    }

    #[inline]
    fn hash(&self, tag: u64, window: u64, channel: u64) -> u64 {
        mix(self
            .seed
            .wrapping_add(mix(tag.wrapping_mul(0x9e3779b97f4a7c15)))
            .wrapping_add(mix(window.wrapping_mul(0xd1b54a32d192ed03)))
            .wrapping_add(mix(channel.wrapping_mul(0x8cb92ba72f3d8dd7))))
    }

    /// Standard normal deviate for `(tag-pair, window, channel)` via
    /// Box–Muller. Only called on non-zero noise intensities.
    #[inline]
    fn gauss(&self, window: u64, channel: u64) -> f64 {
        // u1 in (0, 1] so the log is finite.
        let u1 = 1.0 - unit(self.hash(TAG_NOISE_A, window, channel));
        let u2 = unit(self.hash(TAG_NOISE_B, window, channel));
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// True when the read of `window` is lost to interrupt coalescing.
    pub fn drops_window(&self, window: u64) -> bool {
        self.config.drop_rate > 0.0 && unit(self.hash(TAG_DROP, window, 0)) < self.config.drop_rate
    }

    /// True when `window` falls inside a corruption burst.
    pub fn in_burst(&self, window: u64) -> bool {
        if self.config.burst_rate <= 0.0 {
            return false;
        }
        let len = u64::from(self.config.burst_len.max(1));
        let first = window.saturating_sub(len - 1);
        (first..=window).any(|start| unit(self.hash(TAG_BURST, start, 0)) < self.config.burst_rate)
    }

    /// True when `channel` is multiplexed out (reads stale) in `window`.
    pub fn multiplexed_out(&self, window: u64, channel: u64) -> bool {
        self.config.multiplex_rate > 0.0
            && unit(self.hash(TAG_MUX, window, channel)) < self.config.multiplex_rate
    }

    /// Corrupts one counter value. `prev` is the channel's previous
    /// *observed* value, served when the channel is multiplexed out (zero at
    /// the start of the stream).
    ///
    /// Zero-intensity configs return `value` unchanged without touching any
    /// floating-point path.
    pub fn corrupt_value(&self, window: u64, channel: u64, value: u64, prev: Option<u64>) -> u64 {
        let c = &self.config;
        if c.is_identity() {
            return value;
        }
        let mask = if c.counter_bits == 0 || c.counter_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << c.counter_bits) - 1
        };
        if self.in_burst(window) {
            // Electrical garbage: a random value within the counter width
            // (or a plausible 32-bit range for unlimited counters).
            let garbage_mask = if c.counter_bits == 0 { u32::MAX as u64 } else { mask };
            return self.hash(TAG_GARBAGE, window, channel) & garbage_mask;
        }
        if self.multiplexed_out(window, channel) {
            return prev.unwrap_or(0);
        }
        let mut v = value;
        if c.noise > 0.0 || c.additive > 0.0 {
            let mut f = v as f64;
            if c.noise > 0.0 {
                f *= 1.0 + c.noise * self.gauss(window, channel);
            }
            if c.additive > 0.0 {
                f += c.additive * self.gauss(window, channel ^ (1 << 32));
            }
            v = if f <= 0.0 { 0 } else { f.round() as u64 };
        }
        if c.counter_bits > 0 {
            v = match c.overflow {
                Overflow::Saturate => v.min(mask),
                Overflow::Wrap => v & mask,
            };
        }
        v
    }

    /// Corrupts one [`CounterSet`] in place. `window` is the read's index in
    /// the committed stream; `prev` is the previously *observed* (possibly
    /// corrupted) set, used for stale multiplexed reads.
    pub fn corrupt_counters(&self, window: u64, counters: &mut CounterSet, prev: Option<&CounterSet>) {
        if self.is_identity() {
            return;
        }
        let raw = counters.to_array();
        let stale = prev.map(CounterSet::to_array);
        let mut out = [0u64; COUNTER_DIMS];
        for (ch, (o, &v)) in out.iter_mut().zip(&raw).enumerate() {
            *o = self.corrupt_value(window, ch as u64, v, stale.map(|s| s[ch]));
        }
        *counters = CounterSet::from_array(out);
    }

    /// Corrupts a whole counter stream: applies per-channel corruption to
    /// every window and merges dropped reads into the next surviving window
    /// (interrupt coalescing), truncating any trailing run of dropped reads.
    ///
    /// Window indices are positions in the *original* stream, so per-window
    /// decisions match [`FaultModel::drops_window`] /
    /// [`FaultModel::corrupt_counters`] applied individually.
    pub fn corrupt_stream(&self, stream: &mut Vec<CounterSet>) {
        if self.is_identity() {
            return;
        }
        let mut out: Vec<CounterSet> = Vec::with_capacity(stream.len());
        let mut pending = CounterSet::default();
        let mut prev: Option<CounterSet> = None;
        let mut dropped = 0u64;
        for (window, &clean) in stream.iter().enumerate() {
            let merged = pending + clean;
            if self.drops_window(window as u64) {
                pending = merged;
                dropped += 1;
                continue;
            }
            pending = CounterSet::default();
            let mut read = merged;
            self.corrupt_counters(window as u64, &mut read, prev.as_ref());
            prev = Some(read);
            out.push(read);
        }
        rhmd_obs::add("uarch.windows_dropped", dropped);
        rhmd_obs::add("uarch.windows_corrupted", out.len() as u64);
        *stream = out;
    }
}

/// A [`CoreModel`] wrapped with fault injection on its counter reads: the
/// events flow through unchanged, but every [`FaultedCore::drain_counters`]
/// read passes through the [`FaultModel`].
///
/// # Examples
///
/// ```
/// use rhmd_trace::exec::ExecLimits;
/// use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};
/// use rhmd_uarch::faults::{FaultConfig, FaultModel, FaultedCore};
/// use rhmd_uarch::{CoreConfig, CoreModel};
///
/// let program = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(0);
/// let mut core = FaultedCore::new(
///     CoreModel::new(CoreConfig::default()),
///     FaultModel::new(FaultConfig::noise(0.05), 3),
/// );
/// program.execute(ExecLimits::instructions(10_000), &mut core);
/// let read = core.drain_counters().expect("noise never drops reads");
/// assert!(read.instructions > 0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultedCore {
    core: CoreModel,
    model: FaultModel,
    window: u64,
    pending: CounterSet,
    prev: Option<CounterSet>,
}

impl FaultedCore {
    /// Wraps `core` with `model`.
    pub fn new(core: CoreModel, model: FaultModel) -> FaultedCore {
        FaultedCore {
            core,
            model,
            window: 0,
            pending: CounterSet::default(),
            prev: None,
        }
    }

    /// The wrapped core.
    pub fn core(&self) -> &CoreModel {
        &self.core
    }

    /// The fault model in effect.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Unwraps the inner core, discarding fault state.
    pub fn into_inner(self) -> CoreModel {
        self.core
    }

    /// Reads and resets the accumulated counters through the fault model.
    ///
    /// Returns `None` when the read was lost to interrupt coalescing; the
    /// lost counts are merged into the next successful read, as on hardware
    /// where the accumulation continues even if the sampling interrupt is
    /// missed.
    pub fn drain_counters(&mut self) -> Option<CounterSet> {
        let window = self.window;
        self.window += 1;
        let merged = self.pending + self.core.drain_counters();
        if self.model.drops_window(window) {
            self.pending = merged;
            return None;
        }
        self.pending = CounterSet::default();
        let mut read = merged;
        self.model.corrupt_counters(window, &mut read, self.prev.as_ref());
        self.prev = Some(read);
        Some(read)
    }
}

impl Observer for FaultedCore {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        self.core.observe(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream(n: usize) -> Vec<CounterSet> {
        (0..n)
            .map(|i| CounterSet {
                instructions: 1_000,
                loads: 200 + i as u64,
                stores: 90,
                mispredicts: 12,
                dcache_misses: 40 + (i as u64 % 7),
                syscalls: i as u64 % 3,
                ..CounterSet::default()
            })
            .collect()
    }

    #[test]
    fn stable_hash_separates_configs() {
        let configs = [
            FaultConfig::none(),
            FaultConfig::noise(0.1),
            FaultConfig::noise(0.2),
            FaultConfig::dropping(0.1),
            FaultConfig::multiplexed(0.1),
            FaultConfig::bursty(0.1, 4),
            FaultConfig::saturating(12),
            FaultConfig::wrapping(12),
        ];
        let mut hashes: Vec<u64> = configs.iter().map(FaultConfig::stable_hash).collect();
        // Stable across calls …
        assert_eq!(hashes[1], FaultConfig::noise(0.1).stable_hash());
        // … and distinct across distinct configs (saturate vs wrap at the
        // same width differ only in the overflow field).
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), configs.len());
    }

    #[test]
    fn zero_intensity_is_bit_exact_identity() {
        let model = FaultModel::new(FaultConfig::none(), 99);
        assert!(model.is_identity());
        let clean = sample_stream(16);
        let mut faulted = clean.clone();
        model.corrupt_stream(&mut faulted);
        assert_eq!(clean, faulted);
        assert_eq!(model.corrupt_value(3, 5, 123_456, Some(7)), 123_456);
    }

    #[test]
    fn corruption_is_order_independent() {
        let model = FaultModel::new(FaultConfig::noise(0.2), 5);
        let clean = sample_stream(8);
        // Whole-stream corruption equals window-at-a-time corruption.
        let mut streamed = clean.clone();
        model.corrupt_stream(&mut streamed);
        let mut individual = Vec::new();
        let mut prev = None;
        for (i, &w) in clean.iter().enumerate() {
            let mut c = w;
            model.corrupt_counters(i as u64, &mut c, prev.as_ref());
            prev = Some(c);
            individual.push(c);
        }
        assert_eq!(streamed, individual);
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let model = FaultModel::new(FaultConfig::noise(0.1), 11);
        let mut stream = sample_stream(32);
        model.corrupt_stream(&mut stream);
        let clean = sample_stream(32);
        assert_ne!(stream, clean);
        for (f, c) in stream.iter().zip(&clean) {
            // ±10% noise stays within ±60% with overwhelming probability.
            assert!((f.instructions as f64) > 0.4 * c.instructions as f64);
            assert!((f.instructions as f64) < 1.6 * c.instructions as f64);
        }
    }

    #[test]
    fn saturation_caps_at_width() {
        let model = FaultModel::new(FaultConfig::saturating(8), 0);
        let v = model.corrupt_value(0, 0, 100_000, None);
        assert_eq!(v, 255);
        let small = model.corrupt_value(0, 1, 37, None);
        assert_eq!(small, 37);
    }

    #[test]
    fn wraparound_is_modular() {
        let model = FaultModel::new(FaultConfig::wrapping(8), 0);
        assert_eq!(model.corrupt_value(0, 0, 256 + 37, None), 37);
    }

    #[test]
    fn drops_coalesce_into_next_read() {
        let model = FaultModel::new(FaultConfig::dropping(0.5), 21);
        let clean = sample_stream(64);
        let total: u64 = clean.iter().map(|c| c.instructions).sum();
        let mut stream = clean;
        model.corrupt_stream(&mut stream);
        assert!(stream.len() < 64, "a 50% drop rate must lose some reads");
        let observed: u64 = stream.iter().map(|c| c.instructions).sum();
        // Coalescing preserves all counts except a trailing dropped run.
        assert!(observed <= total);
        assert!(observed >= total - 64 * 1_000 / 2);
        assert!(stream.iter().any(|c| c.instructions >= 2_000));
    }

    #[test]
    fn multiplexed_channels_read_stale() {
        let model = FaultModel::new(FaultConfig::multiplexed(0.5), 4);
        let clean = sample_stream(40);
        let mut stream = clean.clone();
        model.corrupt_stream(&mut stream);
        assert_eq!(stream.len(), 40);
        // Some loads reads must repeat the previous observation.
        let stale_hits = stream
            .windows(2)
            .filter(|w| w[1].loads == w[0].loads)
            .count();
        assert!(stale_hits > 0, "expected stale multiplexed reads");
    }

    #[test]
    fn bursts_cover_consecutive_windows() {
        let config = FaultConfig::bursty(0.05, 4);
        let model = FaultModel::new(config, 9);
        let in_burst: Vec<bool> = (0..400).map(|w| model.in_burst(w)).collect();
        let hits = in_burst.iter().filter(|&&b| b).count();
        assert!(hits > 0, "a 5% burst rate over 400 windows should fire");
        // Every burst window belongs to a run whose start window hashes hot,
        // so runs of length >= 2 exist.
        assert!(in_burst.windows(2).any(|w| w[0] && w[1]));
    }

    #[test]
    fn faulted_core_matches_plain_core_at_zero_intensity() {
        use crate::{CoreConfig, CoreModel};
        use rhmd_trace::exec::ExecLimits;
        use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};

        let p = ProgramGenerator::new(benign_profile(BenignClass::Archiver)).generate(2);
        let mut plain = CoreModel::new(CoreConfig::default());
        p.execute(ExecLimits::instructions(8_000), &mut plain);
        let mut faulted = FaultedCore::new(
            CoreModel::new(CoreConfig::default()),
            FaultModel::new(FaultConfig::none(), 1),
        );
        p.execute(ExecLimits::instructions(8_000), &mut faulted);
        assert_eq!(faulted.drain_counters(), Some(plain.drain_counters()));
    }

    #[test]
    fn serde_round_trip() {
        let config = FaultConfig {
            noise: 0.1,
            counter_bits: 16,
            overflow: Overflow::Wrap,
            drop_rate: 0.2,
            ..FaultConfig::none()
        };
        let json = serde_json::to_string(&FaultModel::new(config, 17)).unwrap();
        let back: FaultModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.config(), &config);
        assert_eq!(back.seed(), 17);
    }
}
