//! Property-based tests of the microarchitecture model.

use proptest::prelude::*;
use rhmd_uarch::branch::{Btb, GsharePredictor};
use rhmd_uarch::cache::{Cache, CacheConfig};
use rhmd_uarch::events::CounterSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Misses never exceed accesses, and an immediate re-access always hits.
    #[test]
    fn cache_hit_after_access(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig::l1_32k());
        for &a in &addrs {
            cache.access(a);
            prop_assert!(cache.access(a), "address {a:#x} should hit after access");
        }
        prop_assert!(cache.misses <= cache.accesses);
        prop_assert!((0.0..=1.0).contains(&cache.miss_rate()));
    }

    /// A working set that fits in one way-set never misses after warm-up.
    #[test]
    fn small_working_set_has_no_steady_misses(start in 0u64..1_000_000) {
        let mut cache = Cache::new(CacheConfig::l1_32k());
        let lines: Vec<u64> = (0..4).map(|i| (start + i * 64) & !63).collect();
        for &l in &lines {
            cache.access(l);
        }
        let warm_misses = cache.misses;
        for _ in 0..10 {
            for &l in &lines {
                cache.access(l);
            }
        }
        prop_assert_eq!(cache.misses, warm_misses);
    }

    /// Range accesses incur at most two misses.
    #[test]
    fn range_access_bounds(addr in 0u64..1_000_000, size in 1u8..16) {
        let mut cache = Cache::new(CacheConfig::l1_32k());
        let misses = cache.access_range(addr, size);
        prop_assert!(misses <= 2);
        prop_assert_eq!(cache.access_range(addr, size), 0);
    }

    /// The predictor's misprediction count never exceeds predictions, and a
    /// deterministic branch is eventually learned.
    #[test]
    fn predictor_sanity(pc in 0u64..1_000_000, taken in any::<bool>()) {
        let mut p = GsharePredictor::new(10);
        for _ in 0..200 {
            p.predict_and_update(pc, taken);
        }
        prop_assert!(p.mispredictions <= p.predictions);
        let before = p.mispredictions;
        for _ in 0..50 {
            p.predict_and_update(pc, taken);
        }
        prop_assert_eq!(p.mispredictions, before, "steady-state mispredictions");
    }

    /// BTB: a stable (pc → target) pair hits from the second lookup on.
    #[test]
    fn btb_stabilizes(pc in 0u64..1_000_000, target in 0u64..1_000_000) {
        let mut btb = Btb::new(64);
        btb.lookup_and_update(pc, target);
        for _ in 0..5 {
            prop_assert!(btb.lookup_and_update(pc, target));
        }
    }

    /// Counter arithmetic: add then subtract is the identity, and rates are
    /// finite.
    #[test]
    fn counter_arithmetic(
        a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000,
    ) {
        let x = CounterSet { instructions: a.max(1), loads: b, mispredicts: c, ..CounterSet::default() };
        let y = CounterSet { instructions: b, dcache_misses: a, ..CounterSet::default() };
        prop_assert_eq!((x + y) - y, x);
        let rates = x.to_rates();
        prop_assert!(rates.iter().all(|r| r.is_finite()));
        prop_assert_eq!(rates[0], 1.0);
    }
}
