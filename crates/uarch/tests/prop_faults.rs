//! Property-based tests of the counter fault-injection model.

use proptest::prelude::*;
use rhmd_uarch::events::CounterSet;
use rhmd_uarch::faults::{FaultConfig, FaultModel};

fn any_counters() -> impl Strategy<Value = CounterSet> {
    (0u64..5_000, 0u64..2_000, 0u64..2_000, 0u64..500).prop_map(|(i, l, s, m)| CounterSet {
        instructions: i,
        loads: l,
        stores: s,
        l2_misses: m,
        ..CounterSet::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A zero-intensity fault model is a bit-exact identity on counter
    /// streams, for any seed.
    #[test]
    fn zero_intensity_is_identity(
        stream in prop::collection::vec(any_counters(), 1..40),
        seed in any::<u64>(),
    ) {
        let model = FaultModel::new(FaultConfig::none(), seed);
        prop_assert!(model.is_identity());
        let mut faulted = stream.clone();
        model.corrupt_stream(&mut faulted);
        prop_assert_eq!(faulted, stream);
    }

    /// Saturating counters never exceed the channel maximum implied by the
    /// configured width, and wrapping counters stay within it too.
    #[test]
    fn overflow_respects_counter_width(
        value in any::<u64>(),
        window in 0u64..1_000,
        channel in 0u64..64,
        bits in 4u32..32,
        seed in any::<u64>(),
    ) {
        let max = (1u64 << bits) - 1;
        let sat = FaultModel::new(FaultConfig::saturating(bits), seed);
        let v = sat.corrupt_value(window, channel, value, None);
        prop_assert!(v <= max, "saturated {v} exceeds {max}");
        prop_assert_eq!(v, value.min(max));
        let wrap = FaultModel::new(FaultConfig::wrapping(bits), seed);
        let w = wrap.corrupt_value(window, channel, value, None);
        prop_assert!(w <= max, "wrapped {w} exceeds {max}");
        prop_assert_eq!(w, value & max);
    }

    /// The fraction of dropped windows matches the configured rate within
    /// a statistical tolerance.
    #[test]
    fn drop_rate_is_calibrated(rate in 0.05f64..0.6, seed in any::<u64>()) {
        let model = FaultModel::new(FaultConfig::dropping(rate), seed);
        let n = 4_000u64;
        let dropped = (0..n).filter(|&w| model.drops_window(w)).count() as f64;
        let observed = dropped / n as f64;
        prop_assert!(
            (observed - rate).abs() < 0.05,
            "configured {rate}, observed {observed}"
        );
    }

    /// Corruption is a pure function of (seed, window, channel, value):
    /// re-evaluating in any order reproduces identical results.
    #[test]
    fn corruption_is_deterministic(
        value in any::<u64>(),
        windows in prop::collection::vec(0u64..500, 1..20),
        seed in any::<u64>(),
    ) {
        let model = FaultModel::new(FaultConfig::noise(0.2), seed);
        let forward: Vec<u64> = windows
            .iter()
            .map(|&w| model.corrupt_value(w, 3, value, None))
            .collect();
        let backward: Vec<u64> = windows
            .iter()
            .rev()
            .map(|&w| model.corrupt_value(w, 3, value, None))
            .collect();
        let backward: Vec<u64> = backward.into_iter().rev().collect();
        prop_assert_eq!(forward, backward);
    }

    /// Noise preserves non-negativity and a different seed decorrelates the
    /// corruption pattern.
    #[test]
    fn noise_stays_in_range(counters in any_counters(), window in 0u64..1_000) {
        let model = FaultModel::new(FaultConfig::noise(0.3), 7);
        let mut a = counters;
        model.corrupt_counters(window, &mut a, None);
        // u64 fields are non-negative by construction; the interesting
        // invariant is that corruption terminates and produces a value for
        // every channel without panicking, including zero counters.
        let mut zero = CounterSet::default();
        model.corrupt_counters(window, &mut zero, None);
        prop_assert_eq!(zero.instructions, 0, "noise on zero stays zero");
    }
}
