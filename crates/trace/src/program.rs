//! Whole-program representation and layout.

use crate::address::AddressStream;
use crate::block::{BasicBlock, BlockId, FuncId, Function};
use crate::isa::{AddrPattern, INSTR_BYTES};
use serde::{Deserialize, Serialize};

/// Stream id reserved for injected instructions' scratch traffic.
pub const SCRATCH_STREAM: u8 = u8::MAX;

/// Base virtual address of the text segment.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// Ground-truth class of a program (known to the experimenter, not to
/// detectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgramClass {
    /// A benign application.
    Benign,
    /// A malware sample.
    Malware,
}

impl ProgramClass {
    /// The 0/1 label detectors are trained against (1 = malware, as in the
    /// paper).
    #[inline]
    pub fn label(self) -> bool {
        matches!(self, ProgramClass::Malware)
    }
}

/// A complete synthetic program: functions over a flat basic-block arena,
/// plus the address-stream table that gives it a memory personality.
///
/// Programs are fully deterministic: executing the same program twice yields
/// the identical committed-instruction stream.
///
/// # Examples
///
/// ```
/// use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};
///
/// let program = ProgramGenerator::new(benign_profile(BenignClass::TextEditor))
///     .generate(42);
/// assert!(program.static_instruction_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable name, e.g. `"spambot-017"`.
    pub name: String,
    /// Ground-truth class.
    pub class: ProgramClass,
    /// Generation family index (malware family or benign app class).
    pub family: u32,
    /// Deterministic seed controlling all dynamic behaviour.
    pub seed: u64,
    /// Functions; index 0 is `main`.
    pub functions: Vec<Function>,
    /// Flat block arena referenced by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// Address-stream patterns; memory operands index into this table.
    pub streams: Vec<AddrPattern>,
    /// Stride (bytes) between consecutive scratch accesses made by injected
    /// instructions.
    pub scratch_delta: u32,
}

impl Program {
    /// Recomputes the text layout, assigning each block its virtual address.
    ///
    /// Must be called after construction and after any rewriting (such as
    /// instruction injection) that changes block sizes.
    pub fn relayout(&mut self) {
        let mut addr = TEXT_BASE;
        for func in &self.functions {
            for &bid in &func.blocks {
                let block = &mut self.blocks[bid.index()];
                block.addr = addr;
                addr += block.byte_len();
            }
        }
    }

    /// Total size of the text segment in bytes.
    pub fn text_bytes(&self) -> u64 {
        self.blocks.iter().map(BasicBlock::byte_len).sum()
    }

    /// Total number of static instructions (bodies + terminators).
    pub fn static_instruction_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.len() as u64).sum()
    }

    /// Number of statically injected instructions.
    pub fn injected_instruction_count(&self) -> u64 {
        self.blocks
            .iter()
            .flat_map(|b| &b.body)
            .filter(|i| i.injected)
            .count() as u64
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// The entry point (`main`'s entry block).
    #[inline]
    pub fn entry(&self) -> BlockId {
        self.functions[0].entry
    }

    /// Builds the runtime address-stream table for one execution.
    pub(crate) fn build_streams(&self) -> Vec<AddressStream> {
        self.streams
            .iter()
            .enumerate()
            .map(|(i, &p)| AddressStream::new(p, i as u64))
            .collect()
    }

    /// Builds the scratch stream injected instructions use.
    pub(crate) fn build_scratch(&self) -> AddressStream {
        AddressStream::scratch(self.scratch_delta)
    }

    /// Validates structural invariants: every terminator target is in range,
    /// every memory operand references a valid stream (or the scratch
    /// stream), and the layout is consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        use crate::block::Terminator;
        if self.functions.is_empty() {
            return Err("program has no functions".into());
        }
        let nblocks = self.blocks.len() as u32;
        let check_bid = |b: BlockId| -> Result<(), String> {
            if b.0 >= nblocks {
                Err(format!("block target {b} out of range ({nblocks} blocks)"))
            } else {
                Ok(())
            }
        };
        for block in &self.blocks {
            match block.terminator {
                Terminator::Jump { target } => check_bid(target)?,
                Terminator::Branch {
                    taken,
                    fallthrough,
                    taken_prob,
                    persistence,
                } => {
                    check_bid(taken)?;
                    check_bid(fallthrough)?;
                    if !(0.0..=1.0).contains(&taken_prob) || !(0.0..=1.0).contains(&persistence) {
                        return Err("branch probabilities out of [0,1]".into());
                    }
                }
                Terminator::Call { callee, return_to } => {
                    if callee.index() >= self.functions.len() {
                        return Err(format!("call target {callee} out of range"));
                    }
                    check_bid(return_to)?;
                }
                Terminator::Return | Terminator::Exit => {}
                Terminator::Syscall { next } => check_bid(next)?,
            }
            for instr in &block.body {
                if let Some(m) = instr.mem {
                    if m.stream != SCRATCH_STREAM && m.stream as usize >= self.streams.len() {
                        return Err(format!(
                            "instruction references stream {} but program has {}",
                            m.stream,
                            self.streams.len()
                        ));
                    }
                }
            }
        }
        // Layout consistency: blocks laid out in function order without gaps.
        let mut addr = TEXT_BASE;
        for func in &self.functions {
            for &bid in &func.blocks {
                let block = self.block(bid);
                if block.addr != addr {
                    return Err(format!(
                        "{bid} laid out at {:#x}, expected {addr:#x} (stale layout?)",
                        block.addr
                    ));
                }
                addr += block.byte_len();
            }
        }
        Ok(())
    }

    /// Iterates over `(pc, instruction)` pairs of a block's body.
    pub fn block_body_pcs(
        &self,
        id: BlockId,
    ) -> impl Iterator<Item = (u64, &crate::isa::Instruction)> + '_ {
        let block = self.block(id);
        block
            .body
            .iter()
            .enumerate()
            .map(move |(i, instr)| (block.addr + i as u64 * INSTR_BYTES, instr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Terminator;
    use crate::isa::{Instruction, Opcode};

    fn tiny_program() -> Program {
        let b0 = BasicBlock::new(
            vec![Instruction::reg(Opcode::Add)],
            Terminator::Jump { target: BlockId(1) },
        );
        let b1 = BasicBlock::new(
            vec![Instruction::mem(Opcode::Load, 0, 4)],
            Terminator::Jump { target: BlockId(0) },
        );
        let mut p = Program {
            name: "tiny".into(),
            class: ProgramClass::Benign,
            family: 0,
            seed: 1,
            functions: vec![Function::new(vec![BlockId(0), BlockId(1)])],
            blocks: vec![b0, b1],
            streams: vec![AddrPattern::Random],
            scratch_delta: 64,
        };
        p.relayout();
        p
    }

    #[test]
    fn layout_is_contiguous() {
        let p = tiny_program();
        assert_eq!(p.block(BlockId(0)).addr, TEXT_BASE);
        assert_eq!(p.block(BlockId(1)).addr, TEXT_BASE + 8);
        assert_eq!(p.text_bytes(), 16);
        p.validate().unwrap();
    }

    #[test]
    fn static_counts() {
        let p = tiny_program();
        assert_eq!(p.static_instruction_count(), 4);
        assert_eq!(p.injected_instruction_count(), 0);
    }

    #[test]
    fn validate_catches_bad_target() {
        let mut p = tiny_program();
        p.blocks[0].terminator = Terminator::Jump { target: BlockId(99) };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_stream() {
        let mut p = tiny_program();
        p.blocks[1].body[0] = Instruction::mem(Opcode::Load, 5, 4);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_stale_layout() {
        let mut p = tiny_program();
        p.blocks[0]
            .body
            .push(Instruction::reg(Opcode::Sub));
        // relayout NOT called
        assert!(p.validate().is_err());
        p.relayout();
        p.validate().unwrap();
    }

    #[test]
    fn label_mapping() {
        assert!(!ProgramClass::Benign.label());
        assert!(ProgramClass::Malware.label());
    }
}
