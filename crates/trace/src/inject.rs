//! Instruction-injection rewriting — the paper's evasion framework (§5).
//!
//! The paper dynamically inserts instructions into malware through Pin:
//! either before every control-flow-altering instruction (*block level*) or
//! before every return (*function level*), without affecting the execution
//! state. We reproduce this as a structural rewrite of the program's DCFG:
//! the payload is appended to the end of the chosen blocks' bodies (i.e.
//! immediately before the terminator), flagged as injected, and given
//! scratch-stream memory operands so original address streams are untouched.

use crate::isa::{Instruction, Opcode};
use crate::program::{Program, SCRATCH_STREAM};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where the payload is spliced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Before every control-flow-altering instruction (paper: "block level").
    EveryBlock,
    /// Before every return instruction (paper: "function level").
    BeforeReturn,
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::EveryBlock => f.write_str("basic block"),
            Placement::BeforeReturn => f.write_str("function"),
        }
    }
}

/// A payload of opcodes to splice at each site.
///
/// # Examples
///
/// ```
/// use rhmd_trace::inject::{InjectionPlan, Placement};
/// use rhmd_trace::isa::Opcode;
///
/// let plan = InjectionPlan::new(vec![Opcode::Fpu, Opcode::Fpu], Placement::EveryBlock);
/// assert_eq!(plan.payload_len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionPlan {
    payload: PayloadSpec,
    placement: Placement,
    /// Stride (bytes) between consecutive scratch accesses by injected
    /// memory instructions; steers the Memory-feature histogram.
    pub mem_delta: u32,
}

/// What gets spliced at each site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum PayloadSpec {
    /// The same opcode sequence at every site (the reverse-engineering
    /// driven strategies).
    Fixed(Vec<Opcode>),
    /// Freshly sampled opcodes at every site (the paper's "random
    /// instruction injection" control, Fig 6).
    Random {
        pool: Vec<Opcode>,
        count: usize,
        seed: u64,
    },
}

impl InjectionPlan {
    /// Creates a plan injecting `payload` at each `placement` site.
    ///
    /// # Panics
    ///
    /// Panics if the payload contains a control-flow opcode (injection must
    /// preserve the control-flow graph, as in the paper).
    pub fn new(payload: Vec<Opcode>, placement: Placement) -> InjectionPlan {
        assert!(
            payload.iter().all(|op| op.is_injectable()),
            "cannot inject control-flow opcodes"
        );
        InjectionPlan {
            payload: PayloadSpec::Fixed(payload),
            placement,
            mem_delta: 64,
        }
    }

    /// Creates a plan that injects `count` opcodes at each site, freshly
    /// sampled from `pool` per site — the paper's random-injection control.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty (with `count > 0`) or contains
    /// control-flow opcodes.
    pub fn random(pool: Vec<Opcode>, count: usize, placement: Placement, seed: u64) -> InjectionPlan {
        assert!(
            pool.iter().all(|op| op.is_injectable()),
            "cannot inject control-flow opcodes"
        );
        assert!(count == 0 || !pool.is_empty(), "random payload needs a pool");
        InjectionPlan {
            payload: PayloadSpec::Random { pool, count, seed },
            placement,
            mem_delta: 64,
        }
    }

    /// Sets the scratch-stream stride for injected memory operands.
    #[must_use]
    pub fn with_mem_delta(mut self, delta: u32) -> InjectionPlan {
        self.mem_delta = delta;
        self
    }

    /// Number of instructions injected at each site.
    pub fn payload_len(&self) -> usize {
        match &self.payload {
            PayloadSpec::Fixed(p) => p.len(),
            PayloadSpec::Random { count, .. } => *count,
        }
    }

    /// The opcodes injected at each site (fixed plans), or the sampling pool
    /// (random plans).
    pub fn payload(&self) -> &[Opcode] {
        match &self.payload {
            PayloadSpec::Fixed(p) => p,
            PayloadSpec::Random { pool, .. } => pool,
        }
    }

    /// Whether each site receives independently sampled opcodes.
    pub fn is_random(&self) -> bool {
        matches!(self.payload, PayloadSpec::Random { .. })
    }

    /// The placement strategy.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    fn as_instruction(op: Opcode) -> Instruction {
        if op.is_memory() {
            Instruction::mem(op, SCRATCH_STREAM, 4).as_injected()
        } else {
            Instruction::reg(op).as_injected()
        }
    }
}

/// Static (text-size) cost of an injection, paper Fig 9's "static overhead".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticOverhead {
    /// Text bytes before injection.
    pub base_bytes: u64,
    /// Text bytes added by injection.
    pub added_bytes: u64,
    /// Number of sites the payload was spliced into.
    pub sites: u64,
}

impl StaticOverhead {
    /// Added bytes relative to the original text segment.
    pub fn ratio(&self) -> f64 {
        if self.base_bytes == 0 {
            0.0
        } else {
            self.added_bytes as f64 / self.base_bytes as f64
        }
    }
}

/// Applies `plan` to `program`, returning the rewritten program and its
/// static overhead.
///
/// The rewrite preserves semantics: the original instruction sequence, its
/// memory addresses, and all branch outcomes are unchanged (verified by
/// [`crate::exec::ExecSummary::original_fingerprint`]).
///
/// # Examples
///
/// ```
/// use rhmd_trace::generate::{malware_profile, MalwareFamily, ProgramGenerator};
/// use rhmd_trace::inject::{apply, InjectionPlan, Placement};
/// use rhmd_trace::isa::Opcode;
///
/// let base = ProgramGenerator::new(malware_profile(MalwareFamily::Spambot)).generate(1);
/// let plan = InjectionPlan::new(vec![Opcode::Nop], Placement::EveryBlock);
/// let (modified, overhead) = apply(&base, &plan);
/// assert!(overhead.ratio() > 0.0);
/// assert!(modified.injected_instruction_count() > 0);
/// ```
pub fn apply(program: &Program, plan: &InjectionPlan) -> (Program, StaticOverhead) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let mut modified = program.clone();
    modified.scratch_delta = plan.mem_delta;
    let base_bytes = program.text_bytes();
    let mut sites = 0u64;
    if plan.payload_len() > 0 {
        let mut site_rng = match &plan.payload {
            PayloadSpec::Random { seed, .. } => Some(SmallRng::seed_from_u64(*seed)),
            PayloadSpec::Fixed(_) => None,
        };
        for block in &mut modified.blocks {
            let is_site = match plan.placement {
                Placement::EveryBlock => true,
                Placement::BeforeReturn => {
                    matches!(block.terminator, crate::block::Terminator::Return)
                }
            };
            if is_site {
                match (&plan.payload, &mut site_rng) {
                    (PayloadSpec::Fixed(payload), _) => {
                        block
                            .body
                            .extend(payload.iter().map(|&op| InjectionPlan::as_instruction(op)));
                    }
                    (PayloadSpec::Random { pool, count, .. }, Some(rng)) => {
                        block.body.extend((0..*count).map(|_| {
                            InjectionPlan::as_instruction(pool[rng.gen_range(0..pool.len())])
                        }));
                    }
                    (PayloadSpec::Random { .. }, None) => unreachable!(),
                }
                sites += 1;
            }
        }
    }
    modified.relayout();
    if plan.payload_len() > 0 {
        modified.name = format!(
            "{}+{}x{}@{}",
            program.name,
            plan.payload_len(),
            sites,
            match plan.placement {
                Placement::EveryBlock => "bb",
                Placement::BeforeReturn => "fn",
            }
        );
    }
    let overhead = StaticOverhead {
        base_bytes,
        added_bytes: modified.text_bytes() - base_bytes,
        sites,
    };
    (modified, overhead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Terminator;
    use crate::exec::{CountingSink, ExecLimits};
    use crate::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                          ProgramGenerator};
    use crate::isa::INSTR_BYTES;

    fn sample() -> Program {
        ProgramGenerator::new(malware_profile(MalwareFamily::ClickFraud)).generate(2)
    }

    #[test]
    fn block_level_adds_payload_everywhere() {
        let base = sample();
        let plan = InjectionPlan::new(vec![Opcode::Nop, Opcode::Add], Placement::EveryBlock);
        let (modified, overhead) = apply(&base, &plan);
        assert_eq!(overhead.sites, base.blocks.len() as u64);
        assert_eq!(
            overhead.added_bytes,
            base.blocks.len() as u64 * 2 * INSTR_BYTES
        );
        assert_eq!(
            modified.injected_instruction_count(),
            base.blocks.len() as u64 * 2
        );
        modified.validate().unwrap();
    }

    #[test]
    fn function_level_targets_only_returns() {
        let base = sample();
        let plan = InjectionPlan::new(vec![Opcode::Nop], Placement::BeforeReturn);
        let (modified, overhead) = apply(&base, &plan);
        let returns = base
            .blocks
            .iter()
            .filter(|b| matches!(b.terminator, Terminator::Return))
            .count() as u64;
        assert_eq!(overhead.sites, returns);
        assert!(overhead.added_bytes < base.text_bytes());
        modified.validate().unwrap();
    }

    #[test]
    fn injection_preserves_original_stream() {
        let base = sample();
        let mut sink = CountingSink::default();
        let limits = ExecLimits::instructions(30_000);
        let before = base.execute(limits, &mut sink);

        let plan =
            InjectionPlan::new(vec![Opcode::Load, Opcode::Xor, Opcode::Fpu], Placement::EveryBlock);
        let (modified, _) = apply(&base, &plan);
        let _ = before;
        let limits = ExecLimits::original_instructions(25_000);
        let mut sink2 = CountingSink::default();
        let orig = base.execute(limits, &mut sink2);
        let mut sink3 = CountingSink::default();
        let after = modified.execute(limits, &mut sink3);
        assert_eq!(orig.original_fingerprint, after.original_fingerprint);
        assert_eq!(orig.original_instructions, after.original_instructions);
        assert!(after.instructions > orig.instructions);
    }

    #[test]
    fn dynamic_overhead_scales_with_payload() {
        let base = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(4);
        let limits = ExecLimits::original_instructions(20_000);
        let mut sink = CountingSink::default();
        let plan1 = InjectionPlan::new(vec![Opcode::Nop], Placement::EveryBlock);
        let (m1, _) = apply(&base, &plan1);
        let o1 = m1.execute(limits, &mut sink).dynamic_overhead();
        let plan5 = InjectionPlan::new(vec![Opcode::Nop; 5], Placement::EveryBlock);
        let (m5, _) = apply(&base, &plan5);
        let o5 = m5.execute(limits, &mut sink).dynamic_overhead();
        assert!(o5 > o1 && o1 > 0.0, "o1={o1} o5={o5}");
    }

    #[test]
    #[should_panic(expected = "control-flow")]
    fn control_flow_payload_rejected() {
        let _ = InjectionPlan::new(vec![Opcode::Jmp], Placement::EveryBlock);
    }

    #[test]
    fn empty_payload_is_identity() {
        let base = sample();
        let plan = InjectionPlan::new(vec![], Placement::EveryBlock);
        let (modified, overhead) = apply(&base, &plan);
        assert_eq!(modified, base);
        assert_eq!(overhead.added_bytes, 0);
        assert_eq!(overhead.ratio(), 0.0);
    }

    #[test]
    fn injected_memory_ops_use_scratch_stream() {
        let base = sample();
        let plan = InjectionPlan::new(vec![Opcode::Store], Placement::EveryBlock).with_mem_delta(256);
        let (modified, _) = apply(&base, &plan);
        assert_eq!(modified.scratch_delta, 256);
        let injected: Vec<_> = modified
            .blocks
            .iter()
            .flat_map(|b| &b.body)
            .filter(|i| i.injected)
            .collect();
        assert!(!injected.is_empty());
        assert!(injected
            .iter()
            .all(|i| i.mem.unwrap().stream == crate::program::SCRATCH_STREAM));
    }
}
