//! The instruction-set abstraction used by the synthetic program substrate.
//!
//! The paper's detectors never decode real x86; they only observe *opcode
//! classes* (for the Instructions feature), memory operands (for the Memory
//! feature), and dynamic events (for the Architectural feature). We therefore
//! model instructions at the granularity of 32 x86-flavoured opcode classes,
//! which is the same granularity at which the paper's instruction-mix feature
//! operates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of distinct opcode classes in the synthetic ISA.
pub const OPCODE_COUNT: usize = 32;

/// An x86-flavoured opcode class.
///
/// Classes are chosen so that the generative model can express the behaviours
/// the paper's features depend on: ALU mixes, memory traffic, control flow,
/// string/SIMD-heavy loops, and system interaction.
///
/// # Examples
///
/// ```
/// use rhmd_trace::isa::Opcode;
///
/// assert!(Opcode::Load.is_memory());
/// assert!(Opcode::Jcc.is_control_flow());
/// assert_eq!(Opcode::ALL.len(), rhmd_trace::isa::OPCODE_COUNT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Opcode {
    /// Register-to-register move.
    Mov = 0,
    /// Load from memory into a register.
    Load = 1,
    /// Store from a register to memory.
    Store = 2,
    /// Push to the stack (stack store).
    Push = 3,
    /// Pop from the stack (stack load).
    Pop = 4,
    /// Load effective address (no memory traffic).
    Lea = 5,
    /// Integer addition.
    Add = 6,
    /// Integer subtraction.
    Sub = 7,
    /// Integer multiplication.
    Mul = 8,
    /// Integer division.
    Div = 9,
    /// Increment/decrement.
    Inc = 10,
    /// Bitwise AND.
    And = 11,
    /// Bitwise OR.
    Or = 12,
    /// Bitwise XOR (heavily used by packers/crypters).
    Xor = 13,
    /// Bitwise NOT / NEG.
    Not = 14,
    /// Shifts (SHL/SHR/SAR).
    Shift = 15,
    /// Rotates (ROL/ROR) — common in hashing and obfuscation.
    Rotate = 16,
    /// Compare.
    Cmp = 17,
    /// Bit test (TEST).
    Test = 18,
    /// Conditional branch (Jcc family).
    Jcc = 19,
    /// Unconditional jump.
    Jmp = 20,
    /// Call.
    Call = 21,
    /// Return.
    Ret = 22,
    /// No operation.
    Nop = 23,
    /// String operation (MOVS/STOS/SCAS) with implicit memory access.
    StringOp = 24,
    /// x87/scalar floating-point arithmetic.
    Fpu = 25,
    /// Packed SIMD arithmetic (SSE-class).
    Simd = 26,
    /// SIMD/packed move with memory operand.
    SimdMem = 27,
    /// Conditional move.
    Cmov = 28,
    /// Set-on-condition.
    SetCc = 29,
    /// Exchange (XCHG/XADD; includes lock-prefixed forms).
    Xchg = 30,
    /// System call / software interrupt.
    Syscall = 31,
}

impl Opcode {
    /// All opcode classes in discriminant order.
    pub const ALL: [Opcode; OPCODE_COUNT] = [
        Opcode::Mov,
        Opcode::Load,
        Opcode::Store,
        Opcode::Push,
        Opcode::Pop,
        Opcode::Lea,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Inc,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Not,
        Opcode::Shift,
        Opcode::Rotate,
        Opcode::Cmp,
        Opcode::Test,
        Opcode::Jcc,
        Opcode::Jmp,
        Opcode::Call,
        Opcode::Ret,
        Opcode::Nop,
        Opcode::StringOp,
        Opcode::Fpu,
        Opcode::Simd,
        Opcode::SimdMem,
        Opcode::Cmov,
        Opcode::SetCc,
        Opcode::Xchg,
        Opcode::Syscall,
    ];

    /// Returns the opcode with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= OPCODE_COUNT`.
    #[inline]
    pub fn from_index(index: usize) -> Opcode {
        Self::ALL[index]
    }

    /// The dense index of this opcode in `[0, OPCODE_COUNT)`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short mnemonic for display purposes.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Mov => "mov",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Push => "push",
            Opcode::Pop => "pop",
            Opcode::Lea => "lea",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Inc => "inc",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Not => "not",
            Opcode::Shift => "shl",
            Opcode::Rotate => "rol",
            Opcode::Cmp => "cmp",
            Opcode::Test => "test",
            Opcode::Jcc => "jcc",
            Opcode::Jmp => "jmp",
            Opcode::Call => "call",
            Opcode::Ret => "ret",
            Opcode::Nop => "nop",
            Opcode::StringOp => "movs",
            Opcode::Fpu => "fadd",
            Opcode::Simd => "paddd",
            Opcode::SimdMem => "movdqu",
            Opcode::Cmov => "cmov",
            Opcode::SetCc => "setcc",
            Opcode::Xchg => "xchg",
            Opcode::Syscall => "int",
        }
    }

    /// Whether instructions of this class implicitly read memory.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Opcode::Load | Opcode::Pop | Opcode::StringOp | Opcode::SimdMem | Opcode::Xchg
        )
    }

    /// Whether instructions of this class implicitly write memory.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(
            self,
            Opcode::Store | Opcode::Push | Opcode::StringOp | Opcode::Xchg
        )
    }

    /// Whether this class touches memory at all.
    #[inline]
    pub fn is_memory(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this class alters control flow.
    #[inline]
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Opcode::Jcc | Opcode::Jmp | Opcode::Call | Opcode::Ret | Opcode::Syscall
        )
    }

    /// Whether an instruction of this class can be injected into a program
    /// without changing its architectural state.
    ///
    /// Injected instructions target dead registers or scratch memory, so any
    /// non-control-flow class can be made side-effect free. Control flow and
    /// system calls cannot: the paper's evasion framework likewise never
    /// injects them.
    #[inline]
    pub fn is_injectable(self) -> bool {
        !self.is_control_flow()
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The memory-access pattern an instruction's operand follows.
///
/// Each static instruction that touches memory is bound to one of the
/// program's address streams (see [`crate::address`]); the pattern describes
/// how that stream evolves. Class-conditional pattern mixtures are what give
/// malware and benign programs different Memory-feature histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddrPattern {
    /// Sequential accesses with a fixed stride in bytes.
    Strided {
        /// Stride between consecutive accesses, in bytes.
        stride: u32,
    },
    /// Uniformly random accesses within a region.
    Random,
    /// Pointer-chasing: next address derived from a hash of the current one.
    PointerChase,
    /// Accesses to a small, hot stack frame.
    StackLocal,
}

/// A static memory operand: which address stream it uses and how wide the
/// access is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOperand {
    /// Index of the address stream within the owning program.
    pub stream: u8,
    /// Access size in bytes (1, 2, 4, 8, or 16).
    pub size: u8,
}

/// A static instruction in a basic block.
///
/// Instructions are 4 bytes in the synthetic layout; the fixed size keeps
/// static-overhead accounting (Fig 9) simple without affecting any feature
/// the detectors observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// Opcode class.
    pub opcode: Opcode,
    /// Memory operand, if the opcode touches memory.
    pub mem: Option<MemOperand>,
    /// True for instructions spliced in by the evasion framework.
    pub injected: bool,
}

/// Encoded size of every synthetic instruction, in bytes.
pub const INSTR_BYTES: u64 = 4;

impl Instruction {
    /// Creates a non-memory instruction.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` requires a memory operand (see
    /// [`Opcode::is_memory`]).
    pub fn reg(opcode: Opcode) -> Instruction {
        assert!(
            !opcode.is_memory(),
            "opcode {opcode} requires a memory operand; use Instruction::mem"
        );
        Instruction {
            opcode,
            mem: None,
            injected: false,
        }
    }

    /// Creates a memory-touching instruction bound to an address stream.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` does not access memory.
    pub fn mem(opcode: Opcode, stream: u8, size: u8) -> Instruction {
        assert!(
            opcode.is_memory(),
            "opcode {opcode} does not access memory"
        );
        Instruction {
            opcode,
            mem: Some(MemOperand { stream, size }),
            injected: false,
        }
    }

    /// Returns a copy of this instruction marked as injected.
    #[must_use]
    pub fn as_injected(mut self) -> Instruction {
        self.injected = true;
        self
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mem {
            Some(m) => write!(f, "{} [s{}:{}B]", self.opcode, m.stream, m.size),
            None => write!(f, "{}", self.opcode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_table_is_in_discriminant_order() {
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(Opcode::from_index(i), *op);
        }
    }

    #[test]
    fn memory_classification_is_consistent() {
        for op in Opcode::ALL {
            if op.is_load() || op.is_store() {
                assert!(op.is_memory());
            } else {
                assert!(!op.is_memory());
            }
        }
    }

    #[test]
    fn control_flow_is_never_injectable() {
        for op in Opcode::ALL {
            assert_eq!(op.is_injectable(), !op.is_control_flow());
        }
    }

    #[test]
    fn reg_constructor_rejects_memory_opcodes() {
        let result = std::panic::catch_unwind(|| Instruction::reg(Opcode::Load));
        assert!(result.is_err());
    }

    #[test]
    fn mem_constructor_rejects_register_opcodes() {
        let result = std::panic::catch_unwind(|| Instruction::mem(Opcode::Add, 0, 4));
        assert!(result.is_err());
    }

    #[test]
    fn display_includes_stream_for_memory_ops() {
        let i = Instruction::mem(Opcode::Load, 3, 8);
        assert_eq!(format!("{i}"), "load [s3:8B]");
        let r = Instruction::reg(Opcode::Add);
        assert_eq!(format!("{r}"), "add");
    }

    #[test]
    fn as_injected_sets_flag() {
        let i = Instruction::reg(Opcode::Nop).as_injected();
        assert!(i.injected);
    }
}
