//! Flat, cache-friendly program IR and the batched executor built on it.
//!
//! [`FlatProgram::lower`] decodes a [`Program`] once into contiguous arrays
//! of fixed-width instruction records indexed by `u32` — no pointer chasing
//! through `Vec<BasicBlock>`/`Vec<Instruction>` per executed instruction —
//! and [`FlatProgram::run_batched`] walks it delivering whole body runs to a
//! [`BatchSink`] instead of one virtual call per committed instruction.
//!
//! The batched walk is **bit-identical** to the reference interpreter
//! ([`crate::exec::Executor::run_reference`]): same committed-event stream,
//! same [`ExecSummary`], same address-stream and control-RNG evolution. The
//! equivalence suites in `rhmd-features` pin this property across random
//! programs, limits, and fault plans.

use crate::address::AddressStream;
use crate::block::Terminator;
use crate::exec::{
    BranchKind, BranchOutcome, ExecEvent, ExecLimits, ExecSummary, MemAccess, Observer,
};
use crate::isa::{AddrPattern, Opcode, INSTR_BYTES};
use crate::program::{Program, SCRATCH_STREAM};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;

/// Stream field value meaning "no memory operand".
pub const NO_STREAM: u16 = u16::MAX;

/// Stream field value addressing the injected-instruction scratch stream.
const FLAT_SCRATCH: u16 = SCRATCH_STREAM as u16;

const FLAG_INJECTED: u8 = 1 << 0;
const FLAG_LOAD: u8 = 1 << 1;
const FLAG_STORE: u8 = 1 << 2;

/// One body instruction in the flat arena: 6 bytes, no indirection.
#[derive(Debug, Clone, Copy)]
pub struct FlatInstr {
    /// Dense opcode index (see [`Opcode::index`]).
    pub opcode: u8,
    /// Memory access size in bytes; 0 when the instruction has no operand.
    pub size: u8,
    /// Address-stream id, [`NO_STREAM`] when the instruction has no memory
    /// operand, 255 for the injected-instruction scratch stream.
    pub stream: u16,
    flags: u8,
}

impl FlatInstr {
    /// Whether the instruction has a memory operand.
    #[inline]
    pub fn has_mem(&self) -> bool {
        self.stream != NO_STREAM
    }

    /// Whether the instruction was spliced in by the evasion framework.
    #[inline]
    pub fn injected(&self) -> bool {
        self.flags & FLAG_INJECTED != 0
    }

    /// Whether the opcode reads memory.
    #[inline]
    pub fn is_load(&self) -> bool {
        self.flags & FLAG_LOAD != 0
    }

    /// Whether the opcode writes memory.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.flags & FLAG_STORE != 0
    }

    /// The decoded opcode.
    #[inline]
    pub fn opcode(&self) -> Opcode {
        Opcode::from_index(self.opcode as usize)
    }
}

/// A terminator with all control-flow targets pre-resolved to flat block
/// indices (calls resolve straight to the callee's entry block).
#[derive(Debug, Clone, Copy)]
pub enum FlatTerminator {
    /// Unconditional jump.
    Jump {
        /// Destination block index.
        target: u32,
    },
    /// Conditional branch.
    Branch {
        /// Destination block index when taken.
        taken: u32,
        /// Destination block index when not taken.
        fallthrough: u32,
        /// Long-run probability the branch is taken.
        taken_prob: f64,
        /// Probability the branch repeats its previous outcome.
        persistence: f64,
    },
    /// Call; `callee_entry` is the callee's entry block.
    Call {
        /// Entry block index of the callee.
        callee_entry: u32,
        /// Block executed after the callee returns.
        return_to: u32,
    },
    /// Return to the caller (end of trace when the stack is empty).
    Return,
    /// System call, then continue at `next`.
    Syscall {
        /// Block executed after the system call.
        next: u32,
    },
    /// Program exit.
    Exit,
}

impl FlatTerminator {
    /// The opcode class the terminator contributes to the dynamic stream.
    #[inline]
    fn opcode(&self) -> Opcode {
        match self {
            FlatTerminator::Jump { .. } => Opcode::Jmp,
            FlatTerminator::Branch { .. } => Opcode::Jcc,
            FlatTerminator::Call { .. } => Opcode::Call,
            FlatTerminator::Return => Opcode::Ret,
            FlatTerminator::Syscall { .. } => Opcode::Syscall,
            FlatTerminator::Exit => Opcode::Syscall,
        }
    }
}

/// One basic block in the flat arena.
#[derive(Debug, Clone, Copy)]
pub struct FlatBlock {
    /// Start of the body in the flat instruction arena.
    pub body_start: u32,
    /// Number of body instructions.
    pub body_len: u32,
    /// Virtual address of the first instruction.
    pub addr: u64,
    /// The block's terminator.
    pub term: FlatTerminator,
}

/// A [`Program`] lowered into contiguous arenas, decoded once and executable
/// any number of times.
#[derive(Debug, Clone)]
pub struct FlatProgram {
    seed: u64,
    scratch_delta: u32,
    entry: u32,
    blocks: Vec<FlatBlock>,
    instrs: Vec<FlatInstr>,
    streams: Vec<AddrPattern>,
    max_body: usize,
}

/// Consumer of the batched committed-instruction stream.
///
/// Where [`Observer`] sees one event per instruction, a `BatchSink` sees one
/// call per straight-line body run plus one per terminator — the contract
/// that lets the microarchitecture layer advance in strides.
pub trait BatchSink {
    /// A run of consecutive body instructions starting at `pc` (4 bytes
    /// apart). `addrs[i]` is the effective address of `instrs[i]` when
    /// `instrs[i].has_mem()`, unspecified otherwise.
    fn body_run(&mut self, pc: u64, instrs: &[FlatInstr], addrs: &[u64]);

    /// The block's committed terminator instruction, as a full event.
    fn terminator(&mut self, ev: &ExecEvent);
}

/// Reusable per-thread execution state: address streams, branch memory, the
/// call stack, and the resolved-address buffer. Reusing one across programs
/// keeps the batched hot path allocation-free.
#[derive(Debug, Default)]
pub struct ExecScratch {
    streams: Vec<AddressStream>,
    last_outcome: Vec<Option<bool>>,
    call_stack: Vec<u32>,
    addrs: Vec<u64>,
}

thread_local! {
    static SCRATCH: RefCell<ExecScratch> = RefCell::new(ExecScratch::default());
}

/// Runs `f` with this thread's shared [`ExecScratch`], falling back to a
/// fresh one under re-entrant execution (an observer that itself executes).
pub fn with_scratch<R>(f: impl FnOnce(&mut ExecScratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut ExecScratch::default()),
    })
}

/// Adapts a per-event [`Observer`] to the batched stream by synthesizing
/// the per-instruction [`ExecEvent`]s the reference interpreter would emit.
pub(crate) struct EventAdapter<'a, O: ?Sized>(pub &'a mut O);

impl<O: Observer + ?Sized> BatchSink for EventAdapter<'_, O> {
    #[inline]
    fn body_run(&mut self, pc: u64, instrs: &[FlatInstr], addrs: &[u64]) {
        for (i, ins) in instrs.iter().enumerate() {
            let ev = ExecEvent {
                pc: pc + i as u64 * INSTR_BYTES,
                opcode: ins.opcode(),
                mem: ins.has_mem().then(|| MemAccess {
                    addr: addrs[i],
                    size: ins.size,
                }),
                branch: None,
                injected: ins.injected(),
                syscall: false,
            };
            self.0.observe(&ev);
        }
    }

    #[inline]
    fn terminator(&mut self, ev: &ExecEvent) {
        self.0.observe(ev);
    }
}

impl FlatProgram {
    /// Lowers `program` into flat arenas. Call once per program; the result
    /// can be executed any number of times.
    pub fn lower(program: &Program) -> FlatProgram {
        let body_total = program.blocks.iter().map(|b| b.body.len()).sum();
        let mut instrs = Vec::with_capacity(body_total);
        let mut blocks = Vec::with_capacity(program.blocks.len());
        let mut max_body = 0usize;
        for block in &program.blocks {
            let body_start = instrs.len() as u32;
            for instr in &block.body {
                let (size, stream) = match instr.mem {
                    Some(m) => (m.size, u16::from(m.stream)),
                    None => (0, NO_STREAM),
                };
                let mut flags = 0u8;
                if instr.injected {
                    flags |= FLAG_INJECTED;
                }
                if instr.opcode.is_load() {
                    flags |= FLAG_LOAD;
                }
                if instr.opcode.is_store() {
                    flags |= FLAG_STORE;
                }
                instrs.push(FlatInstr {
                    opcode: instr.opcode.index() as u8,
                    size,
                    stream,
                    flags,
                });
            }
            max_body = max_body.max(block.body.len());
            let term = match block.terminator {
                Terminator::Jump { target } => FlatTerminator::Jump { target: target.0 },
                Terminator::Branch {
                    taken,
                    fallthrough,
                    taken_prob,
                    persistence,
                } => FlatTerminator::Branch {
                    taken: taken.0,
                    fallthrough: fallthrough.0,
                    taken_prob,
                    persistence,
                },
                Terminator::Call { callee, return_to } => FlatTerminator::Call {
                    callee_entry: program.function(callee).entry.0,
                    return_to: return_to.0,
                },
                Terminator::Return => FlatTerminator::Return,
                Terminator::Syscall { next } => FlatTerminator::Syscall { next: next.0 },
                Terminator::Exit => FlatTerminator::Exit,
            };
            blocks.push(FlatBlock {
                body_start,
                body_len: block.body.len() as u32,
                addr: block.addr,
                term,
            });
        }
        FlatProgram {
            seed: program.seed,
            scratch_delta: program.scratch_delta,
            entry: program.entry().0,
            blocks,
            instrs,
            streams: program.streams.clone(),
            max_body,
        }
    }

    /// Runs the lowered program to `limits`, delivering body runs and
    /// terminator events to `sink`.
    ///
    /// Bit-identical to [`crate::exec::Executor::run_reference`] with the
    /// events the per-event adapter would synthesize: identical summary,
    /// identical committed-event stream, identical RNG/stream evolution. The
    /// one structural difference is granularity — limits are applied per
    /// chunk (`min(body remaining, instruction budgets)`) rather than per
    /// instruction, which commits exactly the same event prefix because
    /// every chunk fits within both remaining budgets.
    pub fn run_batched<B: BatchSink + ?Sized>(
        &self,
        limits: ExecLimits,
        sink: &mut B,
        scratch: &mut ExecScratch,
    ) -> ExecSummary {
        let ExecScratch {
            streams,
            last_outcome,
            call_stack,
            addrs,
        } = scratch;
        streams.clear();
        streams.extend(
            self.streams
                .iter()
                .enumerate()
                .map(|(i, &p)| AddressStream::new(p, i as u64)),
        );
        let mut scratch_stream = AddressStream::scratch(self.scratch_delta);
        // Control RNG: consumed ONLY by original terminators so injection
        // cannot shift branch outcomes.
        let mut ctl_rng = SmallRng::seed_from_u64(self.seed ^ 0xc0ff_ee00_dead_beef);
        last_outcome.clear();
        last_outcome.resize(self.blocks.len(), None);
        call_stack.clear();
        if addrs.len() < self.max_body {
            addrs.resize(self.max_body, 0);
        }

        let mut summary = ExecSummary::default();
        let mut current = self.entry;
        'outer: loop {
            summary.blocks += 1;
            let block = &self.blocks[current as usize];
            let body = &self.instrs
                [block.body_start as usize..(block.body_start + block.body_len) as usize];

            let mut done = 0usize;
            while done < body.len() {
                if summary.instructions >= limits.max_instructions
                    || summary.original_instructions >= limits.max_original_instructions
                {
                    break 'outer;
                }
                let rem = (limits.max_instructions - summary.instructions)
                    .min(limits.max_original_instructions - summary.original_instructions)
                    .min((body.len() - done) as u64) as usize;
                let run = &body[done..done + rem];
                let pc = block.addr + done as u64 * INSTR_BYTES;
                for (i, ins) in run.iter().enumerate() {
                    let mut addr = 0u64;
                    if ins.has_mem() {
                        addr = if ins.stream == FLAT_SCRATCH {
                            scratch_stream.next_addr()
                        } else {
                            streams[ins.stream as usize].next_addr()
                        };
                        addrs[i] = addr;
                    }
                    if !ins.injected() {
                        summary.original_instructions += 1;
                        summary.mix(ins.opcode as u64 + 1);
                        if ins.has_mem() {
                            summary.mix(addr);
                        }
                    }
                }
                summary.instructions += rem as u64;
                sink.body_run(pc, run, &addrs[..rem]);
                done += rem;
            }
            if summary.instructions >= limits.max_instructions
                || summary.original_instructions >= limits.max_original_instructions
            {
                break;
            }

            let term_pc = block.addr + u64::from(block.body_len) * INSTR_BYTES;
            let (next, outcome, is_syscall) = match block.term {
                FlatTerminator::Jump { target } => (
                    Some(target),
                    Some(BranchOutcome {
                        kind: BranchKind::Jump,
                        taken: true,
                        target: self.blocks[target as usize].addr,
                    }),
                    false,
                ),
                FlatTerminator::Branch {
                    taken,
                    fallthrough,
                    taken_prob,
                    persistence,
                } => {
                    let slot = &mut last_outcome[current as usize];
                    let outcome_taken = match *slot {
                        Some(prev) if ctl_rng.gen::<f64>() < persistence => prev,
                        _ => ctl_rng.gen::<f64>() < taken_prob,
                    };
                    *slot = Some(outcome_taken);
                    let dest = if outcome_taken { taken } else { fallthrough };
                    (
                        Some(dest),
                        Some(BranchOutcome {
                            kind: BranchKind::Conditional,
                            taken: outcome_taken,
                            target: self.blocks[dest as usize].addr,
                        }),
                        false,
                    )
                }
                FlatTerminator::Call {
                    callee_entry,
                    return_to,
                } => {
                    if call_stack.len() >= limits.max_call_depth {
                        // Recursion guard: treat as a jump over the call.
                        (
                            Some(return_to),
                            Some(BranchOutcome {
                                kind: BranchKind::Jump,
                                taken: true,
                                target: self.blocks[return_to as usize].addr,
                            }),
                            false,
                        )
                    } else {
                        call_stack.push(return_to);
                        (
                            Some(callee_entry),
                            Some(BranchOutcome {
                                kind: BranchKind::Call,
                                taken: true,
                                target: self.blocks[callee_entry as usize].addr,
                            }),
                            false,
                        )
                    }
                }
                FlatTerminator::Return => match call_stack.pop() {
                    Some(ret) => (
                        Some(ret),
                        Some(BranchOutcome {
                            kind: BranchKind::Return,
                            taken: true,
                            target: self.blocks[ret as usize].addr,
                        }),
                        false,
                    ),
                    None => (None, None, false),
                },
                FlatTerminator::Syscall { next } => (
                    Some(next),
                    Some(BranchOutcome {
                        kind: BranchKind::Jump,
                        taken: true,
                        target: self.blocks[next as usize].addr,
                    }),
                    true,
                ),
                FlatTerminator::Exit => (None, None, true),
            };

            let ev = ExecEvent {
                pc: term_pc,
                opcode: block.term.opcode(),
                mem: None,
                branch: outcome,
                injected: false,
                syscall: is_syscall,
            };
            summary.instructions += 1;
            summary.original_instructions += 1;
            summary.mix(ev.opcode.index() as u64 + 1);
            if let Some(b) = outcome {
                summary.mix(if b.taken { 0x5555 } else { 0xaaaa });
            }
            sink.terminator(&ev);
            if is_syscall {
                summary.syscalls += 1;
                if summary.syscalls >= limits.max_syscalls {
                    break;
                }
            }
            match next {
                Some(n) => current = n,
                None => break,
            }
        }
        summary
    }

    /// Runs the lowered program, feeding a per-event [`Observer`] the exact
    /// event stream the reference interpreter would emit.
    pub fn run_observed<O: Observer + ?Sized>(
        &self,
        limits: ExecLimits,
        observer: &mut O,
        scratch: &mut ExecScratch,
    ) -> ExecSummary {
        self.run_batched(limits, &mut EventAdapter(observer), scratch)
    }

    /// Total body instructions in the arena.
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CountingSink, Executor};
    use crate::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                          ProgramGenerator};

    fn events_of(run: impl FnOnce(&mut dyn Observer) -> ExecSummary) -> (Vec<ExecEvent>, ExecSummary) {
        let mut events = Vec::new();
        let mut rec = |e: &ExecEvent| events.push(*e);
        let summary = run(&mut rec);
        (events, summary)
    }

    /// The batched walk reproduces the reference interpreter bit-for-bit:
    /// same events, same summary, across classes and limit shapes.
    #[test]
    fn batched_matches_reference_bit_for_bit() {
        for (class, limits) in [
            (0usize, ExecLimits::instructions(10_000)),
            (1, ExecLimits::instructions(3_333)),
            (2, ExecLimits::default()),
            (3, ExecLimits::original_instructions(5_000)),
            (
                4,
                ExecLimits {
                    max_instructions: 50_000,
                    max_original_instructions: u64::MAX,
                    max_syscalls: 7,
                    max_call_depth: 2,
                },
            ),
        ] {
            let profile = if class % 2 == 0 {
                malware_profile(MalwareFamily::ALL[class % MalwareFamily::ALL.len()])
            } else {
                benign_profile(BenignClass::ALL[class % BenignClass::ALL.len()])
            };
            let p = ProgramGenerator::new(profile).generate(class as u64 + 17);
            let flat = FlatProgram::lower(&p);

            let (ref_events, ref_summary) =
                events_of(|o| Executor::new(&p, limits).run_reference(o));
            let (flat_events, flat_summary) = events_of(|o| {
                let mut scratch = ExecScratch::default();
                flat.run_observed(limits, o, &mut scratch)
            });
            assert_eq!(ref_summary, flat_summary, "class {class}");
            assert_eq!(ref_events, flat_events, "class {class}");
        }
    }

    /// Scratch reuse across different programs never leaks state.
    #[test]
    fn scratch_reuse_is_state_free() {
        let limits = ExecLimits::instructions(5_000);
        let pa = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(1);
        let pb = ProgramGenerator::new(malware_profile(MalwareFamily::Spambot)).generate(2);
        let mut scratch = ExecScratch::default();
        let fa = FlatProgram::lower(&pa);
        let fb = FlatProgram::lower(&pb);
        let mut sink = CountingSink::default();
        let a1 = fa.run_observed(limits, &mut sink, &mut scratch);
        let b1 = fb.run_observed(limits, &mut sink, &mut scratch);
        let a2 = fa.run_observed(limits, &mut sink, &mut scratch);
        let b2 = fb.run_observed(limits, &mut sink, &mut scratch);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_ne!(a1.original_fingerprint, b1.original_fingerprint);
    }
}
