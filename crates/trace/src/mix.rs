//! Class-conditional opcode mixtures.
//!
//! Every program class (malware family or benign application class) owns a
//! base profile over the 32 opcode classes. Each generated program perturbs
//! the base profile with a Dirichlet draw, so programs of one class cluster
//! in instruction-mix space while retaining within-class variance — the
//! regime in which the paper's baseline detectors reach high-but-imperfect
//! accuracy (Fig 2).

use crate::isa::{Opcode, OPCODE_COUNT};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A probability distribution over opcode classes.
///
/// # Examples
///
/// ```
/// use rhmd_trace::mix::OpcodeMix;
/// use rhmd_trace::isa::Opcode;
///
/// let mix = OpcodeMix::uniform();
/// let p: f64 = Opcode::ALL.iter().map(|&op| mix.prob(op)).sum();
/// assert!((p - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpcodeMix {
    probs: [f64; OPCODE_COUNT],
    /// Cumulative distribution for fast sampling.
    cdf: [f64; OPCODE_COUNT],
}

impl OpcodeMix {
    /// Builds a mix from raw non-negative weights, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite, or if all weights are
    /// zero.
    pub fn from_weights(weights: &[f64; OPCODE_COUNT]) -> OpcodeMix {
        let mut probs = [0.0; OPCODE_COUNT];
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative");
            total += w;
        }
        assert!(total > 0.0, "at least one weight must be positive");
        for (p, &w) in probs.iter_mut().zip(weights) {
            *p = w / total;
        }
        let mut cdf = [0.0; OPCODE_COUNT];
        let mut acc = 0.0;
        for (c, &p) in cdf.iter_mut().zip(&probs) {
            acc += p;
            *c = acc;
        }
        cdf[OPCODE_COUNT - 1] = 1.0;
        OpcodeMix { probs, cdf }
    }

    /// The uniform mixture.
    pub fn uniform() -> OpcodeMix {
        OpcodeMix::from_weights(&[1.0; OPCODE_COUNT])
    }

    /// Probability of `opcode` under this mixture.
    #[inline]
    pub fn prob(&self, opcode: Opcode) -> f64 {
        self.probs[opcode.index()]
    }

    /// The full probability vector, indexed by [`Opcode::index`].
    pub fn probs(&self) -> &[f64; OPCODE_COUNT] {
        &self.probs
    }

    /// Samples an opcode.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Opcode {
        let u: f64 = rng.gen();
        // Binary search over the CDF.
        let idx = self.cdf.partition_point(|&c| c < u).min(OPCODE_COUNT - 1);
        Opcode::from_index(idx)
    }

    /// Draws a per-program mixture from `Dirichlet(concentration * base)`.
    ///
    /// Larger `concentration` values keep programs closer to the class base
    /// profile (less within-class variance).
    ///
    /// # Panics
    ///
    /// Panics if `concentration` is not positive.
    pub fn perturb<R: Rng + ?Sized>(&self, concentration: f64, rng: &mut R) -> OpcodeMix {
        assert!(concentration > 0.0, "concentration must be positive");
        let mut weights = [0.0; OPCODE_COUNT];
        for (w, &p) in weights.iter_mut().zip(&self.probs) {
            // Avoid zero-alpha gamma draws: give every opcode a small floor
            // so no class is strictly impossible in any program.
            let alpha = (p * concentration).max(1e-3);
            *w = sample_gamma(alpha, rng);
        }
        OpcodeMix::from_weights(&weights)
    }

    /// L1 distance between two mixtures (total-variation distance × 2).
    pub fn l1_distance(&self, other: &OpcodeMix) -> f64 {
        self.probs
            .iter()
            .zip(&other.probs)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

impl Default for OpcodeMix {
    fn default() -> OpcodeMix {
        OpcodeMix::uniform()
    }
}

/// Samples from `Gamma(alpha, 1)` using Marsaglia–Tsang, with the boost trick
/// for `alpha < 1`.
///
/// Implemented locally because the approved dependency set includes `rand`
/// but not `rand_distr`.
pub fn sample_gamma<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> f64 {
    assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
    if alpha < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn from_weights_normalizes() {
        let mut w = [0.0; OPCODE_COUNT];
        w[0] = 3.0;
        w[1] = 1.0;
        let m = OpcodeMix::from_weights(&w);
        assert!((m.prob(Opcode::Mov) - 0.75).abs() < 1e-12);
        assert!((m.prob(Opcode::Load) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sample_respects_support() {
        let mut w = [0.0; OPCODE_COUNT];
        w[Opcode::Xor.index()] = 1.0;
        let m = OpcodeMix::from_weights(&w);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), Opcode::Xor);
        }
    }

    #[test]
    fn sample_matches_probabilities_approximately() {
        let mut w = [0.0; OPCODE_COUNT];
        w[Opcode::Add.index()] = 0.7;
        w[Opcode::Load.index()] = 0.3;
        let m = OpcodeMix::from_weights(&w);
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let adds = (0..n).filter(|_| m.sample(&mut rng) == Opcode::Add).count();
        let frac = adds as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn gamma_mean_is_alpha() {
        let mut rng = SmallRng::seed_from_u64(7);
        for &alpha in &[0.3, 1.0, 4.5] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(alpha, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - alpha).abs() < 0.1 * alpha.max(1.0),
                "alpha {alpha}: mean {mean}"
            );
        }
    }

    #[test]
    fn perturb_preserves_rough_shape() {
        let mut w = [1.0; OPCODE_COUNT];
        w[Opcode::Xor.index()] = 30.0;
        let base = OpcodeMix::from_weights(&w);
        let mut rng = SmallRng::seed_from_u64(3);
        let p = base.perturb(500.0, &mut rng);
        // High concentration: xor remains dominant.
        assert!(p.prob(Opcode::Xor) > 0.2, "xor prob {}", p.prob(Opcode::Xor));
    }

    #[test]
    fn perturb_adds_variance() {
        let base = OpcodeMix::uniform();
        let mut rng = SmallRng::seed_from_u64(9);
        let a = base.perturb(10.0, &mut rng);
        let b = base.perturb(10.0, &mut rng);
        assert!(a.l1_distance(&b) > 1e-3);
    }

    #[test]
    fn l1_distance_is_zero_for_identical() {
        let m = OpcodeMix::uniform();
        assert_eq!(m.l1_distance(&m.clone()), 0.0);
    }
}
