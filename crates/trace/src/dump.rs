//! Human-readable program listings — an objdump-style view of the synthetic
//! binaries, for debugging generators and inspecting what injection did to a
//! program.

use crate::block::Terminator;
use crate::isa::INSTR_BYTES;
use crate::program::Program;
use std::fmt::Write as _;

/// Renders an assembly-like listing of `program`.
///
/// Injected instructions are marked with `*` so a rewritten binary can be
/// diffed against its original at a glance.
///
/// # Examples
///
/// ```
/// use rhmd_trace::dump::listing;
/// use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};
///
/// let p = ProgramGenerator::new(benign_profile(BenignClass::TextEditor)).generate(0);
/// let text = listing(&p, Some(1));
/// assert!(text.contains("fn0:"));
/// assert!(text.contains("bb0:"));
/// ```
pub fn listing(program: &Program, max_functions: Option<usize>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; {} — {:?}, {} functions, {} blocks, {} bytes text, {} streams",
        program.name,
        program.class,
        program.functions.len(),
        program.blocks.len(),
        program.text_bytes(),
        program.streams.len(),
    );
    let limit = max_functions.unwrap_or(program.functions.len());
    for (f, function) in program.functions.iter().enumerate().take(limit) {
        let _ = writeln!(out, "fn{f}:");
        for &bid in &function.blocks {
            let block = program.block(bid);
            let _ = writeln!(out, "  bb{}:  ; {:#010x}", bid.0, block.addr);
            for (i, instr) in block.body.iter().enumerate() {
                let pc = block.addr + i as u64 * INSTR_BYTES;
                let marker = if instr.injected { '*' } else { ' ' };
                let _ = writeln!(out, "   {marker}{pc:#010x}  {instr}");
            }
            let term = match block.terminator {
                Terminator::Jump { target } => format!("jmp bb{}", target.0),
                Terminator::Branch {
                    taken,
                    fallthrough,
                    taken_prob,
                    ..
                } => format!(
                    "jcc bb{} (p={taken_prob:.2}) else bb{}",
                    taken.0, fallthrough.0
                ),
                Terminator::Call { callee, return_to } => {
                    format!("call fn{} ; ret to bb{}", callee.0, return_to.0)
                }
                Terminator::Return => "ret".to_owned(),
                Terminator::Syscall { next } => format!("int 0x80 ; then bb{}", next.0),
                Terminator::Exit => "hlt".to_owned(),
            };
            let _ = writeln!(out, "    {:#010x}  {term}", block.terminator_pc());
        }
    }
    if limit < program.functions.len() {
        let _ = writeln!(
            out,
            "; ... {} more functions elided",
            program.functions.len() - limit
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{malware_profile, MalwareFamily, ProgramGenerator};
    use crate::inject::{apply, InjectionPlan, Placement};
    use crate::isa::Opcode;

    fn sample() -> Program {
        ProgramGenerator::new(malware_profile(MalwareFamily::Dropper)).generate(1)
    }

    #[test]
    fn listing_covers_every_block_when_unbounded() {
        let p = sample();
        let text = listing(&p, None);
        for bid in 0..p.blocks.len() {
            assert!(text.contains(&format!("bb{bid}:")), "bb{bid} missing");
        }
        assert!(!text.contains("elided"));
    }

    #[test]
    fn listing_elides_beyond_limit() {
        let p = sample();
        let text = listing(&p, Some(1));
        assert!(text.contains("more functions elided"));
        assert!(text.contains("fn0:"));
        assert!(!text.contains("fn1:"));
    }

    #[test]
    fn injected_instructions_are_marked() {
        let p = sample();
        let clean = listing(&p, None);
        assert!(!clean.contains("*0x"), "clean binary must have no markers");
        let plan = InjectionPlan::new(vec![Opcode::Fpu], Placement::EveryBlock);
        let (modified, _) = apply(&p, &plan);
        let dirty = listing(&modified, None);
        assert!(dirty.contains("*0x"), "injected marker missing");
        assert_eq!(
            dirty.matches("*0x").count() as u64,
            modified.injected_instruction_count()
        );
    }

    #[test]
    fn header_summarizes_program() {
        let p = sample();
        let text = listing(&p, Some(0));
        assert!(text.starts_with(&format!("; {}", p.name)));
        assert!(text.contains("bytes text"));
    }
}
