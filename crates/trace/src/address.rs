//! Address-stream generators for memory operands.
//!
//! The paper's Memory feature is a histogram of address *deltas* between
//! consecutive memory references. A program's memory personality is therefore
//! modelled as a set of address streams, each evolving by one of the
//! [`AddrPattern`]s; the mixture of patterns is class-conditional and is what
//! separates (or fails to separate) malware from benign programs in the
//! Memory-feature space.

use crate::isa::AddrPattern;
use serde::{Deserialize, Serialize};

/// Base virtual address of the simulated heap region.
pub const HEAP_BASE: u64 = 0x1000_0000;
/// Base virtual address of the simulated stack region.
pub const STACK_BASE: u64 = 0x7fff_0000;
/// Size of the region a random/pointer-chase stream wanders within.
pub const REGION_BYTES: u64 = 1 << 22; // 4 MiB
/// Size of a hot stack frame for `StackLocal` streams.
pub const FRAME_BYTES: u64 = 512;
/// Base address of the scratch region used by injected instructions.
///
/// Keeping injected traffic in its own region guarantees injection cannot
/// perturb the original program's address streams (semantic preservation),
/// while still flowing through the cache model and the Memory feature.
pub const SCRATCH_BASE: u64 = 0x5000_0000;

/// Deterministic per-stream state that yields the next effective address.
///
/// # Examples
///
/// ```
/// use rhmd_trace::address::AddressStream;
/// use rhmd_trace::isa::AddrPattern;
///
/// let mut s = AddressStream::new(AddrPattern::Strided { stride: 64 }, 7);
/// let a = s.next_addr();
/// let b = s.next_addr();
/// assert_eq!(b - a, 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressStream {
    pattern: AddrPattern,
    /// Current position of the stream.
    cursor: u64,
    /// Region base for wrap-around.
    base: u64,
    /// Cheap xorshift state for Random / PointerChase evolution.
    rng_state: u64,
}

impl AddressStream {
    /// Creates a stream following `pattern`, seeded so distinct streams of
    /// the same pattern do not alias.
    pub fn new(pattern: AddrPattern, stream_id: u64) -> AddressStream {
        let base = match pattern {
            AddrPattern::StackLocal => STACK_BASE - stream_id * FRAME_BYTES * 4,
            _ => HEAP_BASE + stream_id * REGION_BYTES,
        };
        AddressStream {
            pattern,
            cursor: base,
            base,
            rng_state: 0x9e37_79b9_7f4a_7c15 ^ (stream_id.wrapping_mul(0xa076_1d64_78bd_642f) | 1),
        }
    }

    /// Creates the dedicated scratch stream used by injected instructions.
    ///
    /// `delta` is the fixed stride between consecutive injected accesses,
    /// letting the evasion framework steer the Memory-feature histogram
    /// ("insertion of load and store instructions with controlled distances",
    /// paper §5).
    pub fn scratch(delta: u32) -> AddressStream {
        AddressStream {
            pattern: AddrPattern::Strided { stride: delta },
            cursor: SCRATCH_BASE,
            base: SCRATCH_BASE,
            rng_state: 1,
        }
    }

    /// The pattern this stream follows.
    pub fn pattern(&self) -> AddrPattern {
        self.pattern
    }

    #[inline]
    fn xorshift(&mut self) -> u64 {
        // xorshift64*: fast, deterministic, adequate for address jitter.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Produces the next effective address of this stream.
    #[inline]
    pub fn next_addr(&mut self) -> u64 {
        match self.pattern {
            AddrPattern::Strided { stride } => {
                let addr = self.cursor;
                self.cursor = self.cursor.wrapping_add(u64::from(stride));
                if self.cursor >= self.base + REGION_BYTES {
                    self.cursor = self.base;
                }
                addr
            }
            AddrPattern::Random => self.base + (self.xorshift() % REGION_BYTES),
            AddrPattern::PointerChase => {
                // Next pointer is a hash of the current one: long dependent
                // chains with poor locality, like linked-list traversal.
                let next = self.base + (self.cursor.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 20) % REGION_BYTES;
                self.cursor = next ^ (self.xorshift() & 0xfff);
                self.base + (self.cursor % REGION_BYTES)
            }
            AddrPattern::StackLocal => {
                // Small offsets within one hot frame.
                self.base - (self.xorshift() % FRAME_BYTES)
            }
        }
    }
}

/// Mixture weights over the four address patterns, characterizing a program
/// class's memory personality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternMix {
    /// Weight of strided streams.
    pub strided: f64,
    /// Weight of uniform-random streams.
    pub random: f64,
    /// Weight of pointer-chasing streams.
    pub pointer_chase: f64,
    /// Weight of stack-local streams.
    pub stack: f64,
}

impl PatternMix {
    /// Creates a mixture, normalizing the weights to sum to one.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or all weights are zero.
    pub fn new(strided: f64, random: f64, pointer_chase: f64, stack: f64) -> PatternMix {
        assert!(
            strided >= 0.0 && random >= 0.0 && pointer_chase >= 0.0 && stack >= 0.0,
            "pattern weights must be non-negative"
        );
        let total = strided + random + pointer_chase + stack;
        assert!(total > 0.0, "at least one pattern weight must be positive");
        PatternMix {
            strided: strided / total,
            random: random / total,
            pointer_chase: pointer_chase / total,
            stack: stack / total,
        }
    }

    /// Samples a pattern given a uniform draw `u` in `[0, 1)`.
    pub fn sample(&self, u: f64, stride_hint: u32) -> AddrPattern {
        let mut acc = self.strided;
        if u < acc {
            return AddrPattern::Strided {
                stride: stride_hint,
            };
        }
        acc += self.random;
        if u < acc {
            return AddrPattern::Random;
        }
        acc += self.pointer_chase;
        if u < acc {
            return AddrPattern::PointerChase;
        }
        AddrPattern::StackLocal
    }
}

impl Default for PatternMix {
    /// A balanced mixture.
    fn default() -> PatternMix {
        PatternMix::new(0.25, 0.25, 0.25, 0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_stream_advances_by_stride() {
        let mut s = AddressStream::new(AddrPattern::Strided { stride: 16 }, 0);
        let a = s.next_addr();
        assert_eq!(s.next_addr(), a + 16);
        assert_eq!(s.next_addr(), a + 32);
    }

    #[test]
    fn strided_stream_wraps_within_region() {
        let mut s = AddressStream::new(AddrPattern::Strided { stride: 1 << 20 }, 0);
        for _ in 0..100 {
            let a = s.next_addr();
            assert!((HEAP_BASE..HEAP_BASE + REGION_BYTES).contains(&a));
        }
    }

    #[test]
    fn random_stream_stays_in_region() {
        let mut s = AddressStream::new(AddrPattern::Random, 2);
        let base = HEAP_BASE + 2 * REGION_BYTES;
        for _ in 0..1000 {
            let a = s.next_addr();
            assert!(a >= base && a < base + REGION_BYTES, "addr {a:x} out of region");
        }
    }

    #[test]
    fn stack_stream_stays_in_frame() {
        let mut s = AddressStream::new(AddrPattern::StackLocal, 1);
        for _ in 0..1000 {
            let a = s.next_addr();
            assert!(STACK_BASE - a <= FRAME_BYTES * 4 + FRAME_BYTES);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = AddressStream::new(AddrPattern::PointerChase, 5);
        let mut b = AddressStream::new(AddrPattern::PointerChase, 5);
        for _ in 0..100 {
            assert_eq!(a.next_addr(), b.next_addr());
        }
    }

    #[test]
    fn distinct_streams_do_not_collide() {
        let mut a = AddressStream::new(AddrPattern::Random, 0);
        let mut b = AddressStream::new(AddrPattern::Random, 1);
        // Regions are disjoint, so no address can coincide.
        for _ in 0..100 {
            assert_ne!(a.next_addr(), b.next_addr());
        }
    }

    #[test]
    fn scratch_stream_has_controlled_delta() {
        let mut s = AddressStream::scratch(128);
        let a = s.next_addr();
        assert_eq!(s.next_addr() - a, 128);
        assert!(a >= SCRATCH_BASE);
    }

    #[test]
    fn pattern_mix_normalizes() {
        let m = PatternMix::new(2.0, 2.0, 0.0, 0.0);
        assert!((m.strided - 0.5).abs() < 1e-12);
        assert!((m.random - 0.5).abs() < 1e-12);
        assert_eq!(m.sample(0.1, 64), AddrPattern::Strided { stride: 64 });
        assert_eq!(m.sample(0.9, 64), AddrPattern::Random);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn pattern_mix_rejects_negative() {
        let _ = PatternMix::new(-1.0, 1.0, 1.0, 1.0);
    }
}
