//! Deterministic seed derivation for parallel evaluation.
//!
//! Every randomized stage of the pipeline (fault models, RHMD switching,
//! evasion planning) must produce the same stream for a given program no
//! matter which worker thread evaluates it or in which order programs are
//! visited. The rule: never share RNG state across programs — derive one
//! seed per `(run seed, stream id)` pair with a strong mixer and build a
//! fresh generator from it.
//!
//! The mixer is `splitmix64` (Steele, Lea & Flood, "Fast Splittable
//! Pseudorandom Number Generators", OOPSLA 2014) — a bijective finalizer
//! whose output passes PractRand/BigCrush, so adjacent program ids map to
//! statistically independent seeds.
//!
//! # Examples
//!
//! ```
//! use rhmd_trace::seed::derive_seed;
//!
//! let run = 0xfa17;
//! // Per-program seeds are order-free: evaluating program 7 first or last
//! // yields the same seed, which is what makes parallel evaluation
//! // bit-exact with the serial path.
//! assert_eq!(derive_seed(run, 7), derive_seed(run, 7));
//! assert_ne!(derive_seed(run, 7), derive_seed(run, 8));
//! ```

/// The splitmix64 finalizer: a bijective 64-bit mixer.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives the seed for stream `stream_id` of a run seeded with `run_seed`.
///
/// The two inputs pass through separate mixing rounds (not a plain XOR), so
/// `(run, id)` and `(run ^ k, id ^ k)` do not collide and low-entropy
/// program indices still spread over the whole 64-bit space.
#[inline]
#[must_use]
pub fn derive_seed(run_seed: u64, stream_id: u64) -> u64 {
    splitmix64(splitmix64(run_seed).wrapping_add(stream_id))
}

/// Folds another component into an already-derived seed (e.g. a sweep-point
/// index on top of a per-program seed).
#[inline]
#[must_use]
pub fn mix_seed(seed: u64, component: u64) -> u64 {
    splitmix64(seed.wrapping_add(splitmix64(component)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_bijective_on_samples() {
        // A bijection cannot collide; spot-check a dense low range where a
        // weak mixer would.
        let mut seen: Vec<u64> = (0..10_000).map(splitmix64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn derive_is_stable_and_spreads() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        // Related (run, id) pairs must not collide the way `run ^ id` does:
        // 1^3 == 2^0 under XOR folding.
        assert_ne!(derive_seed(1, 3), derive_seed(2, 0));
        // Adjacent ids land far apart.
        let a = derive_seed(0, 0);
        let b = derive_seed(0, 1);
        assert!((a ^ b).count_ones() > 16, "weak diffusion: {a:x} vs {b:x}");
    }

    #[test]
    fn mix_adds_a_distinct_dimension() {
        let base = derive_seed(7, 42);
        assert_ne!(mix_seed(base, 0), mix_seed(base, 1));
        assert_ne!(mix_seed(base, 1), derive_seed(7, 43));
    }

    #[test]
    fn zero_inputs_are_not_fixed_points() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(derive_seed(0, 0), 0);
    }
}
