//! Deterministic execution of synthetic programs.
//!
//! The executor walks the program's dynamic control-flow graph and emits one
//! [`ExecEvent`] per committed instruction — the role Pin plays in the paper.
//! Two properties matter for the evasion experiments:
//!
//! 1. **Determinism** — all stochastic choices (branch outcomes, address
//!    jitter) are driven by per-program seeded state, so re-executing a
//!    program reproduces the identical stream.
//! 2. **Injection transparency** — injected instructions never consume from
//!    the control RNG or the original address streams, so a rewritten
//!    program executes the *same original instruction sequence* with payload
//!    instructions interleaved. [`ExecSummary::original_fingerprint`] lets
//!    tests verify this.

use crate::block::{BlockId, Terminator};
use crate::isa::Opcode;
use crate::program::{Program, SCRATCH_STREAM};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A dynamic memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective virtual address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
}

impl MemAccess {
    /// Whether the access is unaligned with respect to its size.
    #[inline]
    pub fn is_unaligned(&self) -> bool {
        self.size > 1 && !self.addr.is_multiple_of(u64::from(self.size))
    }
}

/// Classification of a control-transfer event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Conditional branch.
    Conditional,
    /// Unconditional direct jump.
    Jump,
    /// Function call.
    Call,
    /// Function return.
    Return,
}

/// Dynamic outcome of a control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Kind of control transfer.
    pub kind: BranchKind,
    /// Whether the transfer was taken (always true except for untaken
    /// conditional branches).
    pub taken: bool,
    /// Destination program counter actually followed.
    pub target: u64,
}

/// One committed instruction, as observed by the hardware layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecEvent {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Opcode class.
    pub opcode: Opcode,
    /// Memory access, if the instruction touches memory. Opcodes that both
    /// load and store (see [`Opcode::is_load`]/[`Opcode::is_store`]) perform
    /// both against this address.
    pub mem: Option<MemAccess>,
    /// Control-transfer outcome, for terminator instructions.
    pub branch: Option<BranchOutcome>,
    /// Whether the instruction was spliced in by the evasion framework.
    pub injected: bool,
    /// Whether this instruction is a system call.
    pub syscall: bool,
}

/// Consumer of the committed-instruction stream, in the executor/observer
/// decomposition fuzzing engines use: the [`Executor`] owns *how* the
/// program runs, observers own *what is recorded*.
///
/// Implemented by the microarchitecture model, the feature extractors,
/// counting probes, and any `FnMut(&ExecEvent)` closure. Observers attached
/// to one [`Executor::run_observed`] call see the identical event stream,
/// in list order — byte-for-byte the stream a lone observer would see.
///
/// This is the single event-consumer trait; the `Sink`-era shims (`Tee`,
/// the `Sink` trait and its blanket impl) were removed once every call site
/// migrated (see DESIGN.md).
pub trait Observer {
    /// Observes one committed instruction.
    fn observe(&mut self, ev: &ExecEvent);
}

impl<F: FnMut(&ExecEvent)> Observer for F {
    fn observe(&mut self, ev: &ExecEvent) {
        self(ev)
    }
}

/// Fans one committed-instruction stream out to a list of observers.
struct FanOut<'a, 'o>(&'a mut [&'o mut dyn Observer]);

impl Observer for FanOut<'_, '_> {
    fn observe(&mut self, ev: &ExecEvent) {
        for obs in self.0.iter_mut() {
            obs.observe(ev);
        }
    }
}

/// Stop conditions for a trace, mirroring the paper's collection bound of
/// 5,000 system calls or 15M committed instructions (scaled down by default
/// for tractability; see `DatasetConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum committed instructions (including injected ones).
    pub max_instructions: u64,
    /// Maximum committed *original* (non-injected) instructions. Lets
    /// rewritten programs run to the same amount of original work as their
    /// base program, which is how semantic preservation is checked.
    pub max_original_instructions: u64,
    /// Maximum system calls.
    pub max_syscalls: u64,
    /// Maximum call depth before further calls are skipped (recursion guard;
    /// generated call graphs are DAGs so this is a safety net).
    pub max_call_depth: usize,
}

impl ExecLimits {
    /// Limits bounded only by instruction count.
    pub fn instructions(max_instructions: u64) -> ExecLimits {
        ExecLimits {
            max_instructions,
            ..ExecLimits::default()
        }
    }

    /// Limits bounded by *original* instruction count only: a rewritten
    /// program runs until it has performed `max_original` units of its
    /// original work, however much payload was injected.
    pub fn original_instructions(max_original: u64) -> ExecLimits {
        ExecLimits {
            max_instructions: u64::MAX,
            max_original_instructions: max_original,
            max_syscalls: u64::MAX,
            max_call_depth: 128,
        }
    }
}

impl Default for ExecLimits {
    /// 200K instructions / 400 syscalls: the paper's 15M / 5,000 budget
    /// scaled by 75× so full experiments fit in CI.
    fn default() -> ExecLimits {
        ExecLimits {
            max_instructions: 200_000,
            max_original_instructions: u64::MAX,
            max_syscalls: 400,
            max_call_depth: 128,
        }
    }
}

/// Statistics of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecSummary {
    /// Total committed instructions (original + injected).
    pub instructions: u64,
    /// Committed instructions belonging to the original program.
    pub original_instructions: u64,
    /// System calls performed.
    pub syscalls: u64,
    /// Basic blocks entered.
    pub blocks: u64,
    /// Order-sensitive hash over the original (non-injected) instruction
    /// stream: opcode, memory address, branch outcome. Injection must not
    /// change it.
    pub original_fingerprint: u64,
}

impl ExecSummary {
    /// Dynamic overhead introduced by injection: extra executed instructions
    /// relative to the original stream (0.0 when nothing was injected).
    pub fn dynamic_overhead(&self) -> f64 {
        if self.original_instructions == 0 {
            0.0
        } else {
            (self.instructions - self.original_instructions) as f64
                / self.original_instructions as f64
        }
    }

    #[inline]
    pub(crate) fn mix(&mut self, value: u64) {
        // FNV-style order-sensitive accumulation.
        self.original_fingerprint ^= value;
        self.original_fingerprint = self.original_fingerprint.wrapping_mul(0x100_0000_01b3);
    }
}

/// Walks a program's DCFG, emitting committed instructions to an observer.
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    limits: ExecLimits,
}

impl<'p> Executor<'p> {
    /// Creates an executor for `program` with the given limits.
    pub fn new(program: &'p Program, limits: ExecLimits) -> Executor<'p> {
        Executor { program, limits }
    }

    /// Runs the program to its limits, feeding `observer`.
    ///
    /// Deterministic: identical `(program, limits)` produce identical event
    /// streams and summaries.
    ///
    /// Internally this lowers the program to the flat IR
    /// ([`crate::flat::FlatProgram`]) and drives the batched walk, which is
    /// bit-identical to [`Executor::run_reference`] — the equivalence tests
    /// in `flat.rs` and the features crate pin that. Callers executing one
    /// program many times should lower once and use the flat API directly.
    pub fn run<O: Observer + ?Sized>(&self, observer: &mut O) -> ExecSummary {
        let flat = crate::flat::FlatProgram::lower(self.program);
        crate::flat::with_scratch(|scratch| flat.run_observed(self.limits, observer, scratch))
    }

    /// The seed-era per-instruction interpreter, kept verbatim as the
    /// differential reference for the batched walk (and as the honest
    /// "before" leg of `bench_trace`).
    pub fn run_reference<O: Observer + ?Sized>(&self, observer: &mut O) -> ExecSummary {
        let program = self.program;
        let mut summary = ExecSummary::default();
        let mut streams = program.build_streams();
        let mut scratch = program.build_scratch();
        // Control RNG: consumed ONLY by original terminators so injection
        // cannot shift branch outcomes.
        let mut ctl_rng = SmallRng::seed_from_u64(program.seed ^ 0xc0ff_ee00_dead_beef);
        // Per-block last-branch-outcome memory for the persistence model.
        let mut last_outcome: Vec<Option<bool>> = vec![None; program.blocks.len()];
        let mut call_stack: Vec<BlockId> = Vec::with_capacity(program.functions.len());

        let mut current = program.entry();
        'outer: loop {
            summary.blocks += 1;
            let block = program.block(current);

            // Body instructions.
            for (idx, instr) in block.body.iter().enumerate() {
                if summary.instructions >= self.limits.max_instructions
                    || summary.original_instructions >= self.limits.max_original_instructions
                {
                    break 'outer;
                }
                let pc = block.addr + idx as u64 * crate::isa::INSTR_BYTES;
                let mem = instr.mem.map(|m| {
                    let addr = if m.stream == SCRATCH_STREAM {
                        scratch.next_addr()
                    } else {
                        streams[m.stream as usize].next_addr()
                    };
                    MemAccess { addr, size: m.size }
                });
                let ev = ExecEvent {
                    pc,
                    opcode: instr.opcode,
                    mem,
                    branch: None,
                    injected: instr.injected,
                    syscall: false,
                };
                self.commit(&ev, observer, &mut summary);
            }
            if summary.instructions >= self.limits.max_instructions
                || summary.original_instructions >= self.limits.max_original_instructions
            {
                break;
            }

            // Terminator.
            let term_pc = block.terminator_pc();
            let (next, outcome, is_syscall) = match block.terminator {
                Terminator::Jump { target } => (
                    Some(target),
                    Some(BranchOutcome {
                        kind: BranchKind::Jump,
                        taken: true,
                        target: program.block(target).addr,
                    }),
                    false,
                ),
                Terminator::Branch {
                    taken,
                    fallthrough,
                    taken_prob,
                    persistence,
                } => {
                    let slot = &mut last_outcome[current.index()];
                    let outcome_taken = match *slot {
                        Some(prev) if ctl_rng.gen::<f64>() < persistence => prev,
                        _ => ctl_rng.gen::<f64>() < taken_prob,
                    };
                    *slot = Some(outcome_taken);
                    let dest = if outcome_taken { taken } else { fallthrough };
                    (
                        Some(dest),
                        Some(BranchOutcome {
                            kind: BranchKind::Conditional,
                            taken: outcome_taken,
                            target: program.block(dest).addr,
                        }),
                        false,
                    )
                }
                Terminator::Call { callee, return_to } => {
                    if call_stack.len() >= self.limits.max_call_depth {
                        // Recursion guard: treat as a jump over the call.
                        (
                            Some(return_to),
                            Some(BranchOutcome {
                                kind: BranchKind::Jump,
                                taken: true,
                                target: program.block(return_to).addr,
                            }),
                            false,
                        )
                    } else {
                        call_stack.push(return_to);
                        let entry = program.function(callee).entry;
                        (
                            Some(entry),
                            Some(BranchOutcome {
                                kind: BranchKind::Call,
                                taken: true,
                                target: program.block(entry).addr,
                            }),
                            false,
                        )
                    }
                }
                Terminator::Return => match call_stack.pop() {
                    Some(ret) => (
                        Some(ret),
                        Some(BranchOutcome {
                            kind: BranchKind::Return,
                            taken: true,
                            target: program.block(ret).addr,
                        }),
                        false,
                    ),
                    None => (None, None, false),
                },
                Terminator::Syscall { next } => (
                    Some(next),
                    Some(BranchOutcome {
                        kind: BranchKind::Jump,
                        taken: true,
                        target: program.block(next).addr,
                    }),
                    true,
                ),
                Terminator::Exit => (None, None, true),
            };

            let ev = ExecEvent {
                pc: term_pc,
                opcode: block.terminator.opcode(),
                mem: None,
                branch: outcome,
                injected: false,
                syscall: is_syscall,
            };
            self.commit(&ev, observer, &mut summary);
            if is_syscall {
                summary.syscalls += 1;
                if summary.syscalls >= self.limits.max_syscalls {
                    break;
                }
            }
            match next {
                Some(n) => current = n,
                None => break,
            }
        }
        summary
    }

    /// Runs the program to its limits, feeding every observer the identical
    /// committed-instruction stream in list order.
    ///
    /// Behavior is bit-identical to [`Executor::run`] with a single
    /// observer: the event sequence, the summary, and each observer's view
    /// are unchanged however consumers are stacked.
    ///
    /// # Examples
    ///
    /// ```
    /// use rhmd_trace::exec::{CountingSink, ExecLimits, Executor, Observer};
    /// use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};
    ///
    /// let program = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(1);
    /// let mut counts = CountingSink::default();
    /// let mut pcs = 0u64;
    /// let mut last_pc = |ev: &rhmd_trace::exec::ExecEvent| pcs = ev.pc;
    /// let summary = Executor::new(&program, ExecLimits::instructions(5_000))
    ///     .run_observed(&mut [&mut counts, &mut last_pc]);
    /// assert_eq!(summary.instructions, counts.total);
    /// ```
    pub fn run_observed(&self, observers: &mut [&mut dyn Observer]) -> ExecSummary {
        self.run(&mut FanOut(observers))
    }

    #[inline]
    fn commit<O: Observer + ?Sized>(&self, ev: &ExecEvent, observer: &mut O, summary: &mut ExecSummary) {
        summary.instructions += 1;
        if !ev.injected {
            summary.original_instructions += 1;
            summary.mix(ev.opcode.index() as u64 + 1);
            if let Some(m) = ev.mem {
                summary.mix(m.addr);
            }
            if let Some(b) = ev.branch {
                summary.mix(if b.taken { 0x5555 } else { 0xaaaa });
            }
        }
        observer.observe(ev);
    }
}

impl Program {
    /// Convenience: executes the program into a single observer with
    /// `limits`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rhmd_trace::exec::{ExecLimits, ExecEvent};
    /// use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};
    ///
    /// let program = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(1);
    /// let mut count = 0u64;
    /// let summary = program.execute(ExecLimits::instructions(5_000), &mut |_: &ExecEvent| count += 1);
    /// assert_eq!(summary.instructions, count);
    /// ```
    pub fn execute<O: Observer + ?Sized>(&self, limits: ExecLimits, observer: &mut O) -> ExecSummary {
        rhmd_obs::incr("trace.programs_executed");
        Executor::new(self, limits).run(observer)
    }

    /// Convenience: executes the program, fanning the committed-instruction
    /// stream out to every observer (see [`Executor::run_observed`]).
    pub fn execute_observed(
        &self,
        limits: ExecLimits,
        observers: &mut [&mut dyn Observer],
    ) -> ExecSummary {
        rhmd_obs::incr("trace.programs_executed");
        Executor::new(self, limits).run_observed(observers)
    }
}

/// An observer that counts events and discards them; useful for measuring
/// overheads without paying for feature extraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Total events observed.
    pub total: u64,
    /// Events flagged as injected.
    pub injected: u64,
}

impl Observer for CountingSink {
    fn observe(&mut self, ev: &ExecEvent) {
        self.total += 1;
        if ev.injected {
            self.injected += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                          ProgramGenerator};

    #[test]
    fn execution_is_deterministic() {
        let p = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(7);
        let mut events_a = Vec::new();
        let sa = p.execute(ExecLimits::instructions(10_000), &mut |e: &ExecEvent| {
            events_a.push(*e)
        });
        let mut events_b = Vec::new();
        let sb = p.execute(ExecLimits::instructions(10_000), &mut |e: &ExecEvent| {
            events_b.push(*e)
        });
        assert_eq!(sa, sb);
        assert_eq!(events_a, events_b);
    }

    #[test]
    fn limits_are_respected() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Spambot)).generate(3);
        let mut sink = CountingSink::default();
        let s = p.execute(ExecLimits::instructions(1_234), &mut sink);
        assert!(s.instructions <= 1_234);
        assert_eq!(s.instructions, sink.total);
    }

    #[test]
    fn syscall_limit_stops_execution() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Spambot)).generate(3);
        // The instruction bound is a backstop in case this particular
        // program reaches fewer than 5 syscall sites.
        let limits = ExecLimits {
            max_instructions: 500_000,
            max_original_instructions: u64::MAX,
            max_syscalls: 5,
            max_call_depth: 128,
        };
        let mut sink = CountingSink::default();
        let s = p.execute(limits, &mut sink);
        assert!(s.syscalls <= 5);
        assert!(
            s.syscalls == 5 || s.instructions == 500_000,
            "one of the limits must bind: {s:?}"
        );
    }

    #[test]
    fn fingerprint_is_stable() {
        let p = ProgramGenerator::new(benign_profile(BenignClass::SpecCompute)).generate(11);
        let mut sink = CountingSink::default();
        let a = p.execute(ExecLimits::instructions(20_000), &mut sink);
        let b = p.execute(ExecLimits::instructions(20_000), &mut sink);
        assert_eq!(a.original_fingerprint, b.original_fingerprint);
        assert_ne!(a.original_fingerprint, 0);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let gen = ProgramGenerator::new(benign_profile(BenignClass::Browser));
        let p1 = gen.generate(1);
        let p2 = gen.generate(2);
        let mut sink = CountingSink::default();
        let a = p1.execute(ExecLimits::instructions(5_000), &mut sink);
        let b = p2.execute(ExecLimits::instructions(5_000), &mut sink);
        assert_ne!(a.original_fingerprint, b.original_fingerprint);
    }

    /// The observer fan-out is bit-identical to a lone observer: same
    /// summary, and every observer sees the same stream.
    #[test]
    fn observers_match_single_observer_bit_for_bit() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Ransomware)).generate(9);
        let limits = ExecLimits::instructions(3_000);

        let mut solo_events = Vec::new();
        let solo = p.execute(limits, &mut |e: &ExecEvent| solo_events.push(*e));

        let mut obs_events = Vec::new();
        let mut counts = CountingSink::default();
        let mut record = |e: &ExecEvent| obs_events.push(*e);
        let observed = p.execute_observed(limits, &mut [&mut record, &mut counts]);

        assert_eq!(solo, observed);
        assert_eq!(solo_events, obs_events);
        assert_eq!(counts.total, solo.instructions);
    }

    /// The default `run` (flat, batched) and the reference interpreter emit
    /// the identical stream and summary.
    #[test]
    fn run_matches_run_reference() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Worm)).generate(21);
        let limits = ExecLimits::default();
        let mut fast_events = Vec::new();
        let fast = Executor::new(&p, limits).run(&mut |e: &ExecEvent| fast_events.push(*e));
        let mut ref_events = Vec::new();
        let reference =
            Executor::new(&p, limits).run_reference(&mut |e: &ExecEvent| ref_events.push(*e));
        assert_eq!(fast, reference);
        assert_eq!(fast_events, ref_events);
    }

    #[test]
    fn empty_observer_list_still_executes() {
        let p = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(5);
        let summary = p.execute_observed(ExecLimits::instructions(1_000), &mut []);
        assert!(summary.instructions > 0);
    }

    #[test]
    fn dynamic_overhead_zero_without_injection() {
        let p = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(5);
        let mut sink = CountingSink::default();
        let s = p.execute(ExecLimits::instructions(5_000), &mut sink);
        assert_eq!(s.dynamic_overhead(), 0.0);
        assert_eq!(sink.injected, 0);
    }
}
