//! Synthetic program substrate for the RHMD reproduction.
//!
//! The RHMD paper (Khasawneh et al., MICRO 2017) evaluates hardware malware
//! detectors on dynamic traces of real Windows malware collected with Pin.
//! That substrate — the binaries, the VM, and the instrumentation tool — is
//! replaced here by a fully synthetic, deterministic equivalent:
//!
//! * [`isa`] — a 32-class x86-flavoured opcode alphabet;
//! * [`mix`] / [`address`] — class-conditional generative personalities
//!   (opcode mixtures and memory-access patterns);
//! * [`block`] / [`program`] — dynamic control-flow graphs;
//! * [`generate`] — benign application classes and malware families;
//! * [`exec`] — a deterministic executor emitting committed-instruction
//!   events (the role of Pin);
//! * [`inject`] — the evasion framework's block-/function-level instruction
//!   injection, with static/dynamic overhead accounting (paper §5, Fig 9).
//!
//! # Examples
//!
//! Generate a spam bot, trace it, and count its system calls:
//!
//! ```
//! use rhmd_trace::exec::{ExecEvent, ExecLimits};
//! use rhmd_trace::generate::{malware_profile, MalwareFamily, ProgramGenerator};
//!
//! let bot = ProgramGenerator::new(malware_profile(MalwareFamily::Spambot)).generate(0);
//! let mut syscalls = 0u64;
//! bot.execute(ExecLimits::instructions(50_000), &mut |ev: &ExecEvent| {
//!     if ev.syscall {
//!         syscalls += 1;
//!     }
//! });
//! assert!(syscalls > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod address;
pub mod block;
pub mod dump;
pub mod exec;
pub mod flat;
pub mod generate;
pub mod inject;
pub mod isa;
pub mod mix;
pub mod program;
pub mod seed;

pub use block::{BasicBlock, BlockId, FuncId, Function, Terminator};
pub use exec::{ExecEvent, ExecLimits, ExecSummary, Executor, Observer};
pub use flat::{BatchSink, ExecScratch, FlatInstr, FlatProgram};
pub use generate::{benign_profile, malware_profile, BenignClass, MalwareFamily, ProfileSpec,
                   ProgramGenerator};
pub use inject::{apply as apply_injection, InjectionPlan, Placement, StaticOverhead};
pub use isa::{Instruction, Opcode, OPCODE_COUNT};
pub use program::{Program, ProgramClass};
