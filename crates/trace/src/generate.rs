//! Generative models for benign applications and malware families.
//!
//! This module stands in for the paper's corpus of 3,000 MalwareDB samples
//! and 554 Windows applications: each program class is a generative profile
//! over opcode mixes, memory-access patterns, control-flow shape, and system
//! call density. Classes overlap enough that baseline detectors land in the
//! ~85–95% accuracy band of Fig 2 instead of separating trivially.

use crate::address::PatternMix;
use crate::block::{BasicBlock, BlockId, FuncId, Function, Terminator};
use crate::isa::{Instruction, Opcode, OPCODE_COUNT};
use crate::mix::OpcodeMix;
use crate::program::{Program, ProgramClass};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-class knobs: (opcode overrides, pattern mix, strides, syscall rate,
/// block length, taken bias, call rate).
type ProfileKnobs<'a> = (&'a [(Opcode, f64)], PatternMix, Vec<u32>, f64, Span, f64, f64);

/// The eight benign application classes in the corpus (paper §3: browsers,
/// text editors, system programs, SPEC 2006, Acrobat Reader, Notepad++,
/// WinRAR, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenignClass {
    /// Web browser: pointer-chasing, call-heavy, branchy.
    Browser,
    /// Text editor: stack-local, light compute.
    TextEditor,
    /// System utility: syscall-leaning, mixed memory.
    SystemUtility,
    /// SPEC-like compute kernel: FPU/SIMD heavy, strided memory.
    SpecCompute,
    /// Media player: SIMD decode loops, streaming memory.
    MediaPlayer,
    /// Archiver (WinRAR-like): shifts/rotates, strided + random memory.
    Archiver,
    /// PDF reader: parsing, branchy, pointer-chase.
    PdfReader,
    /// Spreadsheet: FPU + cell-graph pointer chasing.
    Spreadsheet,
}

impl BenignClass {
    /// All benign classes.
    pub const ALL: [BenignClass; 8] = [
        BenignClass::Browser,
        BenignClass::TextEditor,
        BenignClass::SystemUtility,
        BenignClass::SpecCompute,
        BenignClass::MediaPlayer,
        BenignClass::Archiver,
        BenignClass::PdfReader,
        BenignClass::Spreadsheet,
    ];

    /// Short name used in program names.
    pub fn name(self) -> &'static str {
        match self {
            BenignClass::Browser => "browser",
            BenignClass::TextEditor => "editor",
            BenignClass::SystemUtility => "sysutil",
            BenignClass::SpecCompute => "spec",
            BenignClass::MediaPlayer => "media",
            BenignClass::Archiver => "archiver",
            BenignClass::PdfReader => "pdf",
            BenignClass::Spreadsheet => "sheet",
        }
    }
}

/// The six malware families in the corpus, modelled on the behavioural
/// categories the paper's threat model emphasises (computationally intensive
/// bots, scanners, information stealers, crypters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MalwareFamily {
    /// Spam bot: tight message-formatting loops, heavy syscalls/string ops.
    Spambot,
    /// Click-fraud bot: request forging, timer loops, branchy.
    ClickFraud,
    /// Network worm / scanner: random probing, syscall heavy.
    Worm,
    /// Keylogger / infostealer: event polling, small buffers.
    Keylogger,
    /// Ransomware: crypto loops (xor/rotate/shift), streaming file I/O.
    Ransomware,
    /// Packed dropper: unpacking stubs, xor/rotate, pointer-chase.
    Dropper,
}

impl MalwareFamily {
    /// All malware families.
    pub const ALL: [MalwareFamily; 6] = [
        MalwareFamily::Spambot,
        MalwareFamily::ClickFraud,
        MalwareFamily::Worm,
        MalwareFamily::Keylogger,
        MalwareFamily::Ransomware,
        MalwareFamily::Dropper,
    ];

    /// Short name used in program names.
    pub fn name(self) -> &'static str {
        match self {
            MalwareFamily::Spambot => "spambot",
            MalwareFamily::ClickFraud => "clickfraud",
            MalwareFamily::Worm => "worm",
            MalwareFamily::Keylogger => "keylogger",
            MalwareFamily::Ransomware => "ransomware",
            MalwareFamily::Dropper => "dropper",
        }
    }
}

/// Inclusive integer range used by profile knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Lower bound (inclusive).
    pub min: u32,
    /// Upper bound (inclusive).
    pub max: u32,
}

impl Span {
    /// Creates a span.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: u32, max: u32) -> Span {
        assert!(min <= max, "span min {min} > max {max}");
        Span { min, max }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.gen_range(self.min..=self.max)
    }
}

/// A generative profile: everything needed to sample programs of one class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSpec {
    /// Name prefix for generated programs.
    pub name: String,
    /// Ground-truth class of generated programs.
    pub class: ProgramClass,
    /// Family index (unique across benign classes and malware families).
    pub family: u32,
    /// Base opcode mixture; control-flow entries are ignored for block
    /// bodies (control flow is produced by terminators).
    pub opcode_mix: OpcodeMix,
    /// Dirichlet concentration for per-program perturbation of the mix.
    pub concentration: f64,
    /// Memory-pattern mixture for the program's address streams.
    pub pattern_mix: PatternMix,
    /// Candidate strides (bytes) for strided streams.
    pub strides: Vec<u32>,
    /// Number of address streams per program.
    pub num_streams: Span,
    /// Functions per program.
    pub functions: Span,
    /// Blocks per function.
    pub blocks_per_function: Span,
    /// Body instructions per block.
    pub block_len: Span,
    /// Mean probability a conditional branch is taken.
    pub taken_bias: f64,
    /// Probability a branch repeats its previous outcome.
    pub persistence: f64,
    /// Probability a block terminates in a system call.
    pub syscall_prob: f64,
    /// Probability a block terminates in a call (when a callee exists).
    pub call_prob: f64,
    /// Probability a conditional branch's taken edge is a back edge (loop).
    pub backedge_prob: f64,
    /// Weights over access sizes {1, 2, 4, 8, 16} bytes.
    pub size_weights: [f64; 5],
}

const ACCESS_SIZES: [u8; 5] = [1, 2, 4, 8, 16];

impl ProfileSpec {
    fn sample_size<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        let total: f64 = self.size_weights.iter().sum();
        let mut u = rng.gen::<f64>() * total;
        for (w, &s) in self.size_weights.iter().zip(&ACCESS_SIZES) {
            if u < *w {
                return s;
            }
            u -= w;
        }
        4
    }
}

/// Builds opcode weights from `(opcode, weight)` overrides on a small
/// baseline so profiles read as diffs against "a generic program".
fn weights(overrides: &[(Opcode, f64)]) -> [f64; OPCODE_COUNT] {
    // Generic application baseline: mov/load/store dominated, modest ALU.
    let mut w = [0.4; OPCODE_COUNT];
    let base: &[(Opcode, f64)] = &[
        (Opcode::Mov, 14.0),
        (Opcode::Load, 12.0),
        (Opcode::Store, 7.0),
        (Opcode::Push, 3.0),
        (Opcode::Pop, 3.0),
        (Opcode::Lea, 4.0),
        (Opcode::Add, 7.0),
        (Opcode::Sub, 4.0),
        (Opcode::Inc, 2.5),
        (Opcode::And, 2.0),
        (Opcode::Or, 1.5),
        (Opcode::Xor, 2.5),
        (Opcode::Shift, 2.0),
        (Opcode::Cmp, 6.0),
        (Opcode::Test, 3.0),
        (Opcode::Nop, 1.0),
        (Opcode::Mul, 1.0),
        (Opcode::Cmov, 0.8),
        (Opcode::SetCc, 0.6),
    ];
    for &(op, v) in base {
        w[op.index()] = v;
    }
    for &(op, v) in overrides {
        w[op.index()] = v;
    }
    // Control-flow classes never appear in block bodies; zero them so the
    // body mix normalization is exact.
    for op in [
        Opcode::Jcc,
        Opcode::Jmp,
        Opcode::Call,
        Opcode::Ret,
        Opcode::Syscall,
    ] {
        w[op.index()] = 0.0;
    }
    w
}

/// The generative profile for a benign application class.
pub fn benign_profile(class: BenignClass) -> ProfileSpec {
    let (ovr, pattern, strides, syscall, block_len, taken, calls): ProfileKnobs = match class {
        BenignClass::Browser => (
            &[(Opcode::Load, 14.0), (Opcode::Cmp, 7.0), (Opcode::Test, 4.0)],
            PatternMix::new(0.28, 0.10, 0.37, 0.25),
            vec![8, 16, 64],
            0.020,
            Span::new(4, 10),
            0.52,
            0.16,
        ),
        BenignClass::TextEditor => (
            &[(Opcode::Mov, 16.0), (Opcode::StringOp, 1.8)],
            PatternMix::new(0.30, 0.10, 0.15, 0.45),
            vec![1, 2, 16],
            0.016,
            Span::new(5, 12),
            0.55,
            0.12,
        ),
        BenignClass::SystemUtility => (
            &[(Opcode::Test, 4.5), (Opcode::And, 3.0)],
            PatternMix::new(0.40, 0.12, 0.15, 0.33),
            vec![4, 8, 32],
            0.030,
            Span::new(4, 11),
            0.50,
            0.13,
        ),
        BenignClass::SpecCompute => (
            &[
                (Opcode::Fpu, 9.0),
                (Opcode::Simd, 5.0),
                (Opcode::SimdMem, 4.0),
                (Opcode::Mul, 4.0),
                (Opcode::Add, 10.0),
                (Opcode::Load, 14.0),
            ],
            PatternMix::new(0.60, 0.10, 0.15, 0.15),
            vec![4, 8, 16, 64],
            0.004,
            Span::new(8, 18),
            0.72,
            0.08,
        ),
        BenignClass::MediaPlayer => (
            &[
                (Opcode::Simd, 7.0),
                (Opcode::SimdMem, 6.0),
                (Opcode::Shift, 3.5),
                (Opcode::Add, 9.0),
            ],
            PatternMix::new(0.55, 0.10, 0.10, 0.25),
            vec![16, 32, 64],
            0.012,
            Span::new(7, 16),
            0.68,
            0.10,
        ),
        BenignClass::Archiver => (
            &[
                (Opcode::Shift, 5.0),
                (Opcode::Rotate, 2.0),
                (Opcode::And, 4.0),
                (Opcode::Or, 3.0),
                (Opcode::Load, 14.0),
                (Opcode::Store, 9.0),
            ],
            PatternMix::new(0.45, 0.25, 0.10, 0.20),
            vec![1, 2, 4, 32],
            0.010,
            Span::new(6, 14),
            0.62,
            0.09,
        ),
        BenignClass::PdfReader => (
            &[(Opcode::Cmp, 8.0), (Opcode::Load, 13.0), (Opcode::SetCc, 1.2)],
            PatternMix::new(0.30, 0.12, 0.32, 0.26),
            vec![2, 8, 16],
            0.018,
            Span::new(4, 10),
            0.50,
            0.15,
        ),
        BenignClass::Spreadsheet => (
            &[(Opcode::Fpu, 5.0), (Opcode::Mul, 2.5), (Opcode::Cmov, 1.5)],
            PatternMix::new(0.33, 0.10, 0.31, 0.26),
            vec![8, 16, 128],
            0.014,
            Span::new(5, 12),
            0.57,
            0.12,
        ),
    };
    ProfileSpec {
        name: class.name().to_owned(),
        class: ProgramClass::Benign,
        family: class as u32,
        opcode_mix: OpcodeMix::from_weights(&weights(ovr)),
        concentration: 160.0,
        pattern_mix: pattern,
        strides,
        num_streams: Span::new(6, 12),
        functions: Span::new(4, 10),
        blocks_per_function: Span::new(8, 20),
        block_len,
        taken_bias: taken,
        persistence: 0.82,
        syscall_prob: syscall,
        call_prob: calls,
        backedge_prob: 0.35,
        size_weights: [0.08, 0.10, 0.45, 0.27, 0.10],
    }
}

/// The generative profile for a malware family.
pub fn malware_profile(family: MalwareFamily) -> ProfileSpec {
    let (ovr, pattern, strides, syscall, block_len, taken, calls): ProfileKnobs = match family {
        MalwareFamily::Spambot => (
            &[
                (Opcode::StringOp, 4.5),
                (Opcode::Store, 10.0),
                (Opcode::Inc, 4.0),
                (Opcode::Cmp, 7.5),
            ],
            PatternMix::new(0.28, 0.37, 0.10, 0.25),
            vec![1, 2, 8],
            0.065,
            Span::new(4, 9),
            0.60,
            0.11,
        ),
        MalwareFamily::ClickFraud => (
            &[
                (Opcode::StringOp, 3.0),
                (Opcode::Test, 5.0),
                (Opcode::SetCc, 1.8),
                (Opcode::Inc, 4.5),
            ],
            PatternMix::new(0.25, 0.37, 0.13, 0.25),
            vec![2, 4, 16],
            0.055,
            Span::new(4, 9),
            0.48,
            0.14,
        ),
        MalwareFamily::Worm => (
            &[
                (Opcode::StringOp, 3.5),
                (Opcode::Xor, 4.0),
                (Opcode::Or, 3.0),
                (Opcode::Inc, 3.5),
            ],
            PatternMix::new(0.20, 0.45, 0.15, 0.20),
            vec![4, 128, 4096],
            0.075,
            Span::new(3, 8),
            0.45,
            0.12,
        ),
        MalwareFamily::Keylogger => (
            &[
                (Opcode::Test, 6.0),
                (Opcode::And, 4.0),
                (Opcode::Cmov, 1.8),
                (Opcode::Store, 9.0),
            ],
            PatternMix::new(0.18, 0.30, 0.17, 0.35),
            vec![1, 2, 4],
            0.080,
            Span::new(3, 8),
            0.40,
            0.13,
        ),
        MalwareFamily::Ransomware => (
            &[
                (Opcode::Xor, 8.0),
                (Opcode::Rotate, 4.0),
                (Opcode::Shift, 5.0),
                (Opcode::Load, 14.0),
                (Opcode::Store, 10.0),
                (Opcode::Add, 8.0),
            ],
            PatternMix::new(0.55, 0.15, 0.10, 0.20),
            vec![1, 16, 64],
            0.035,
            Span::new(6, 13),
            0.66,
            0.08,
        ),
        MalwareFamily::Dropper => (
            &[
                (Opcode::Xor, 7.0),
                (Opcode::Rotate, 3.0),
                (Opcode::Not, 2.0),
                (Opcode::Xchg, 1.5),
                (Opcode::Nop, 2.5),
            ],
            PatternMix::new(0.15, 0.30, 0.45, 0.10),
            vec![1, 4, 256],
            0.045,
            Span::new(3, 8),
            0.44,
            0.15,
        ),
    };
    ProfileSpec {
        name: family.name().to_owned(),
        class: ProgramClass::Malware,
        family: 100 + family as u32,
        opcode_mix: OpcodeMix::from_weights(&weights(ovr)),
        concentration: 130.0,
        pattern_mix: pattern,
        strides,
        num_streams: Span::new(5, 10),
        functions: Span::new(3, 8),
        blocks_per_function: Span::new(6, 16),
        block_len,
        taken_bias: taken,
        persistence: 0.70,
        syscall_prob: syscall,
        call_prob: calls,
        backedge_prob: 0.40,
        size_weights: [0.15, 0.12, 0.42, 0.21, 0.10],
    }
}

/// Samples [`Program`]s from a [`ProfileSpec`].
///
/// # Examples
///
/// ```
/// use rhmd_trace::generate::{malware_profile, MalwareFamily, ProgramGenerator};
///
/// let gen = ProgramGenerator::new(malware_profile(MalwareFamily::Ransomware));
/// let a = gen.generate(0);
/// let b = gen.generate(0);
/// assert_eq!(a, b); // fully deterministic in the seed
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramGenerator {
    spec: ProfileSpec,
}

impl ProgramGenerator {
    /// Creates a generator for the given profile.
    pub fn new(spec: ProfileSpec) -> ProgramGenerator {
        ProgramGenerator { spec }
    }

    /// The profile this generator samples from.
    pub fn spec(&self) -> &ProfileSpec {
        &self.spec
    }

    /// Generates the `seed`-th program of this class.
    pub fn generate(&self, seed: u64) -> Program {
        let spec = &self.spec;
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (u64::from(spec.family)).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let program_mix = spec.opcode_mix.perturb(spec.concentration, &mut rng);

        // Address streams.
        let num_streams = spec.num_streams.sample(&mut rng) as usize;
        let streams = (0..num_streams)
            .map(|_| {
                let stride = spec.strides[rng.gen_range(0..spec.strides.len())];
                spec.pattern_mix.sample(rng.gen(), stride)
            })
            .collect::<Vec<_>>();

        // Control-flow skeleton.
        let func_count = spec.functions.sample(&mut rng) as usize;
        let mut functions = Vec::with_capacity(func_count);
        let mut blocks = Vec::new();
        for f in 0..func_count {
            let nblocks = spec.blocks_per_function.sample(&mut rng) as usize;
            let base = blocks.len() as u32;
            let ids: Vec<BlockId> = (0..nblocks as u32).map(|i| BlockId(base + i)).collect();
            for i in 0..nblocks {
                let body = self.sample_body(&program_mix, num_streams, &mut rng);
                let is_last = i == nblocks - 1;
                let terminator = if is_last {
                    if f == 0 {
                        // `main` loops forever; traces are budget-bounded.
                        Terminator::Jump { target: ids[0] }
                    } else {
                        Terminator::Return
                    }
                } else {
                    self.sample_terminator(f, func_count, i, &ids, &mut rng)
                };
                blocks.push(BasicBlock::new(body, terminator));
            }
            functions.push(Function::new(ids));
        }

        let mut program = Program {
            name: format!("{}-{seed:04}", spec.name),
            class: spec.class,
            family: spec.family,
            seed: seed ^ u64::from(spec.family) << 32,
            functions,
            blocks,
            streams,
            scratch_delta: 64,
        };
        program.relayout();
        debug_assert_eq!(program.validate(), Ok(()));
        program
    }

    fn sample_body(
        &self,
        mix: &OpcodeMix,
        num_streams: usize,
        rng: &mut SmallRng,
    ) -> Vec<Instruction> {
        let len = self.spec.block_len.sample(rng) as usize;
        // Memory locality is block-scoped: a basic block works on one buffer
        // (its primary stream), with occasional accesses to a secondary one.
        // Without this, consecutive dynamic accesses almost always hop
        // between unrelated streams and the Memory feature's delta histogram
        // degenerates into inter-region jumps.
        let primary = rng.gen_range(0..num_streams) as u8;
        let secondary = rng.gen_range(0..num_streams) as u8;
        (0..len)
            .map(|_| {
                // Body mixes have zero mass on control flow (see `weights`),
                // but a perturbed mix keeps a tiny floor on every class;
                // resample those rare draws.
                let mut opcode = mix.sample(rng);
                while opcode.is_control_flow() {
                    opcode = mix.sample(rng);
                }
                if opcode.is_memory() {
                    let stream = if rng.gen::<f64>() < 0.85 { primary } else { secondary };
                    let size = self.spec.sample_size(rng);
                    Instruction::mem(opcode, stream, size)
                } else {
                    Instruction::reg(opcode)
                }
            })
            .collect()
    }

    fn sample_terminator(
        &self,
        func: usize,
        func_count: usize,
        block_idx: usize,
        ids: &[BlockId],
        rng: &mut SmallRng,
    ) -> Terminator {
        let spec = &self.spec;
        let next = ids[block_idx + 1];
        let roll: f64 = rng.gen();
        if roll < spec.syscall_prob {
            return Terminator::Syscall { next };
        }
        if roll < spec.syscall_prob + spec.call_prob && func + 1 < func_count {
            // Calls only go to higher-numbered functions: the call graph is a
            // DAG, so execution cannot recurse unboundedly.
            let callee = FuncId(rng.gen_range(func as u32 + 1..func_count as u32));
            return Terminator::Call {
                callee,
                return_to: next,
            };
        }
        // Conditional branch. Taken edge: back edge (loop) or forward skip.
        let taken = if rng.gen::<f64>() < spec.backedge_prob || block_idx + 2 >= ids.len() {
            ids[rng.gen_range(0..=block_idx)]
        } else {
            ids[rng.gen_range(block_idx + 1..ids.len())]
        };
        let jitter: f64 = rng.gen::<f64>() * 0.3 - 0.15;
        Terminator::Branch {
            taken,
            fallthrough: next,
            taken_prob: (spec.taken_bias + jitter).clamp(0.05, 0.95),
            persistence: spec.persistence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for family in MalwareFamily::ALL {
            let gen = ProgramGenerator::new(malware_profile(family));
            assert_eq!(gen.generate(5), gen.generate(5));
        }
    }

    #[test]
    fn generated_programs_validate() {
        for class in BenignClass::ALL {
            let gen = ProgramGenerator::new(benign_profile(class));
            for seed in 0..3 {
                gen.generate(seed).validate().unwrap();
            }
        }
        for family in MalwareFamily::ALL {
            let gen = ProgramGenerator::new(malware_profile(family));
            for seed in 0..3 {
                gen.generate(seed).validate().unwrap();
            }
        }
    }

    #[test]
    fn family_ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for class in BenignClass::ALL {
            assert!(seen.insert(benign_profile(class).family));
        }
        for family in MalwareFamily::ALL {
            assert!(seen.insert(malware_profile(family).family));
        }
    }

    #[test]
    fn classes_have_correct_labels() {
        assert_eq!(
            benign_profile(BenignClass::Browser).class,
            ProgramClass::Benign
        );
        assert_eq!(
            malware_profile(MalwareFamily::Worm).class,
            ProgramClass::Malware
        );
    }

    #[test]
    fn different_seeds_differ() {
        let gen = ProgramGenerator::new(benign_profile(BenignClass::Archiver));
        assert_ne!(gen.generate(0), gen.generate(1));
    }

    #[test]
    fn bodies_never_contain_control_flow() {
        let gen = ProgramGenerator::new(malware_profile(MalwareFamily::Dropper));
        let p = gen.generate(9);
        for block in &p.blocks {
            for instr in &block.body {
                assert!(!instr.opcode.is_control_flow());
            }
        }
    }

    #[test]
    fn main_function_loops() {
        let gen = ProgramGenerator::new(benign_profile(BenignClass::Browser));
        let p = gen.generate(3);
        let main = &p.functions[0];
        let last = *main.blocks.last().unwrap();
        assert_eq!(
            p.block(last).terminator,
            Terminator::Jump { target: main.entry }
        );
    }

    #[test]
    fn span_sampling_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(0);
        let span = Span::new(3, 7);
        for _ in 0..100 {
            let v = span.sample(&mut rng);
            assert!((3..=7).contains(&v));
        }
    }
}
