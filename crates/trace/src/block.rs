//! Basic blocks and terminators.

use crate::isa::{Instruction, Opcode, INSTR_BYTES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a basic block in a program's flat block arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Index of a function within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// The control-flow-altering instruction that ends a basic block.
///
/// Terminators are real instructions: they occupy 4 bytes, have a program
/// counter, and contribute their opcode class to the instruction-mix feature,
/// exactly like the control-flow instructions Pin observes in the paper's
/// traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump {
        /// Destination block.
        target: BlockId,
    },
    /// Conditional branch with stochastic, temporally correlated outcome.
    Branch {
        /// Destination when taken.
        taken: BlockId,
        /// Destination when not taken (fall-through).
        fallthrough: BlockId,
        /// Long-run probability the branch is taken.
        taken_prob: f64,
        /// Probability the branch repeats its previous outcome, giving the
        /// streaky behaviour real predictors exploit.
        persistence: f64,
    },
    /// Call into another function; control returns to `return_to`.
    Call {
        /// The callee.
        callee: FuncId,
        /// Block executed after the callee returns.
        return_to: BlockId,
    },
    /// Return to the caller (or end of trace when the stack is empty).
    Return,
    /// System call, then continue at `next`.
    Syscall {
        /// Block executed after the system call.
        next: BlockId,
    },
    /// Program exit.
    Exit,
}

impl Terminator {
    /// The opcode class this terminator contributes to the dynamic stream.
    pub fn opcode(&self) -> Opcode {
        match self {
            Terminator::Jump { .. } => Opcode::Jmp,
            Terminator::Branch { .. } => Opcode::Jcc,
            Terminator::Call { .. } => Opcode::Call,
            Terminator::Return => Opcode::Ret,
            Terminator::Syscall { .. } => Opcode::Syscall,
            Terminator::Exit => Opcode::Syscall,
        }
    }
}

/// A straight-line sequence of instructions ended by a terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Instructions executed unconditionally when the block runs. None of
    /// them alter control flow.
    pub body: Vec<Instruction>,
    /// The block's control-flow-altering final instruction.
    pub terminator: Terminator,
    /// Virtual address of the first instruction; assigned by program layout.
    pub addr: u64,
}

impl BasicBlock {
    /// Creates a block with the given body and terminator.
    ///
    /// # Panics
    ///
    /// Panics if any body instruction is a control-flow opcode (those may
    /// only appear as terminators).
    pub fn new(body: Vec<Instruction>, terminator: Terminator) -> BasicBlock {
        assert!(
            body.iter().all(|i| !i.opcode.is_control_flow()),
            "control-flow instructions may only appear as terminators"
        );
        BasicBlock {
            body,
            terminator,
            addr: 0,
        }
    }

    /// Number of instructions in the block, including the terminator.
    #[inline]
    pub fn len(&self) -> usize {
        self.body.len() + 1
    }

    /// A block always contains at least its terminator.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Encoded size of the block in bytes.
    #[inline]
    pub fn byte_len(&self) -> u64 {
        self.len() as u64 * INSTR_BYTES
    }

    /// Program counter of the terminator instruction.
    #[inline]
    pub fn terminator_pc(&self) -> u64 {
        self.addr + self.body.len() as u64 * INSTR_BYTES
    }
}

/// A function: a contiguous range of blocks with a distinguished entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Entry block.
    pub entry: BlockId,
    /// All block ids belonging to this function (entry first).
    pub blocks: Vec<BlockId>,
}

impl Function {
    /// Creates a function from its block list.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn new(blocks: Vec<BlockId>) -> Function {
        assert!(!blocks.is_empty(), "a function needs at least one block");
        Function {
            entry: blocks[0],
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_len_counts_terminator() {
        let b = BasicBlock::new(
            vec![Instruction::reg(Opcode::Add), Instruction::reg(Opcode::Xor)],
            Terminator::Return,
        );
        assert_eq!(b.len(), 3);
        assert_eq!(b.byte_len(), 12);
        assert!(!b.is_empty());
    }

    #[test]
    fn terminator_pc_follows_body() {
        let mut b = BasicBlock::new(vec![Instruction::reg(Opcode::Add)], Terminator::Return);
        b.addr = 0x1000;
        assert_eq!(b.terminator_pc(), 0x1004);
    }

    #[test]
    #[should_panic(expected = "control-flow")]
    fn body_rejects_control_flow() {
        let _ = BasicBlock::new(
            vec![Instruction {
                opcode: Opcode::Jmp,
                mem: None,
                injected: false,
            }],
            Terminator::Return,
        );
    }

    #[test]
    fn terminator_opcode_mapping() {
        assert_eq!(
            Terminator::Jump { target: BlockId(0) }.opcode(),
            Opcode::Jmp
        );
        assert_eq!(Terminator::Return.opcode(), Opcode::Ret);
        assert_eq!(
            Terminator::Syscall { next: BlockId(0) }.opcode(),
            Opcode::Syscall
        );
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn function_requires_blocks() {
        let _ = Function::new(vec![]);
    }
}
