//! Property-based tests of the trace substrate's core invariants.

use proptest::prelude::*;
use rhmd_trace::exec::{CountingSink, ExecLimits};
use rhmd_trace::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                           ProgramGenerator};
use rhmd_trace::inject::{apply, InjectionPlan, Placement};
use rhmd_trace::isa::Opcode;
use rhmd_trace::Program;

fn any_profile_seeded() -> impl Strategy<Value = Program> {
    (0usize..14, 0u64..1000).prop_map(|(class, seed)| {
        if class < 6 {
            ProgramGenerator::new(malware_profile(MalwareFamily::ALL[class])).generate(seed)
        } else {
            ProgramGenerator::new(benign_profile(BenignClass::ALL[class - 6])).generate(seed)
        }
    })
}

fn injectable_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(
        Opcode::ALL
            .iter()
            .copied()
            .filter(|op| op.is_injectable())
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated program satisfies the structural invariants.
    #[test]
    fn generated_programs_validate(program in any_profile_seeded()) {
        prop_assert_eq!(program.validate(), Ok(()));
    }

    /// Execution is a pure function of (program, limits).
    #[test]
    fn execution_is_deterministic(program in any_profile_seeded(), budget in 1_000u64..20_000) {
        let limits = ExecLimits::instructions(budget);
        let mut a = CountingSink::default();
        let mut b = CountingSink::default();
        let sa = program.execute(limits, &mut a);
        let sb = program.execute(limits, &mut b);
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(a, b);
    }

    /// Injection never alters the original instruction stream: same
    /// fingerprint, same original count, under an original-work budget.
    #[test]
    fn injection_preserves_semantics(
        program in any_profile_seeded(),
        payload in prop::collection::vec(injectable_opcode(), 1..6),
        block_level in any::<bool>(),
        delta in prop::sample::select(vec![0u32, 1, 16, 64, 4096]),
    ) {
        let placement = if block_level { Placement::EveryBlock } else { Placement::BeforeReturn };
        let plan = InjectionPlan::new(payload, placement).with_mem_delta(delta);
        let (modified, overhead) = apply(&program, &plan);
        prop_assert_eq!(modified.validate(), Ok(()));
        prop_assert_eq!(
            overhead.added_bytes,
            overhead.sites * plan.payload_len() as u64 * 4
        );

        // Bound by *original* work: both runs execute the same original
        // instruction sequence regardless of payload size, and the bound
        // binds even for programs that never issue a system call.
        let limits = ExecLimits::original_instructions(30_000);
        let mut sink = CountingSink::default();
        let original = program.execute(limits, &mut sink);
        let mut sink2 = CountingSink::default();
        let rewritten = modified.execute(limits, &mut sink2);
        prop_assert_eq!(original.original_fingerprint, rewritten.original_fingerprint);
        prop_assert_eq!(original.original_instructions, rewritten.original_instructions);
        prop_assert_eq!(
            rewritten.instructions - rewritten.original_instructions,
            sink2.injected
        );
    }

    /// Per-site random injection also preserves semantics and injects
    /// exactly count × sites instructions statically.
    #[test]
    fn random_injection_preserves_semantics(
        program in any_profile_seeded(),
        count in 1usize..4,
        seed in 0u64..100,
    ) {
        let pool: Vec<Opcode> = Opcode::ALL.iter().copied().filter(|o| o.is_injectable()).collect();
        let plan = InjectionPlan::random(pool, count, Placement::EveryBlock, seed);
        let (modified, overhead) = apply(&program, &plan);
        prop_assert_eq!(modified.validate(), Ok(()));
        prop_assert_eq!(overhead.sites, program.blocks.len() as u64);
        prop_assert_eq!(
            modified.injected_instruction_count(),
            overhead.sites * count as u64
        );

        let limits = ExecLimits::original_instructions(20_000);
        let mut sink = CountingSink::default();
        let original = program.execute(limits, &mut sink);
        let mut sink2 = CountingSink::default();
        let rewritten = modified.execute(limits, &mut sink2);
        prop_assert_eq!(original.original_fingerprint, rewritten.original_fingerprint);
    }

    /// The executor commits exactly the budgeted number of instructions when
    /// the syscall budget doesn't bind first.
    #[test]
    fn instruction_budget_is_exact(program in any_profile_seeded(), budget in 100u64..5_000) {
        let limits = ExecLimits {
            max_instructions: budget,
            max_original_instructions: u64::MAX,
            max_syscalls: u64::MAX,
            max_call_depth: 128,
        };
        let mut sink = CountingSink::default();
        let summary = program.execute(limits, &mut sink);
        prop_assert_eq!(summary.instructions, budget);
        prop_assert_eq!(sink.total, budget);
    }

    /// Static text accounting matches the block arena.
    #[test]
    fn text_bytes_equal_instruction_count(program in any_profile_seeded()) {
        prop_assert_eq!(program.text_bytes(), program.static_instruction_count() * 4);
    }
}
