//! Thread-determinism of seeded stochastic rounding, end to end through
//! the real binary: `rhmd sweep --quantize ... --stochastic-round <seed>`
//! must produce byte-identical cells at any `--threads N` (rounding is a
//! pure function of seed, row bits, and feature index — never of worker
//! scheduling), and the stochastic noise must stay small enough that AUC
//! remains within tolerance of the exact f64 kernels for any seed.

use serde::Value;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Passthrough deserializer keeping the raw [`Value`] tree (the vendored
/// `serde_json` otherwise insists on a typed target).
struct Raw(Value);

impl serde::Deserialize for Raw {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        Ok(Raw(value.clone()))
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rhmd-stoch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sweep(out: &Path, threads: &str, quant: &[&str]) {
    let mut args = vec![
        "sweep",
        "--scale",
        "tiny",
        "--algos",
        "lr,svm",
        "--threads",
        threads,
        "--out",
        out.to_str().unwrap(),
    ];
    args.extend_from_slice(quant);
    let out = Command::new(env!("CARGO_BIN_EXE_rhmd"))
        .args(&args)
        .output()
        .expect("spawn rhmd binary");
    assert_eq!(
        out.status.code(),
        Some(0),
        "`rhmd {}` should exit 0; stderr:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The `"cells": [...]` tail of a sweep report — the part that must be
/// byte-identical between runs (timing stats above it may differ).
fn cells_section(json: &str) -> &str {
    let at = json.find("\"cells\"").expect("report has a cells field");
    &json[at..]
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Per-cell AUC values, in grid order.
fn aucs(json: &str) -> Vec<f64> {
    let doc = serde_json::from_str::<Raw>(json).expect("sweep report is valid JSON").0;
    doc.field("cells")
        .expect("cells field")
        .seq()
        .expect("cells array")
        .iter()
        .map(|cell| match cell.field("auc").expect("auc field") {
            Value::F64(v) => *v,
            other => panic!("auc should be a float, found {}", other.kind()),
        })
        .collect()
}

#[test]
fn stochastic_sweep_is_byte_identical_at_any_thread_count() {
    let dir = temp_dir("threads");
    let stoch = ["--quantize", "int16", "--stochastic-round", "48879"];
    let baseline = dir.join("t1.json");
    sweep(&baseline, "1", &stoch);
    let golden = read(&baseline);

    for threads in ["2", "4"] {
        let out = dir.join(format!("t{threads}.json"));
        sweep(&out, threads, &stoch);
        assert_eq!(
            cells_section(&read(&out)),
            cells_section(&golden),
            "--threads {threads} changed stochastic-rounding sweep cells"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn any_seed_stays_within_auc_tolerance_of_exact_kernels() {
    let dir = temp_dir("seeds");
    let exact = dir.join("exact.json");
    sweep(&exact, "2", &[]);
    let exact_aucs = aucs(&read(&exact));
    assert!(!exact_aucs.is_empty(), "sweep produced cells");

    for seed in ["7", "3735928559"] {
        let out = dir.join(format!("seed-{seed}.json"));
        sweep(&out, "2", &["--quantize", "int16", "--stochastic-round", seed]);
        let got = aucs(&read(&out));
        assert_eq!(got.len(), exact_aucs.len(), "seed {seed} changed the grid shape");
        for (i, (q, e)) in got.iter().zip(&exact_aucs).enumerate() {
            assert!(
                (q - e).abs() <= 0.05,
                "seed {seed} cell {i}: stochastic AUC {q} drifted from exact {e}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
