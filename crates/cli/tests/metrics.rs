//! Metrics integration tests of `rhmd sweep --metrics`: the observability
//! layer is observe-only, so a sweep's cells must be byte-identical with
//! metrics on or off, at any `--threads N` — and the exported snapshot
//! must be a well-formed document carrying the standard key schema.
//!
//! Like `kill_resume.rs`, these run the real binary via
//! `CARGO_BIN_EXE_rhmd` so they cover the full flag-parsing → engine →
//! export path.

use serde::Value;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The vendored `serde_json::from_str` deserializes into a typed `T`; this
/// passthrough keeps the raw [`Value`] tree so the test can walk arbitrary
/// snapshot keys.
struct Raw(Value);

impl serde::Deserialize for Raw {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        Ok(Raw(value.clone()))
    }
}

fn parse(text: &str) -> Value {
    serde_json::from_str::<Raw>(text).expect("snapshot is valid JSON").0
}

fn as_u64(value: &Value) -> u64 {
    match value {
        Value::U64(n) => *n,
        other => panic!("expected integer, found {}", other.kind()),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rhmd-metrics-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn expect_success(args: &[&str]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_rhmd"))
        .args(args)
        .output()
        .expect("spawn rhmd binary");
    assert_eq!(
        out.status.code(),
        Some(0),
        "`rhmd {}` should exit 0; stderr:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The `"cells": [...]` tail of a sweep report — the part that must be
/// byte-identical between runs (timing and cache stats above it may
/// differ).
fn cells_section(json: &str) -> &str {
    let at = json.find("\"cells\"").expect("report has a cells field");
    &json[at..]
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn sweep(out: &Path, threads: &str, extra: &[&str]) {
    let mut args = vec![
        "sweep",
        "--scale",
        "tiny",
        "--algos",
        "lr,dt",
        "--threads",
        threads,
        "--out",
        out.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    expect_success(&args);
}

#[test]
fn metrics_do_not_change_sweep_results_at_any_thread_count() {
    let dir = temp_dir("determinism");
    let baseline = dir.join("baseline.json");
    sweep(&baseline, "1", &[]);
    let golden = read(&baseline);

    for threads in ["1", "4"] {
        let out = dir.join(format!("with-metrics-{threads}.json"));
        let metrics = dir.join(format!("metrics-{threads}.json"));
        sweep(&out, threads, &["--metrics", metrics.to_str().unwrap()]);
        assert_eq!(
            cells_section(&read(&out)),
            cells_section(&golden),
            "--metrics at --threads {threads} changed the sweep cells"
        );
        assert!(metrics.is_file(), "snapshot written at --threads {threads}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exported_snapshot_carries_the_standard_schema() {
    let dir = temp_dir("schema");
    let out = dir.join("sweep.json");
    let metrics = dir.join("metrics.json");
    sweep(&out, "2", &["--metrics", metrics.to_str().unwrap()]);

    let snap = parse(&read(&metrics));
    as_u64(snap.field("schema_version").expect("schema_version present"));

    let counters = snap.field("counters").expect("counters object");
    for key in rhmd_bench::metrics::STANDARD_COUNTERS {
        counters
            .field(key)
            .unwrap_or_else(|e| panic!("counter '{key}' preregistered: {e}"));
    }
    // A real sweep must actually have recorded work, not just schema keys.
    for key in ["cache.misses", "pool.maps", "ml.models_trained", "trace.programs_executed"] {
        assert!(
            as_u64(counters.field(key).unwrap()) > 0,
            "counter '{key}' should be nonzero after a sweep"
        );
    }

    let gauges = snap.field("gauges").expect("gauges object");
    assert_eq!(
        gauges.field("pool.threads").expect("pool.threads gauge"),
        &Value::F64(2.0)
    );

    let histograms = snap.field("histograms").expect("histograms object");
    for key in rhmd_bench::metrics::STANDARD_HISTOGRAMS {
        let h = histograms
            .field(key)
            .unwrap_or_else(|e| panic!("histogram '{key}' preregistered: {e}"));
        let count = as_u64(h.field("count").unwrap());
        let bucket_sum: u64 = h
            .field("buckets")
            .unwrap()
            .seq()
            .expect("buckets array")
            .iter()
            .map(as_u64)
            .sum();
        assert_eq!(bucket_sum, count, "histogram '{key}' buckets sum to its count");
    }
    let projected = histograms.field("features.project").unwrap();
    assert!(
        as_u64(projected.field("count").unwrap()) > 0,
        "a sweep projects feature windows"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_summary_prints_table_to_stderr_only() {
    let dir = temp_dir("summary");
    let out = dir.join("sweep.json");
    let output = {
        let mut args = vec![
            "sweep", "--scale", "tiny", "--algos", "lr", "--features", "memory", "--threads", "2",
            "--out",
        ];
        args.push(out.to_str().unwrap());
        args.push("--metrics-summary");
        expect_success(&args)
    };
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains(" metrics "), "summary header on stderr:\n{stderr}");
    assert!(stderr.contains("cache.misses"), "summary lists counters:\n{stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!stdout.contains("cache.misses  "), "table stays off stdout");
    std::fs::remove_dir_all(&dir).ok();
}
