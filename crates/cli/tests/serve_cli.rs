//! End-to-end tests of the `rhmd serve` subcommand: the real binary, the
//! real NDJSON protocol, a real model file — over stdin/stdout and over a
//! Unix socket with a SIGTERM mid-stream.

use rhmd_data::{Corpus, CorpusConfig, TracedCorpus};
use rhmd_serve::proto::{Request, Response};
use rhmd_uarch::CoreConfig;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn rhmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rhmd"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rhmd-serve-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains a tiny model with the real CLI and returns its path.
fn train_model(dir: &std::path::Path) -> PathBuf {
    let model = dir.join("model.json");
    let status = rhmd()
        .args(["train", "--scale", "tiny", "--out"])
        .arg(&model)
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "rhmd train failed");
    assert!(model.is_file());
    model
}

/// The NDJSON lines replaying `program` as session `(tenant, session)`.
fn session_lines(traced: &TracedCorpus, program: usize, tenant: &str, session: &str) -> Vec<String> {
    let mut lines: Vec<String> = traced
        .subwindows(program)
        .iter()
        .enumerate()
        .map(|(seq, sub)| {
            serde_json::to_string(&Request::Event {
                tenant: tenant.to_owned(),
                session: session.to_owned(),
                seq: seq as u64,
                window: Box::new(sub.clone()),
                deadline_ms: None,
            })
            .unwrap()
        })
        .collect();
    lines.push(
        serde_json::to_string(&Request::End {
            tenant: tenant.to_owned(),
            session: session.to_owned(),
        })
        .unwrap(),
    );
    lines
}

fn tiny_traced() -> TracedCorpus {
    let config = CorpusConfig::tiny();
    let corpus = Corpus::build(&config);
    TracedCorpus::trace(corpus, config.limits(), CoreConfig::default())
}

#[test]
fn stdio_session_gets_verdict_and_clean_drain_on_eof() {
    let dir = scratch("stdio");
    let model = train_model(&dir);
    let metrics = dir.join("metrics.json");
    let traced = tiny_traced();

    let mut child = rhmd()
        .args(["serve", "--model"])
        .arg(&model)
        .args(["--threads", "2", "--metrics"])
        .arg(&metrics)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        for line in session_lines(&traced, 0, "t0", "s0") {
            writeln!(stdin, "{line}").unwrap();
        }
        writeln!(stdin, "this is not json").unwrap();
    }
    drop(child.stdin.take()); // EOF requests the drain
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success(), "serve must exit 0 on a clean drain");

    let stdout = String::from_utf8(output.stdout).unwrap();
    let mut verdicts = 0;
    let mut errors = 0;
    let mut drained = false;
    for line in stdout.lines() {
        match serde_json::from_str::<Response>(line).unwrap() {
            Response::Verdict(v) => {
                verdicts += 1;
                assert_eq!(v.session, "s0");
                assert!(["malware", "benign", "abstain"].contains(&v.verdict.as_str()));
            }
            Response::Error { .. } => errors += 1,
            Response::Drained(stats) => {
                drained = true;
                assert!(stats.accounted());
                assert_eq!(stats.offered_sessions, 1);
                assert_eq!(stats.shed_sessions, 0);
            }
            _ => {}
        }
    }
    assert_eq!(verdicts, 1, "exactly one verdict line per offered session");
    assert_eq!(errors, 1, "the bad line gets a typed error, not a dead stream");
    assert!(drained, "the drained notice must be flushed before exit");
    assert!(metrics.is_file(), "the metrics snapshot is written on drain");
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn sigterm_mid_stream_drains_gracefully_over_the_socket() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    let dir = scratch("sigterm");
    let model = train_model(&dir);
    let metrics = dir.join("metrics.json");
    let sock = dir.join("serve.sock");
    let traced = tiny_traced();

    let mut child = rhmd()
        .args(["serve", "--model"])
        .arg(&model)
        .args(["--listen"])
        .arg(&sock)
        .args(["--metrics"])
        .arg(&metrics)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stream = {
        let mut tries = 0;
        loop {
            match UnixStream::connect(&sock) {
                Ok(s) => break s,
                Err(_) if tries < 200 => {
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => panic!("serve never bound {}: {e}", sock.display()),
            }
        }
    };
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // One complete session, then a second session left mid-stream when the
    // SIGTERM lands: the drain must finalize it explicitly, not drop it.
    for line in session_lines(&traced, 0, "t0", "done") {
        writeln!(stream, "{line}").unwrap();
    }
    let partial = session_lines(&traced, 1, "t0", "cut");
    for line in &partial[..partial.len() / 2] {
        writeln!(stream, "{line}").unwrap();
    }
    // A stats request doubles as a read barrier: its reply proves the
    // server has ingested every line written above, so the SIGTERM really
    // does land mid-session for "cut".
    writeln!(stream, "{}", serde_json::to_string(&Request::Stats {}).unwrap()).unwrap();
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut verdicts: Vec<(String, String)> = Vec::new();
    let mut drained_stats = None;
    let mut line = String::new();
    loop {
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up early");
        match serde_json::from_str::<Response>(&line).unwrap() {
            Response::Verdict(v) => verdicts.push((v.session, v.verdict)),
            Response::Stats(_) => break,
            _ => {}
        }
    }

    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());

    for line in reader.lines() {
        let Ok(line) = line else { break };
        match serde_json::from_str::<Response>(&line).unwrap() {
            Response::Verdict(v) => verdicts.push((v.session, v.verdict)),
            Response::Drained(stats) => {
                drained_stats = Some(stats);
                break;
            }
            _ => {}
        }
    }
    let status = child.wait().unwrap();
    assert!(status.success(), "SIGTERM must produce a clean (exit 0) drain");

    let stats = drained_stats.expect("drained notice reaches the client");
    assert!(stats.accounted(), "identity after SIGTERM: {stats:?}");
    assert_eq!(stats.offered_sessions, 2);
    assert_eq!(verdicts.len(), 2, "both sessions got verdict lines: {verdicts:?}");
    let cut = verdicts.iter().find(|(s, _)| s == "cut").unwrap();
    assert_eq!(cut.1, "abstain", "the mid-stream session abstains loudly");
    assert!(metrics.is_file(), "metrics snapshot flushed during shutdown");
    assert!(!sock.exists(), "socket file removed on exit");
    std::fs::remove_dir_all(&dir).ok();
}

/// Shutdown must be idempotent: a second (and third) signal landing while
/// the first drain is already in flight — the classic double Ctrl-C, or a
/// process manager escalating SIGTERM → SIGINT — must coalesce into one
/// clean drain, one `Drained` notice, and exit 0.
#[cfg(unix)]
#[test]
fn repeated_signals_coalesce_into_one_clean_drain() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    let dir = scratch("double-signal");
    let model = train_model(&dir);
    let sock = dir.join("serve.sock");
    let traced = tiny_traced();

    let child = rhmd()
        .args(["serve", "--model"])
        .arg(&model)
        .args(["--listen"])
        .arg(&sock)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut child = child;
    let mut stream = {
        let mut tries = 0;
        loop {
            match UnixStream::connect(&sock) {
                Ok(s) => break s,
                Err(_) if tries < 200 => {
                    tries += 1;
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => panic!("serve never bound {}: {e}", sock.display()),
            }
        }
    };
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // A session left mid-stream so the signals land with real state to
    // drain, plus a stats barrier proving the server ingested it all.
    let partial = session_lines(&traced, 0, "t0", "cut");
    for line in &partial[..partial.len() / 2] {
        writeln!(stream, "{line}").unwrap();
    }
    writeln!(stream, "{}", serde_json::to_string(&Request::Stats {}).unwrap()).unwrap();
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    loop {
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up early");
        if matches!(serde_json::from_str::<Response>(&line).unwrap(), Response::Stats(_)) {
            break;
        }
    }

    let pid = child.id().to_string();
    for sig in ["-TERM", "-TERM", "-INT"] {
        let kill = Command::new("kill").args([sig, &pid]).status().unwrap();
        assert!(kill.success());
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut verdicts = 0;
    let mut drained = 0;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        match serde_json::from_str::<Response>(&line).unwrap() {
            Response::Verdict(_) => verdicts += 1,
            Response::Drained(stats) => {
                drained += 1;
                assert!(stats.accounted(), "identity after signal storm: {stats:?}");
                assert_eq!(stats.offered_sessions, 1);
            }
            _ => {}
        }
    }
    let status = child.wait().unwrap();
    assert!(status.success(), "a signal storm still exits 0, not via abort");
    assert_eq!(drained, 1, "exactly one drain despite three signals");
    assert_eq!(verdicts, 1, "the mid-stream session is finalized exactly once");
    assert!(!sock.exists(), "socket file removed on exit");
    std::fs::remove_dir_all(&dir).ok();
}
