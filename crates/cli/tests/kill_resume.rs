//! Kill-and-resume integration tests of `rhmd sweep` checkpointing: a run
//! SIGKILLed mid-sweep and resumed from its checkpoint directory writes a
//! report whose cells are bit-identical to an uninterrupted run — at a
//! different `--threads`, and under injected I/O faults.
//!
//! These run the real binary via `CARGO_BIN_EXE_rhmd`, like
//! `cli_errors.rs`, so they cover the whole path a real crash exercises:
//! journal replay, torn trailing lines, flag validation, exit codes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rhmd-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rhmd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rhmd"))
        .args(args)
        .output()
        .expect("spawn rhmd binary")
}

fn expect_success(args: &[&str]) -> Output {
    let out = rhmd(args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "`rhmd {}` should exit 0; stderr:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn expect_failure(args: &[&str], env: &[(&str, &str)]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rhmd"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn rhmd binary");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(
        out.status.code(),
        Some(2),
        "`rhmd {}` should exit 2; stderr:\n{stderr}",
        args.join(" ")
    );
    assert!(stderr.contains("error:"), "{stderr}");
    stderr
}

/// The `"cells": [...]` tail of a sweep report — the part that must be
/// bit-identical between runs (timing and cache stats above it may differ).
fn cells_section(json: &str) -> &str {
    let at = json.find("\"cells\"").expect("report has a cells field");
    &json[at..]
}

fn read_report(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn sigkill_mid_sweep_then_resume_matches_uninterrupted_run() {
    let dir = temp_dir("sweep");
    let ckpt = dir.join("ckpt");
    let clean_out = dir.join("clean.json");
    let resumed_out = dir.join("resumed.json");
    let scale = ["--scale", "tiny"];

    // Golden: one uninterrupted run, 3 threads.
    expect_success(&[
        "sweep", scale[0], scale[1], "--threads", "3", "--out",
        clean_out.to_str().unwrap(),
    ]);

    // Victim: checkpointed run, SIGKILLed once the journal shows progress
    // (no graceful shutdown — exactly what the journal must survive).
    let mut child = Command::new(env!("CARGO_BIN_EXE_rhmd"))
        .args(["sweep", scale[0], scale[1], "--threads", "2", "--checkpoint"])
        .arg(&ckpt)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn checkpointed sweep");
    let journal = ckpt.join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let lines = std::fs::read_to_string(&journal)
            .map(|s| s.lines().count())
            .unwrap_or(0);
        // Enough progress that the resume has real work to skip; kill
        // before the 15-cell grid finishes when the race allows it.
        if lines >= 3 || child.try_wait().expect("poll child").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "sweep never journaled a cell");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().ok();
    child.wait().expect("reap child");

    // Resume at yet another thread count: must exit 0, skip the journaled
    // cells, and produce the same cells as the golden run.
    let out = expect_success(&[
        "sweep", scale[0], scale[1], "--threads", "1", "--resume",
        ckpt.to_str().unwrap(), "--out", resumed_out.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resuming"), "resume should say so:\n{stderr}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("(resumed)"),
        "at least one cell should come from the journal"
    );

    let clean = read_report(&clean_out);
    let resumed = read_report(&resumed_out);
    assert_eq!(
        cells_section(&clean),
        cells_section(&resumed),
        "resumed cells must be bit-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_completes_under_transient_fault_injection() {
    let dir = temp_dir("faults");
    let ckpt = dir.join("ckpt");
    let report = dir.join("report.json");
    let out = Command::new(env!("CARGO_BIN_EXE_rhmd"))
        .args([
            "sweep", "--scale", "tiny", "--algos", "lr,dt", "--features",
            "instructions", "--checkpoint",
        ])
        .arg(&ckpt)
        .arg("--out")
        .arg(&report)
        .env("RHMD_IO_FAULTS", "transient:0.15,short:0.1,seed:3")
        .output()
        .expect("spawn rhmd binary");
    assert_eq!(
        out.status.code(),
        Some(0),
        "retry layer must absorb a 15% transient rate; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(report.is_file(), "report must land despite the fault plane");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn permanently_failing_io_exits_2_with_the_operation_and_path() {
    let dir = temp_dir("fatal");
    let ckpt = dir.join("ckpt");
    let stderr = expect_failure(
        &[
            "sweep", "--scale", "tiny", "--algos", "lr", "--features",
            "instructions", "--checkpoint", ckpt.to_str().unwrap(),
        ],
        &[("RHMD_IO_FAULTS", "transient:1.0")],
    );
    assert!(
        stderr.contains("transient I/O error persisted"),
        "must say the retry budget was exhausted:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_mismatched_config_exits_2_quoting_both_configs() {
    let dir = temp_dir("mismatch");
    let ckpt = dir.join("ckpt");
    expect_success(&[
        "sweep", "--scale", "tiny", "--algos", "lr", "--features",
        "instructions", "--checkpoint", ckpt.to_str().unwrap(),
    ]);
    let stderr = expect_failure(
        &[
            "sweep", "--scale", "tiny", "--algos", "dt", "--features",
            "instructions", "--resume", ckpt.to_str().unwrap(),
        ],
        &[],
    );
    assert!(stderr.contains("algos=LR"), "must quote the stored config:\n{stderr}");
    assert!(stderr.contains("algos=DT"), "must quote the requested config:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_and_resume_flags_are_mutually_exclusive() {
    let stderr = expect_failure(&["sweep", "--checkpoint", "a", "--resume", "b"], &[]);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}

#[test]
fn resume_of_nonexistent_directory_exits_2_and_names_it() {
    let stderr = expect_failure(&["sweep", "--resume", "/nonexistent/ckpt"], &[]);
    assert!(stderr.contains("/nonexistent/ckpt"), "{stderr}");
    assert!(stderr.contains("does not exist"), "{stderr}");
}
