//! Error-path integration tests: every malformed invocation must exit with
//! code 2 and print an actionable message to stderr — naming the flag or
//! file at fault — before any expensive corpus tracing starts.
//!
//! These run the real binary via `CARGO_BIN_EXE_rhmd`, so they cover the
//! full path: argument parsing, flag validation order, error rendering,
//! and the process exit code.

use std::process::{Command, Output};

fn rhmd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rhmd"))
        .args(args)
        .output()
        .expect("spawn rhmd binary")
}

/// Asserts exit code 2 and returns stderr for message checks.
fn expect_failure(args: &[&str]) -> String {
    let out = rhmd(args);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(
        out.status.code(),
        Some(2),
        "`rhmd {}` should exit 2; stderr:\n{stderr}",
        args.join(" ")
    );
    assert!(
        stderr.contains("error:"),
        "stderr should lead with an error line:\n{stderr}"
    );
    assert!(
        stderr.contains("USAGE:"),
        "stderr should include usage after the error:\n{stderr}"
    );
    stderr
}

#[test]
fn unknown_command_exits_2_and_names_it() {
    let stderr = expect_failure(&["frobnicate"]);
    assert!(stderr.contains("unknown command 'frobnicate'"), "{stderr}");
}

#[test]
fn no_command_exits_2() {
    let stderr = expect_failure(&[]);
    assert!(stderr.contains("no command given"), "{stderr}");
}

#[test]
fn flag_without_value_exits_2_and_names_the_flag() {
    let stderr = expect_failure(&["train", "--algo"]);
    assert!(stderr.contains("flag --algo needs a value"), "{stderr}");
}

#[test]
fn stray_positional_exits_2() {
    let stderr = expect_failure(&["train", "lr"]);
    assert!(stderr.contains("unexpected positional argument 'lr'"), "{stderr}");
}

#[test]
fn evaluate_without_model_exits_2() {
    let stderr = expect_failure(&["evaluate"]);
    assert!(stderr.contains("evaluate needs --model"), "{stderr}");
}

// --fault validation happens before the model file is even opened, so these
// run in milliseconds and need no fixture file.

#[test]
fn unknown_fault_kind_exits_2_and_lists_the_valid_kinds() {
    let stderr = expect_failure(&["evaluate", "--model", "x.json", "--fault", "gamma:0.1"]);
    assert!(stderr.contains("cannot parse --fault"), "{stderr}");
    assert!(stderr.contains("unknown fault kind 'gamma'"), "{stderr}");
    assert!(
        stderr.contains("noise|drop|multiplex|burst|saturate|wrap"),
        "the message should list what IS accepted:\n{stderr}"
    );
}

#[test]
fn fault_without_intensity_exits_2() {
    let stderr = expect_failure(&["evaluate", "--model", "x.json", "--fault", "noise"]);
    assert!(stderr.contains("expected kind:intensity"), "{stderr}");
}

#[test]
fn non_numeric_fault_intensity_exits_2() {
    let stderr = expect_failure(&["evaluate", "--model", "x.json", "--fault", "noise:loud"]);
    assert!(stderr.contains("noise sigma must be a number, got 'loud'"), "{stderr}");
}

#[test]
fn out_of_range_fault_rate_exits_2() {
    let stderr = expect_failure(&["evaluate", "--model", "x.json", "--fault", "drop:2.5"]);
    assert!(stderr.contains("drop rate must be in [0, 1], got 2.5"), "{stderr}");
}

#[test]
fn out_of_range_counter_width_exits_2() {
    let stderr = expect_failure(&["evaluate", "--model", "x.json", "--fault", "wrap:80"]);
    assert!(stderr.contains("counter width must be 1..=64 bits, got 80"), "{stderr}");
}

#[test]
fn missing_model_file_exits_2_and_names_the_path() {
    let stderr = expect_failure(&["evaluate", "--model", "/nonexistent/model.json"]);
    assert!(stderr.contains("/nonexistent/model.json"), "{stderr}");
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn malformed_model_file_exits_2_as_a_parse_error() {
    let dir = std::env::temp_dir().join("rhmd-cli-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.json");
    std::fs::write(&path, "{ \"version\": 1, \"spec\": ").unwrap();
    let stderr = expect_failure(&["evaluate", "--model", path.to_str().unwrap()]);
    assert!(stderr.contains("cannot parse"), "{stderr}");
    assert!(stderr.contains("garbage.json"), "{stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_shape_model_file_exits_2() {
    // Valid JSON, wrong schema: still a parse error naming the file, never
    // a panic or a silent default.
    let dir = std::env::temp_dir().join("rhmd-cli-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wrong-shape.json");
    std::fs::write(&path, "{\"kind\": \"not-a-model\"}").unwrap();
    let stderr = expect_failure(&["evaluate", "--model", path.to_str().unwrap()]);
    assert!(stderr.contains("cannot parse"), "{stderr}");
    assert!(stderr.contains("wrong-shape.json"), "{stderr}");
    std::fs::remove_file(&path).ok();
}

// --threads is validated before tracing starts in every command that
// builds a workbench.

#[test]
fn zero_threads_exits_2() {
    let stderr = expect_failure(&["train", "--threads", "0"]);
    assert!(stderr.contains("cannot parse --threads"), "{stderr}");
    assert!(stderr.contains("at least 1"), "{stderr}");
}

#[test]
fn non_numeric_threads_exits_2() {
    let stderr = expect_failure(&["train", "--threads", "many"]);
    assert!(stderr.contains("invalid value 'many' (want a positive integer)"), "{stderr}");
}

#[test]
fn unknown_scale_exits_2() {
    let stderr = expect_failure(&["corpus", "--scale", "gigantic"]);
    assert!(stderr.contains("invalid configuration"), "{stderr}");
}

#[test]
fn unknown_feature_exits_2_and_lists_the_valid_ones() {
    let stderr = expect_failure(&["train", "--feature", "thermal"]);
    assert!(stderr.contains("thermal"), "{stderr}");
}

/// The success path really does exit 0 (anchors the code-2 assertions).
#[test]
fn corpus_tiny_exits_0() {
    let out = rhmd(&["corpus", "--scale", "tiny"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("family"));
}
