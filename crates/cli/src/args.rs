//! A minimal `--flag value` argument parser (the approved dependency set
//! has no CLI framework, and the surface here is small).

use rhmd_core::RhmdError;
use std::collections::BTreeMap;

/// Flags that take no value: their presence alone means `true`.
const BOOLEAN_FLAGS: &[&str] = &["metrics-summary"];

/// Parsed command line: a subcommand, an optional action, plus `--key
/// value` flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    /// An optional second positional, e.g. `build` in `rhmd corpus build`.
    /// Commands without actions reject it via [`Args::expect_no_action`].
    pub action: Option<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns an error for flags without values or stray positionals.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, RhmdError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                args.command = iter.next();
                if let Some(second) = iter.peek() {
                    if !second.starts_with("--") {
                        args.action = iter.next();
                    }
                }
            }
        }
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(RhmdError::config(format!(
                    "unexpected positional argument '{token}'"
                )));
            };
            if BOOLEAN_FLAGS.contains(&key) {
                args.flags.insert(key.to_owned(), String::new());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| RhmdError::config(format!("flag --{key} needs a value")))?;
            args.flags.insert(key.to_owned(), value);
        }
        Ok(args)
    }

    /// Rejects a stray action positional for commands that take none.
    ///
    /// # Errors
    ///
    /// Returns a config error naming the offending positional.
    pub fn expect_no_action(&self) -> Result<(), RhmdError> {
        match &self.action {
            None => Ok(()),
            Some(action) => Err(RhmdError::config(format!(
                "unexpected positional argument '{action}'"
            ))),
        }
    }

    /// Whether a boolean flag (one of [`BOOLEAN_FLAGS`]) was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Raw flag lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// String flag with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_owned()
    }

    /// Parsed numeric/typed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns an error naming the flag when parsing fails.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, RhmdError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| RhmdError::parse(format!("--{key}"), format!("invalid value '{v}'"))),
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, RhmdError> {
        Args::parse(tokens.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_command_and_flags() {
        let args = parse(&["train", "--algo", "lr", "--period", "10000"]).unwrap();
        assert_eq!(args.command.as_deref(), Some("train"));
        assert_eq!(args.get("algo"), Some("lr"));
        assert_eq!(args.parse_or("period", 0u32).unwrap(), 10_000);
    }

    #[test]
    fn defaults_apply() {
        let args = parse(&["corpus"]).unwrap();
        assert_eq!(args.str_or("scale", "small"), "small");
        assert_eq!(args.parse_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["train", "--algo"]).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let args = parse(&["sweep", "--metrics-summary", "--algos", "lr"]).unwrap();
        assert!(args.flag("metrics-summary"));
        assert_eq!(args.get("algos"), Some("lr"));
        assert!(!parse(&["sweep"]).unwrap().flag("metrics-summary"));
    }

    #[test]
    fn second_positional_is_an_action_commands_may_reject() {
        let args = parse(&["corpus", "build", "--store", "d"]).unwrap();
        assert_eq!(args.command.as_deref(), Some("corpus"));
        assert_eq!(args.action.as_deref(), Some("build"));
        assert!(args.expect_no_action().is_err());
        assert!(parse(&["train"]).unwrap().expect_no_action().is_ok());
    }

    #[test]
    fn third_positional_is_an_error() {
        assert!(parse(&["corpus", "build", "now"]).is_err());
    }

    #[test]
    fn bad_parse_names_flag() {
        let args = parse(&["x", "--period", "ten"]).unwrap();
        let err = args.parse_or("period", 0u32).unwrap_err();
        assert!(matches!(err, RhmdError::Parse { .. }));
        assert!(err.to_string().contains("--period"));
    }
}
