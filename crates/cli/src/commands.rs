//! CLI subcommand implementations.

use crate::args::Args;
use crate::persist::{load_hmd, save_hmd};
use rhmd_bench::ckpt::{Journal, Manifest};
use rhmd_bench::durable::Durable;
use rhmd_bench::metrics::MetricsOptions;
use rhmd_bench::par::{Evaluator, EvaluatorBuilder, Pool, WatchdogConfig};
use rhmd_core::evasion::{evade_corpus, plan_evasion, EvasionConfig, Strategy};
use rhmd_core::hmd::Hmd;
use rhmd_core::retrain::detection_quality;
use rhmd_core::reveng;
use rhmd_core::rhmd::{build_pool, pool_specs};
use rhmd_core::verdict::VerdictPolicy;
use rhmd_core::RhmdError;
use rhmd_data::{parallel_map_threads, Corpus, CorpusConfig, CorpusStore, Splits, StoreBuilder, TracedCorpus};
use rhmd_features::pipeline::trace_subwindows;
use rhmd_features::select::select_top_delta_opcodes;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_features::window::RawWindow;
use rhmd_ml::metrics::{auc, best_accuracy_threshold};
use rhmd_ml::model::score_all;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_trace::inject::Placement;
use rhmd_uarch::faults::FaultConfig;
use rhmd_uarch::CoreConfig;
use std::path::{Path, PathBuf};

fn scale_config(name: &str) -> Result<CorpusConfig, RhmdError> {
    CorpusConfig::from_scale_name(name).map_err(RhmdError::Config)
}

fn parse_kind(name: &str) -> Result<FeatureKind, RhmdError> {
    match name {
        "instructions" => Ok(FeatureKind::Instructions),
        "memory" => Ok(FeatureKind::Memory),
        "architectural" => Ok(FeatureKind::Architectural),
        other => Err(RhmdError::config(format!(
            "unknown feature '{other}' (instructions|memory|architectural)"
        ))),
    }
}

/// Parses `--features f,g` (default: all three kinds).
fn parse_kind_list(args: &Args) -> Result<Vec<FeatureKind>, RhmdError> {
    args.str_or("features", "instructions,memory,architectural")
        .split(',')
        .map(|k| parse_kind(k.trim()))
        .collect()
}

/// Parses `--periods 10000,5000` (default: 10000).
fn parse_period_list(args: &Args) -> Result<Vec<u32>, RhmdError> {
    args.str_or("periods", "10000")
        .split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| RhmdError::parse("--periods", format!("bad period '{p}'")))
        })
        .collect()
}

fn parse_algorithm(name: &str) -> Result<Algorithm, RhmdError> {
    match name {
        "lr" => Ok(Algorithm::Lr),
        "dt" => Ok(Algorithm::Dt),
        "svm" => Ok(Algorithm::Svm),
        "nn" => Ok(Algorithm::Nn),
        "rf" => Ok(Algorithm::Rf),
        other => Err(RhmdError::config(format!(
            "unknown algorithm '{other}' (lr|dt|svm|nn|rf)"
        ))),
    }
}

/// Parses a `--fault kind:intensity` specification, e.g. `noise:0.1`,
/// `drop:0.3`, `multiplex:0.25`, `burst:0.05`, `saturate:12`, `wrap:12`.
fn parse_fault(value: &str) -> Result<FaultConfig, RhmdError> {
    let bad = |message: String| RhmdError::parse("--fault", message);
    let (kind, level) = value
        .split_once(':')
        .ok_or_else(|| bad(format!("expected kind:intensity, got '{value}'")))?;
    let rate = |what: &str| -> Result<f64, RhmdError> {
        let r: f64 = level
            .parse()
            .map_err(|_| bad(format!("{what} must be a number, got '{level}'")))?;
        if !(0.0..=1.0).contains(&r) {
            return Err(bad(format!("{what} must be in [0, 1], got {r}")));
        }
        Ok(r)
    };
    let bits = || -> Result<u32, RhmdError> {
        let b: u32 = level
            .parse()
            .map_err(|_| bad(format!("counter width must be an integer, got '{level}'")))?;
        if !(1..=64).contains(&b) {
            return Err(bad(format!("counter width must be 1..=64 bits, got {b}")));
        }
        Ok(b)
    };
    match kind {
        "noise" => {
            let sigma: f64 = level
                .parse()
                .map_err(|_| bad(format!("noise sigma must be a number, got '{level}'")))?;
            if !sigma.is_finite() || sigma < 0.0 {
                return Err(bad(format!("noise sigma must be >= 0, got {sigma}")));
            }
            Ok(FaultConfig::noise(sigma))
        }
        "drop" => Ok(FaultConfig::dropping(rate("drop rate")?)),
        "multiplex" => Ok(FaultConfig::multiplexed(rate("multiplex rate")?)),
        "burst" => Ok(FaultConfig::bursty(rate("burst rate")?, 4)),
        "saturate" => Ok(FaultConfig::saturating(bits()?)),
        "wrap" => Ok(FaultConfig::wrapping(bits()?)),
        other => Err(bad(format!(
            "unknown fault kind '{other}' (noise|drop|multiplex|burst|saturate|wrap)"
        ))),
    }
}

/// Parses `--quantize int4|int8|int16` and `--stochastic-round <seed>` into a
/// quantization config for the LR/SVM/NN families. `--stochastic-round`
/// alone implies `--quantize int16` (the width whose accuracy cost is
/// negligible); neither flag means exact `f64` models.
fn parse_quant(args: &Args) -> Result<Option<rhmd_ml::QuantConfig>, RhmdError> {
    let bits = match args.get("quantize") {
        None => None,
        Some("int4") => Some(rhmd_ml::QuantBits::Int4),
        Some("int8") => Some(rhmd_ml::QuantBits::Int8),
        Some("int16") => Some(rhmd_ml::QuantBits::Int16),
        Some(other) => {
            return Err(RhmdError::config(format!(
                "unknown quantization '{other}' (int4|int8|int16)"
            )))
        }
    };
    let rounding = match args.get("stochastic-round") {
        None => rhmd_ml::Rounding::Nearest,
        Some(v) => {
            let seed: u64 = v.parse().map_err(|_| {
                RhmdError::parse(
                    "--stochastic-round",
                    format!("invalid seed '{v}' (want an unsigned integer)"),
                )
            })?;
            rhmd_ml::Rounding::Stochastic { seed }
        }
    };
    Ok(match (bits, args.get("stochastic-round").is_some()) {
        (None, false) => None,
        (bits, _) => Some(rhmd_ml::QuantConfig {
            bits: bits.unwrap_or(rhmd_ml::QuantBits::Int16),
            rounding,
        }),
    })
}

/// Human/config-hash description of a quantization config (`none`,
/// `int8/nearest`, `int16/stochastic:42`, ...).
fn quant_label(quant: Option<rhmd_ml::QuantConfig>) -> String {
    match quant {
        None => "none".to_owned(),
        Some(q) => match q.rounding {
            rhmd_ml::Rounding::Nearest => format!("{}/nearest", q.bits.name()),
            rhmd_ml::Rounding::Stochastic { seed } => {
                format!("{}/stochastic:{seed}", q.bits.name())
            }
        },
    }
}

/// Parses `--threads N` (default: the machine's available parallelism).
/// Results are bit-identical at any value; threads only change wall-clock.
fn parse_pool(args: &Args) -> Result<Pool, RhmdError> {
    match args.get("threads") {
        None => Ok(Pool::available()),
        Some(v) => {
            let n: usize = v.parse().map_err(|_| {
                RhmdError::parse("--threads", format!("invalid value '{v}' (want a positive integer)"))
            })?;
            if n == 0 {
                return Err(RhmdError::parse("--threads", "must be at least 1"));
            }
            Ok(Pool::new(n))
        }
    }
}

/// Parsed `--checkpoint` / `--resume` / `--checkpoint-every` flags.
struct CheckpointArgs {
    dir: PathBuf,
    resume_only: bool,
    every: usize,
}

/// Parses the checkpoint flags. `--checkpoint <dir>` creates the directory
/// (auto-resuming when it already holds a manifest); `--resume <dir>`
/// insists the directory exists. Validation runs before any tracing so a
/// bad flag fails in milliseconds.
fn parse_checkpoint(args: &Args) -> Result<Option<CheckpointArgs>, RhmdError> {
    let every: usize = args.parse_or("checkpoint-every", 1)?;
    if every == 0 {
        return Err(RhmdError::parse("--checkpoint-every", "must be at least 1"));
    }
    match (args.get("checkpoint"), args.get("resume")) {
        (Some(_), Some(_)) => Err(RhmdError::config(
            "--checkpoint and --resume are mutually exclusive \
             (--checkpoint auto-resumes when the directory already has a manifest)",
        )),
        (Some(d), None) => Ok(Some(CheckpointArgs {
            dir: PathBuf::from(d),
            resume_only: false,
            every,
        })),
        (None, Some(d)) => {
            let dir = PathBuf::from(d);
            if !dir.is_dir() {
                return Err(RhmdError::io(
                    d.to_owned(),
                    "checkpoint directory does not exist; \
                     pass the directory a previous --checkpoint run created",
                ));
            }
            Ok(Some(CheckpointArgs {
                dir,
                resume_only: true,
                every,
            }))
        }
        (None, None) => {
            if args.get("checkpoint-every").is_some() {
                return Err(RhmdError::config(
                    "--checkpoint-every requires --checkpoint or --resume",
                ));
            }
            Ok(None)
        }
    }
}

/// Parses `--task-deadline <seconds>` into a pool watchdog configuration.
fn parse_deadline(args: &Args) -> Result<Option<WatchdogConfig>, RhmdError> {
    match args.get("task-deadline") {
        None => Ok(None),
        Some(v) => {
            let secs: u64 = v.parse().map_err(|_| {
                RhmdError::parse(
                    "--task-deadline",
                    format!("invalid value '{v}' (want seconds, a positive integer)"),
                )
            })?;
            if secs == 0 {
                return Err(RhmdError::parse("--task-deadline", "must be at least 1 second"));
            }
            Ok(Some(WatchdogConfig::from_secs(secs)))
        }
    }
}

/// Parses `--metrics <path>` / `--metrics-summary` into [`MetricsOptions`].
fn parse_metrics(args: &Args) -> MetricsOptions {
    MetricsOptions::new(args.get("metrics").map(PathBuf::from), args.flag("metrics-summary"))
}

/// Exports the engine's metrics snapshot (`--metrics`) and prints the
/// stderr summary table (`--metrics-summary`) once a command finishes.
/// A no-op when neither flag was given.
fn finish_metrics(metrics: &MetricsOptions, engine: &Evaluator<'_>) -> Result<(), RhmdError> {
    engine.export_metrics()?;
    if let Some(path) = metrics.path() {
        eprintln!("[metrics] snapshot written to {}", path.display());
    }
    metrics.print_summary();
    Ok(())
}

/// Where the evaluation engine's feature rows come from: a live in-RAM
/// trace, or an opened on-disk corpus store (`--corpus-store`).
enum Backing {
    Live(TracedCorpus),
    Store(CorpusStore),
}

struct Workbench {
    backing: Backing,
    splits: Splits,
    opcodes: Vec<rhmd_trace::Opcode>,
    trainer: TrainerConfig,
    pool: Pool,
    seed: u64,
}

impl Workbench {
    /// A parallel evaluation-engine builder over this workbench's data
    /// source; commands add a recorder / watchdog / checkpoint journal as
    /// their flags demand, then `.build()`.
    fn evaluator(&self) -> EvaluatorBuilder<'_> {
        match &self.backing {
            Backing::Live(traced) => Evaluator::builder(traced, self.seed),
            Backing::Store(store) => Evaluator::builder_from_store(store, self.seed),
        }
        .pool(self.pool)
    }

    /// The live traced corpus, for paths that need raw subwindows (attack,
    /// defend, fault injection); a typed error in store mode.
    fn traced(&self) -> Result<&TracedCorpus, RhmdError> {
        match &self.backing {
            Backing::Live(traced) => Ok(traced),
            Backing::Store(store) => Err(RhmdError::config(format!(
                "this command needs raw traces, which the corpus store at {} \
                 does not retain; rerun without --corpus-store",
                store.dir().display()
            ))),
        }
    }

    /// In store mode, insists `spec` was built into the store so a missing
    /// shard fails with a typed error before any evaluation; live mode can
    /// project any spec.
    fn require_spec(&self, spec: &FeatureSpec) -> Result<(), RhmdError> {
        match &self.backing {
            Backing::Live(_) => Ok(()),
            Backing::Store(store) => {
                if store.has_spec(spec) {
                    return Ok(());
                }
                let stored: Vec<String> = store.specs().map(FeatureSpec::label).collect();
                Err(RhmdError::config(format!(
                    "the corpus store at {} was not built with feature {} \
                     (stored: {}); rebuild with: rhmd corpus build --store {} \
                     --features ... --periods ...",
                    store.dir().display(),
                    spec.label(),
                    stored.join(", "),
                    store.dir().display(),
                )))
            }
        }
    }

    /// Checkpoint-summary tag for the data source: `None` for live
    /// generation (summaries stay byte-compatible with older journals),
    /// the store identity otherwise, so a sweep journal written from one
    /// store is never resumed against another.
    fn source_tag(&self) -> Option<String> {
        match &self.backing {
            Backing::Live(_) => None,
            Backing::Store(store) => Some(format!("store:{:016x}", store.identity())),
        }
    }
}

/// Selects the instruction-feature opcodes exactly as the live workbench
/// does — top-delta opcodes over the victim-train subwindows — without
/// keeping the whole corpus traced in RAM.
fn select_opcodes(
    corpus: &Corpus,
    splits: &Splits,
    config: &CorpusConfig,
    threads: usize,
) -> Vec<rhmd_trace::Opcode> {
    let labels = corpus.labels();
    let windows: Vec<Vec<RawWindow>> = parallel_map_threads(threads, &splits.victim_train, |&i| {
        trace_subwindows(corpus.program(i), config.limits(), CoreConfig::default())
    });
    let collect = |want: bool| -> Vec<RawWindow> {
        splits
            .victim_train
            .iter()
            .zip(&windows)
            .filter(|&(&i, _)| labels[i] == want)
            .flat_map(|(_, w)| w.iter().cloned())
            .collect()
    };
    select_top_delta_opcodes(&collect(true), &collect(false), 16)
}

fn workbench(args: &Args) -> Result<Workbench, RhmdError> {
    if let Some(dir) = args.get("corpus-store") {
        return store_workbench(args, Path::new(dir));
    }
    let config = scale_config(&args.str_or("scale", "small"))?;
    let pool = parse_pool(args)?;
    eprintln!(
        "[rhmd] building + tracing {} programs ({} threads) ...",
        config.total_programs(),
        pool.threads()
    );
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace_threads(
        corpus,
        config.limits(),
        CoreConfig::default(),
        pool.threads(),
    );
    let labels = traced.corpus().labels();
    let collect = |want: bool| -> Vec<_> {
        splits
            .victim_train
            .iter()
            .filter(|&&i| labels[i] == want)
            .flat_map(|&i| traced.subwindows(i).to_vec())
            .collect()
    };
    let opcodes = select_top_delta_opcodes(&collect(true), &collect(false), 16);
    let trainer = TrainerConfig {
        quant: parse_quant(args)?,
        ..TrainerConfig::with_seed(config.seed)
    };
    Ok(Workbench {
        backing: Backing::Live(traced),
        splits,
        opcodes,
        trainer,
        pool,
        seed: config.seed,
    })
}

/// `--corpus-store DIR`: open the mmap'd store instead of regenerating and
/// re-tracing the corpus. Splits, seed, and the selected opcodes all come
/// from the store so results are byte-identical to a live run over the
/// same configuration.
fn store_workbench(args: &Args, dir: &Path) -> Result<Workbench, RhmdError> {
    let pool = parse_pool(args)?;
    let store = CorpusStore::open(dir)?;
    let config = *store.config();
    if let Some(scale) = args.get("scale") {
        if scale_config(scale)? != config {
            return Err(RhmdError::config(format!(
                "--scale {scale} does not match the corpus store at {} \
                 ({} programs, seed {:#x}); drop --scale or rebuild the store",
                dir.display(),
                config.total_programs(),
                config.seed
            )));
        }
    }
    eprintln!(
        "[rhmd] corpus store {}: {} programs, {} shard(s), dedup ratio {:.2} ({} threads)",
        dir.display(),
        store.manifest().len(),
        store.manifest().shards.len(),
        store.manifest().dedup_ratio(),
        pool.threads()
    );
    let splits = Splits::from_strata(store.strata(), config.seed);
    let opcodes = store
        .specs()
        .find(|s| !s.opcodes.is_empty())
        .map(|s| s.opcodes.clone())
        .unwrap_or_default();
    let trainer = TrainerConfig {
        quant: parse_quant(args)?,
        ..TrainerConfig::with_seed(config.seed)
    };
    Ok(Workbench {
        backing: Backing::Store(store),
        splits,
        opcodes,
        trainer,
        pool,
        seed: config.seed,
    })
}

/// `rhmd corpus [--scale s]` — build the corpus and print a summary; or
/// `rhmd corpus build --store DIR` — build the on-disk feature-shard store.
pub fn corpus(args: &Args) -> Result<(), RhmdError> {
    match args.action.as_deref() {
        Some("build") => return corpus_build(args),
        Some(other) => {
            return Err(RhmdError::config(format!(
                "unknown corpus action '{other}' (try: rhmd corpus build --store DIR)"
            )))
        }
        None => {}
    }
    let config = scale_config(&args.str_or("scale", "small"))?;
    let corpus = Corpus::build(&config);
    println!("{corpus}");
    let mut by_family: std::collections::BTreeMap<u32, (String, usize, u64)> =
        std::collections::BTreeMap::new();
    for p in corpus.programs() {
        let entry = by_family.entry(p.family).or_insert_with(|| {
            let name = p.name.split('-').next().unwrap_or("?").to_owned();
            (name, 0, 0)
        });
        entry.1 += 1;
        entry.2 += p.static_instruction_count();
    }
    println!("{:>12} {:>8} {:>16}", "family", "programs", "avg static instr");
    for (_, (name, count, instrs)) in by_family {
        println!("{name:>12} {count:>8} {:>16}", instrs / count as u64);
    }
    Ok(())
}

/// `rhmd corpus build --store DIR [--scale s] [--features f,g]
/// [--periods 10000,5000] [--threads n] [--chunk n]` — generate and trace
/// the corpus once into mmap-able feature shards under `DIR`.
///
/// Opcode selection replicates the live workbench (top-delta opcodes over
/// the victim-train subwindows), so `--corpus-store DIR` runs of
/// `train`/`evaluate`/`sweep` are byte-identical to live generation.
/// Builds are checkpointed per chunk: rerunning over an interrupted (or
/// finished) directory resumes instead of re-tracing.
fn corpus_build(args: &Args) -> Result<(), RhmdError> {
    let dir = args.get("store").ok_or_else(|| {
        RhmdError::config("corpus build needs --store <dir> (the shard directory to create)")
    })?;
    let config = scale_config(&args.str_or("scale", "small"))?;
    let pool = parse_pool(args)?;
    let kinds = parse_kind_list(args)?;
    let periods = parse_period_list(args)?;
    let chunk: usize = args.parse_or("chunk", 16)?;
    if chunk == 0 {
        return Err(RhmdError::parse("--chunk", "must be at least 1"));
    }
    eprintln!(
        "[rhmd] building {} programs and selecting opcodes ({} threads) ...",
        config.total_programs(),
        pool.threads()
    );
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let opcodes = select_opcodes(&corpus, &splits, &config, pool.threads());
    let mut specs = Vec::new();
    for &period in &periods {
        for &kind in &kinds {
            specs.push(FeatureSpec::new(kind, period, opcodes.clone()));
        }
    }
    eprintln!(
        "[rhmd] tracing into {} shard(s) under {dir} ...",
        specs.len()
    );
    let started = std::time::Instant::now();
    let summary = StoreBuilder::new(Path::new(dir), config)
        .specs(specs)
        .threads(pool.threads())
        .chunk(chunk)
        .with_corpus(corpus)
        .build()?;
    println!(
        "corpus store built at {dir} in {:.2}s",
        started.elapsed().as_secs_f64()
    );
    println!(
        "  {} programs ({} canonical + {} duplicates), {} shard(s), {} rows, {:.1} MiB{}",
        summary.programs,
        summary.canonical,
        summary.duplicates,
        summary.shards,
        summary.rows,
        summary.bytes as f64 / (1024.0 * 1024.0),
        if summary.resumed_chunks > 0 {
            format!(", {} chunk(s) resumed", summary.resumed_chunks)
        } else {
            String::new()
        },
    );
    println!("evaluate from it with: rhmd sweep --corpus-store {dir}");
    Ok(())
}

/// `rhmd dump [--scale s] [--program name-or-index] [--functions n]` —
/// print an objdump-style listing of one synthetic binary.
pub fn dump(args: &Args) -> Result<(), RhmdError> {
    let config = scale_config(&args.str_or("scale", "tiny"))?;
    let corpus = Corpus::build(&config);
    let selector = args.str_or("program", "0");
    let index = match selector.parse::<usize>() {
        Ok(i) if i < corpus.len() => i,
        Ok(i) => {
            return Err(RhmdError::config(format!(
                "program index {i} out of range (0..{})",
                corpus.len()
            )))
        }
        Err(_) => corpus
            .programs()
            .iter()
            .position(|p| p.name == selector)
            .ok_or_else(|| RhmdError::config(format!("no program named '{selector}'")))?,
    };
    let functions: usize = args.parse_or("functions", 2)?;
    print!(
        "{}",
        rhmd_trace::dump::listing(corpus.program(index), Some(functions))
    );
    Ok(())
}

/// `rhmd train [--scale s] [--feature f] [--algo a] [--period n]
/// [--quantize int4|int8|int16] [--stochastic-round seed] [--threads n]
/// [--out path] [--metrics path] [--metrics-summary]`
pub fn train(args: &Args) -> Result<(), RhmdError> {
    let kind = parse_kind(&args.str_or("feature", "instructions"))?;
    let algorithm = parse_algorithm(&args.str_or("algo", "lr"))?;
    let period: u32 = args.parse_or("period", 10_000)?;
    let metrics = parse_metrics(args);
    metrics.install();
    let bench = workbench(args)?;
    let spec = FeatureSpec::new(kind, period, bench.opcodes.clone());
    bench.require_spec(&spec)?;
    let engine = bench.evaluator().recorder(metrics.recorder()?).build();
    // Dataset assembly fans out over the pool; rows are bit-identical to
    // the serial path, so the trained model is too.
    let train_data = engine.window_dataset(&bench.splits.victim_train, &spec);
    let hmd = Hmd::train_on_dataset(algorithm, spec.clone(), &bench.trainer, &train_data);

    let test = engine.window_dataset(&bench.splits.attacker_test, &spec);
    let scores = score_all(hmd.model(), &test);
    let roc_auc = auc(&scores, test.labels());
    let (_, acc) = best_accuracy_threshold(&scores, test.labels());
    println!(
        "trained {}: window AUC {roc_auc:.3}, window accuracy {:.1}%",
        hmd.describe_public(),
        100.0 * acc
    );

    if let Some(path) = args.get("out") {
        save_hmd(&hmd, &PathBuf::from(path))?;
        println!("model saved to {path}");
    }
    finish_metrics(&metrics, &engine)
}

/// `rhmd evaluate --model path [--scale s] [--threads n] [--fault kind:x]
/// [--fault-seed n] [--metrics path] [--metrics-summary]` — reload a saved
/// detector and score the held-out programs on the parallel engine,
/// optionally through a fault-injected counter stream (e.g.
/// `--fault noise:0.1`).
pub fn evaluate(args: &Args) -> Result<(), RhmdError> {
    let path = args
        .get("model")
        .ok_or_else(|| RhmdError::config("evaluate needs --model <path>"))?
        .to_owned();
    // Validate every flag before the corpus trace so a typo fails in
    // milliseconds, not after minutes of simulation.
    let fault = args.get("fault").map(parse_fault).transpose()?;
    let fault_seed: u64 = args.parse_or("fault-seed", 0xfa17)?;
    let metrics = parse_metrics(args);
    metrics.install();
    let hmd = load_hmd(&PathBuf::from(&path))?;
    let bench = workbench(args)?;
    bench.require_spec(hmd.spec())?;
    if fault.is_some() {
        // Fault injection replays raw subwindows through a degraded
        // counter model, which the store does not retain.
        bench.traced()?;
    }
    let engine = bench.evaluator().recorder(metrics.recorder()?).build();
    let quality = engine.quality_hmd(&hmd, &bench.splits.attacker_test);
    println!(
        "{}: program-level sensitivity {:.1}%, specificity {:.1}%",
        hmd.describe_public(),
        100.0 * quality.sensitivity_unmodified,
        100.0 * quality.specificity
    );

    if let Some(config) = fault {
        let spec = args.get("fault").unwrap_or_default();
        // Per-program fault seeds stay `seed ^ i` (the published derivation
        // of EXPERIMENTS.md) — passed as a closure so the engine does not
        // impose its own.
        let degraded = engine.degraded_quality(
            &bench.splits.attacker_test,
            config,
            &VerdictPolicy::majority(),
            0.25,
            |i| fault_seed ^ i as u64,
            |_, subs| hmd.quorum_verdict(subs, 0.5),
        );
        let total = bench.splits.attacker_test.len();
        let abstained = (degraded.abstain_rate * total as f64).round() as usize;
        println!(
            "under --fault {spec}: sensitivity {:.1}%, specificity {:.1}%, abstained {abstained}/{total}",
            100.0 * degraded.sensitivity,
            100.0 * degraded.specificity,
        );
    }
    finish_metrics(&metrics, &engine)
}

/// `rhmd sweep [--scale s] [--algos lr,dt,...] [--features f,g]
/// [--periods 10000,5000] [--quantize int4|int8|int16] [--stochastic-round seed]
/// [--threads n] [--out bench.json]
/// [--checkpoint dir | --resume dir] [--metrics path] [--metrics-summary]`
/// — train and score every algorithm × feature × period combination on the
/// parallel engine. Detectors sharing a feature spec reuse cached feature
/// vectors, so the grid costs far less than `cells × (project + train +
/// score)`. `--metrics` exports per-stage counters and latency histograms;
/// cells are byte-identical with metrics on or off, at any thread count.
pub fn sweep(args: &Args) -> Result<(), RhmdError> {
    let algos: Vec<Algorithm> = args
        .str_or("algos", "lr,dt,svm,nn,rf")
        .split(',')
        .map(|a| parse_algorithm(a.trim()))
        .collect::<Result<_, _>>()?;
    let kinds = parse_kind_list(args)?;
    let periods = parse_period_list(args)?;
    // Checkpoint, watchdog, and metrics flags are validated here, before
    // the corpus trace, so a typo fails in milliseconds, not after minutes.
    let ckpt = parse_checkpoint(args)?;
    let deadline = parse_deadline(args)?;
    let quant = parse_quant(args)?;
    let metrics = parse_metrics(args);
    metrics.install();
    // A store opens in milliseconds, so in store mode the workbench comes
    // first and the journal summary pins the store identity; live mode
    // keeps journal-before-trace so a bad resume dir fails fast.
    let store_bench = match args.get("corpus-store") {
        Some(_) => Some(workbench(args)?),
        None => None,
    };
    // The config summary excludes --threads: cells are bit-identical at any
    // thread count, so a resume may legally change it. It includes the
    // quantization knobs: a resume that flips `--quantize` or the stochastic
    // seed would silently mix incompatible cells. Store-backed sweeps add
    // the store identity: a journal written from one store is never
    // resumed against another (or against live generation).
    let summary = format!(
        "scale={};algos={};features={};periods={};quant={}{}",
        args.str_or("scale", "small"),
        algos.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(","),
        kinds
            .iter()
            .map(|k| format!("{k:?}").to_lowercase())
            .collect::<Vec<_>>()
            .join(","),
        periods.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(","),
        quant_label(quant),
        store_bench
            .as_ref()
            .and_then(Workbench::source_tag)
            .map(|tag| format!(";source={tag}"))
            .unwrap_or_default(),
    );
    let journal = match &ckpt {
        None => None,
        Some(c) => {
            let manifest = Manifest::new("sweep", &summary);
            let journal = if c.resume_only {
                Journal::resume(&c.dir, &manifest, Durable::from_env()?, c.every)?
            } else {
                Journal::create(&c.dir, &manifest, Durable::from_env()?, c.every)?
            };
            if journal.resumed_units() > 0 {
                eprintln!(
                    "[rhmd] resuming from {}: {} completed cell(s) will be skipped",
                    c.dir.display(),
                    journal.resumed_units()
                );
            }
            Some(journal)
        }
    };

    let bench = match store_bench {
        Some(bench) => bench,
        None => workbench(args)?,
    };
    // In store mode every grid spec must have a shard; fail with a typed
    // error naming the stored specs before any training starts.
    for &period in &periods {
        for &kind in &kinds {
            bench.require_spec(&FeatureSpec::new(kind, period, bench.opcodes.clone()))?;
        }
    }
    let mut builder = bench.evaluator().recorder(metrics.recorder()?);
    if let Some(watchdog) = deadline {
        builder = builder.watchdog(watchdog);
    }
    if let Some(journal) = journal {
        builder = builder.checkpoint(journal);
    }
    let engine = builder.build();
    let started = std::time::Instant::now();

    let mut rows = Vec::new();
    let mut skipped = 0usize;
    println!(
        "{:<6} {:<22} {:>10} {:>12} {:>12}",
        "algo", "feature", "AUC", "sensitivity", "specificity"
    );
    for &period in &periods {
        for &kind in &kinds {
            let spec = FeatureSpec::new(kind, period, bench.opcodes.clone());
            for &algorithm in &algos {
                let compute = || {
                    let train_data = engine.window_dataset(&bench.splits.victim_train, &spec);
                    let hmd = Hmd::train_on_dataset(
                        algorithm,
                        spec.clone(),
                        &bench.trainer,
                        &train_data,
                    );
                    let test = engine.window_dataset(&bench.splits.attacker_test, &spec);
                    let roc_auc = auc(&score_all(hmd.model(), &test), test.labels());
                    let quality = engine.quality_hmd(&hmd, &bench.splits.attacker_test);
                    SweepCell {
                        algorithm: format!("{algorithm}"),
                        feature: spec.label(),
                        auc: roc_auc,
                        sensitivity: quality.sensitivity_unmodified,
                        specificity: quality.specificity,
                    }
                };
                let key = format!("{algorithm}/{}/{period}", spec.label());
                let (cell, cached) = engine.unit(&key, compute)?;
                skipped += usize::from(cached);
                println!(
                    "{:<6} {:<22} {:>10.3} {:>11.1}% {:>11.1}%{}",
                    cell.algorithm,
                    cell.feature,
                    cell.auc,
                    100.0 * cell.sensitivity,
                    100.0 * cell.specificity,
                    if cached { "  (resumed)" } else { "" }
                );
                rows.push(cell);
            }
        }
    }
    engine.sync_checkpoint()?;
    if skipped > 0 {
        if let Some(dir) = engine.checkpoint_dir() {
            eprintln!(
                "[rhmd] checkpoint: {skipped} of {} cell(s) served from {}",
                rows.len(),
                dir.display()
            );
        }
    }
    let watchdog_report = engine.run_report();
    if watchdog_report.degraded() {
        eprintln!(
            "[rhmd] degraded run: {} overdue and {} requeued work unit(s) \
             (deadline {} ms); results are still exact",
            watchdog_report.overdue.len(),
            watchdog_report.requeued.len(),
            watchdog_report.deadline_ms
        );
    }

    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.cache().stats();
    let cells = rows.len();
    let evaluations = cells * bench.splits.attacker_test.len();
    println!(
        "{cells} detectors in {elapsed:.2}s ({:.1} program evaluations/sec) | \
         cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
        evaluations as f64 / elapsed.max(1e-9),
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate(),
        stats.entries
    );
    if let Some(out) = args.get("out") {
        let report = SweepReport {
            threads: engine.pool().threads(),
            elapsed_seconds: elapsed,
            evaluations_per_second: evaluations as f64 / elapsed.max(1e-9),
            cache_hit_rate: stats.hit_rate(),
            cache: stats,
            cells: rows,
        };
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| RhmdError::config(format!("cannot serialize report: {e}")))?;
        Durable::from_env()?.write_atomic(Path::new(out), (json + "\n").as_bytes())?;
        println!("report saved to {out}");
    }
    finish_metrics(&metrics, &engine)
}

/// One `rhmd sweep` grid cell, as serialized to `--out` and journaled to
/// `--checkpoint` directories.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct SweepCell {
    algorithm: String,
    feature: String,
    auc: f64,
    sensitivity: f64,
    specificity: f64,
}

/// The `rhmd sweep --out` document.
#[derive(Debug, serde::Serialize)]
struct SweepReport {
    threads: usize,
    elapsed_seconds: f64,
    evaluations_per_second: f64,
    cache_hit_rate: f64,
    cache: rhmd_bench::par::CacheStats,
    cells: Vec<SweepCell>,
}

/// `rhmd attack [--scale s] [--feature f] [--algo a] [--surrogate a]
/// [--count n] [--strategy s]` — the full reverse-engineer + evade campaign.
pub fn attack(args: &Args) -> Result<(), RhmdError> {
    let kind = parse_kind(&args.str_or("feature", "instructions"))?;
    let victim_algo = parse_algorithm(&args.str_or("algo", "lr"))?;
    let surrogate_algo = parse_algorithm(&args.str_or("surrogate", "lr"))?;
    let count: usize = args.parse_or("count", 2)?;
    let strategy = match args.str_or("strategy", "least-weight").as_str() {
        "random" => Strategy::Random,
        "least-weight" => Strategy::LeastWeight,
        "weighted" => Strategy::Weighted,
        other => {
            return Err(RhmdError::config(format!(
                "unknown strategy '{other}' (random|least-weight|weighted)"
            )))
        }
    };
    let bench = workbench(args)?;
    let traced = bench.traced()?;
    let spec = FeatureSpec::new(kind, 10_000, bench.opcodes.clone());
    let mut victim = Hmd::train(
        victim_algo,
        spec.clone(),
        &bench.trainer,
        traced,
        &bench.splits.victim_train,
    );
    let surrogate = reveng::reverse_engineer(
        &mut victim,
        traced,
        &bench.splits.attacker_train,
        spec,
        surrogate_algo,
        &TrainerConfig::with_seed(0xc11),
    );
    let fidelity = reveng::agreement(
        &mut victim,
        &surrogate,
        traced,
        &bench.splits.attacker_test,
    );
    println!("surrogate agreement: {:.1}%", 100.0 * fidelity);
    let labels = traced.corpus().labels();
    let malware: Vec<usize> = bench
        .splits
        .attacker_test
        .iter()
        .copied()
        .filter(|&i| labels[i])
        .collect();
    let plan = plan_evasion(
        &surrogate,
        &EvasionConfig {
            strategy,
            count,
            placement: Placement::EveryBlock,
            seed: 0xc12,
        },
    );
    let trial = evade_corpus(&mut victim, traced, &malware, &plan);
    println!(
        "evasion ({strategy}, {count}/block): {}/{} still detected ({:.1}%), \
         overhead static {:.1}% dynamic {:.1}%",
        trial.detected_after,
        trial.initially_detected,
        100.0 * trial.detection_rate(),
        100.0 * trial.mean_static_overhead,
        100.0 * trial.mean_dynamic_overhead
    );
    Ok(())
}

/// `rhmd defend [--scale s] [--periods 10000,5000] [--count n]
/// [--quantize int4|int8|int16] [--stochastic-round seed]` — deploy an RHMD pool
/// and report its resilience under the standard attack. With
/// `--stochastic-round` the pool's detectors use seeded stochastic rounding,
/// stacking computation-level randomness on top of detector switching.
pub fn defend(args: &Args) -> Result<(), RhmdError> {
    let periods = parse_period_list(args)?;
    let count: usize = args.parse_or("count", 2)?;
    let bench = workbench(args)?;
    let traced = bench.traced()?;
    let mut rhmd = build_pool(
        Algorithm::Lr,
        pool_specs(&FeatureKind::ALL, &periods, &bench.opcodes),
        &bench.trainer,
        traced,
        &bench.splits.victim_train,
        0xc13,
    );
    let quality = detection_quality(&mut rhmd, traced, &bench.splits.attacker_test);
    println!(
        "pool of {} detectors: sensitivity {:.1}%, specificity {:.1}%",
        rhmd.detectors().len(),
        100.0 * quality.sensitivity_unmodified,
        100.0 * quality.specificity
    );
    let surrogate = reveng::reverse_engineer(
        &mut rhmd,
        traced,
        &bench.splits.attacker_train,
        FeatureSpec::new(FeatureKind::Instructions, 10_000, bench.opcodes.clone()),
        Algorithm::Nn,
        &TrainerConfig::with_seed(0xc14),
    );
    let fidelity = reveng::agreement(
        &mut rhmd,
        &surrogate,
        traced,
        &bench.splits.attacker_test,
    );
    let labels = traced.corpus().labels();
    let malware: Vec<usize> = bench
        .splits
        .attacker_test
        .iter()
        .copied()
        .filter(|&i| labels[i])
        .collect();
    let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(count));
    rhmd.reset();
    let trial = evade_corpus(&mut rhmd, traced, &malware, &plan);
    println!(
        "attacker: agreement {:.1}%, detection after {count}/block injection {:.1}%",
        100.0 * fidelity,
        100.0 * trial.detection_rate()
    );
    Ok(())
}

/// `rhmd serve`: a resident detection service. Loads a saved model, spawns
/// the sharded engine, and speaks the NDJSON protocol over stdin/stdout —
/// or over a Unix socket with `--listen <path>`. Exits after a graceful
/// drain (stdin EOF, a `{"Drain":{}}` request, or SIGTERM/SIGINT),
/// flushing the `--metrics` snapshot last.
///
/// The session watchdog reuses the sweep's `--task-deadline` flag: a
/// session idle past the deadline is finalized as an explicit abstention
/// rather than held open forever; `--tenant-deadline` does the same for a
/// whole tenant.
pub fn serve(args: &Args) -> Result<(), RhmdError> {
    let model_path = args.get("model").ok_or_else(|| {
        RhmdError::config("serve needs --model <path> (train one with: rhmd train --out model.json)")
    })?;
    let metrics = parse_metrics(args);
    metrics.install();
    let hmd = load_hmd(Path::new(model_path))?;
    let pool = parse_pool(args)?;
    let capacity: usize = args.parse_or("queue-cap", 4096)?;
    let config = rhmd_serve::ServeConfig {
        shards: pool.threads(),
        queue: rhmd_serve::queue::Watermarks {
            capacity,
            high: args.parse_or("high-watermark", capacity.saturating_mul(3) / 4)?,
            low: args.parse_or("low-watermark", capacity / 4)?,
        },
        output: rhmd_serve::queue::Watermarks {
            capacity,
            high: capacity,
            low: 0,
        },
        batch_max: args.parse_or("batch-max", 64)?,
        batch_deadline: std::time::Duration::from_millis(args.parse_or("batch-deadline-ms", 5)?),
        session_deadline: Some(
            parse_deadline(args)?
                .unwrap_or(WatchdogConfig::from_secs(30))
                .deadline,
        ),
        tenant_deadline: Some(std::time::Duration::from_secs(
            args.parse_or("tenant-deadline", 120u64)?.max(1),
        )),
        min_fill: args.parse_or("min-fill", 1.0)?,
        min_coverage: args.parse_or("min-coverage", 0.0)?,
        snapshot_every: std::time::Duration::from_millis(
            args.parse_or("snapshot-every-ms", 25u64)?,
        ),
        restart_budget: args.parse_or("restart-budget", 5u32)?,
        restart_backoff: std::time::Duration::from_millis(
            args.parse_or("restart-backoff-ms", 10u64)?,
        ),
        read_stall: std::time::Duration::from_secs(args.parse_or("read-stall-secs", 5u64)?),
        write_timeout: std::time::Duration::from_secs(args.parse_or("write-timeout-secs", 2u64)?),
    };
    // `Engine::start` reads RHMD_SERVE_FAULTS: the daemon's injectable
    // fault plane for chaos drills stays env-gated, off by default.
    let engine = rhmd_serve::engine::Engine::start(hmd, config)?;
    eprintln!(
        "[serve] model {} (config hash {:016x}), {} shards, queue {}/{}/{} (cap/high/low), restart budget {}",
        model_path,
        engine.config_hash(),
        engine.config().shards,
        engine.config().queue.capacity,
        engine.config().queue.high,
        engine.config().queue.low,
        engine.config().restart_budget,
    );
    let stats = serve_transport(engine, args.get("listen"))?;
    eprintln!(
        "[serve] drained: {} offered = {} decided + {} abstained + {} shed + {} quarantined \
         ({} events offered, {} shed, {} stale dropped, {} shard restarts)",
        stats.offered_sessions,
        stats.decided,
        stats.abstained,
        stats.shed_sessions,
        stats.quarantined,
        stats.offered_events,
        stats.shed_events,
        stats.stale_frames,
        stats.shard_restarts,
    );
    if !stats.accounted() {
        return Err(RhmdError::model(format!(
            "serve accounting identity violated: {stats:?}"
        )));
    }
    metrics.finish()?;
    Ok(())
}

#[cfg(unix)]
fn serve_transport(
    engine: rhmd_serve::engine::Engine,
    listen: Option<&str>,
) -> Result<rhmd_serve::proto::StatsMsg, RhmdError> {
    match listen {
        Some(sock) => {
            eprintln!("[serve] listening on {sock}");
            rhmd_serve::server::serve_listener(engine, Path::new(sock))
        }
        None => rhmd_serve::server::serve_stdio(engine),
    }
}

#[cfg(not(unix))]
fn serve_transport(
    engine: rhmd_serve::engine::Engine,
    listen: Option<&str>,
) -> Result<rhmd_serve::proto::StatsMsg, RhmdError> {
    if listen.is_some() {
        return Err(RhmdError::config("--listen is only supported on Unix"));
    }
    rhmd_serve::server::serve_stdio(engine)
}

/// Extension trait so commands can describe HMDs without `BlackBox`'s
/// `&mut` requirement.
trait DescribePublic {
    fn describe_public(&self) -> String;
}

impl DescribePublic for Hmd {
    fn describe_public(&self) -> String {
        format!("{}[{}]", self.algorithm(), self.spec().label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert!(scale_config("tiny").is_ok());
        assert!(scale_config("galactic").is_err());
    }

    #[test]
    fn kind_and_algorithm_parsing() {
        assert_eq!(parse_kind("memory").unwrap(), FeatureKind::Memory);
        assert!(parse_kind("entropy").is_err());
        assert_eq!(parse_algorithm("nn").unwrap(), Algorithm::Nn);
        assert!(parse_algorithm("xgboost").is_err());
    }

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(parse_fault("noise:0.1").unwrap(), FaultConfig::noise(0.1));
        assert_eq!(parse_fault("drop:0.3").unwrap(), FaultConfig::dropping(0.3));
        assert_eq!(
            parse_fault("saturate:12").unwrap(),
            FaultConfig::saturating(12)
        );
        assert_eq!(parse_fault("wrap:16").unwrap(), FaultConfig::wrapping(16));
        assert_eq!(
            parse_fault("burst:0.05").unwrap(),
            FaultConfig::bursty(0.05, 4)
        );
        // Malformed specs become typed parse errors naming the flag.
        for bad in ["noise", "noise:x", "drop:1.5", "saturate:0", "gamma:0.1"] {
            let err = parse_fault(bad).unwrap_err();
            assert!(matches!(err, RhmdError::Parse { .. }), "{bad}: {err}");
            assert!(err.to_string().contains("--fault"));
        }
    }

    #[test]
    fn quant_flag_parsing() {
        let parse = |argv: &[&str]| {
            let mut full = vec!["train"];
            full.extend_from_slice(argv);
            let args = Args::parse(full.into_iter().map(String::from).collect::<Vec<_>>()).unwrap();
            parse_quant(&args)
        };
        assert_eq!(parse(&[]).unwrap(), None);
        assert_eq!(
            parse(&["--quantize", "int8"]).unwrap(),
            Some(rhmd_ml::QuantConfig::nearest(rhmd_ml::QuantBits::Int8))
        );
        assert_eq!(
            parse(&["--quantize", "int16", "--stochastic-round", "42"]).unwrap(),
            Some(rhmd_ml::QuantConfig::stochastic(rhmd_ml::QuantBits::Int16, 42))
        );
        // --stochastic-round alone implies int16.
        assert_eq!(
            parse(&["--stochastic-round", "7"]).unwrap(),
            Some(rhmd_ml::QuantConfig::stochastic(rhmd_ml::QuantBits::Int16, 7))
        );
        assert_eq!(
            parse(&["--quantize", "int4"]).unwrap(),
            Some(rhmd_ml::QuantConfig::nearest(rhmd_ml::QuantBits::Int4))
        );
        // Malformed values become typed errors naming the offender.
        assert!(parse(&["--quantize", "int2"]).unwrap_err().to_string().contains("int2"));
        assert!(parse(&["--stochastic-round", "banana"])
            .unwrap_err()
            .to_string()
            .contains("--stochastic-round"));
    }

    #[test]
    fn quant_labels_pin_the_checkpoint_config_hash() {
        assert_eq!(quant_label(None), "none");
        assert_eq!(
            quant_label(Some(rhmd_ml::QuantConfig::nearest(rhmd_ml::QuantBits::Int8))),
            "int8/nearest"
        );
        assert_eq!(
            quant_label(Some(rhmd_ml::QuantConfig::stochastic(
                rhmd_ml::QuantBits::Int16,
                42
            ))),
            "int16/stochastic:42"
        );
    }

    #[test]
    fn corpus_command_runs_at_tiny_scale() {
        let args = Args::parse(["corpus", "--scale", "tiny"].map(String::from)).unwrap();
        corpus(&args).unwrap();
    }

    #[test]
    fn train_and_evaluate_round_trip() {
        let dir = std::env::temp_dir().join("rhmd-cli-cmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("m.json");
        let train_args = Args::parse(
            [
                "train",
                "--scale",
                "tiny",
                "--feature",
                "architectural",
                "--algo",
                "lr",
                "--out",
                model_path.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        train(&train_args).unwrap();
        let eval_args = Args::parse(
            ["evaluate", "--scale", "tiny", "--model", model_path.to_str().unwrap()]
                .map(String::from),
        )
        .unwrap();
        evaluate(&eval_args).unwrap();
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn quantized_train_and_evaluate_round_trip() {
        let dir = std::env::temp_dir().join("rhmd-cli-quant-cmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("q.json");
        let train_args = Args::parse(
            [
                "train",
                "--scale",
                "tiny",
                "--feature",
                "architectural",
                "--algo",
                "svm",
                "--quantize",
                "int16",
                "--stochastic-round",
                "7",
                "--out",
                model_path.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        train(&train_args).unwrap();
        let eval_args = Args::parse(
            ["evaluate", "--scale", "tiny", "--model", model_path.to_str().unwrap()]
                .map(String::from),
        )
        .unwrap();
        evaluate(&eval_args).unwrap();
        std::fs::remove_file(&model_path).ok();
    }
}
