//! Model persistence for the CLI: the shared JSON format lives in
//! [`rhmd_core::persist`] (so the `rhmd serve` daemon and the bench
//! binaries load the same files); this module wires its writes through the
//! durable layer (retry/backoff on transient errors, fsynced atomic
//! rename; the `RHMD_IO_FAULTS` fault plane applies in tests).

use rhmd_bench::durable::Durable;
use rhmd_core::hmd::Hmd;
use rhmd_core::RhmdError;
use std::path::Path;

pub use rhmd_core::persist::load_hmd;

/// Saves an HMD as pretty JSON, atomically: the bytes land in a temp file
/// in the same directory, are fsynced, and are renamed over `path`, so a
/// crash mid-save can never leave a truncated model file behind.
///
/// # Errors
///
/// Returns [`RhmdError::Model`] on snapshot or serialization failure and
/// [`RhmdError::Io`] when the file cannot be written.
pub fn save_hmd(hmd: &Hmd, path: &Path) -> Result<(), RhmdError> {
    let durable = Durable::from_env()?;
    rhmd_core::persist::save_hmd_with(hmd, path, |path, bytes| durable.write_atomic(path, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_core::persist::{snapshot, FORMAT_VERSION};
    use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
    use rhmd_features::vector::{FeatureKind, FeatureSpec};
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        (traced, splits)
    }

    #[test]
    fn json_file_round_trip() {
        let (traced, splits) = fixture();
        let hmd = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let dir = std::env::temp_dir().join("rhmd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_hmd(&hmd, &path).unwrap();
        let loaded = load_hmd(&path).unwrap();
        assert_eq!(loaded.spec(), hmd.spec());
        assert_eq!(loaded.algorithm(), hmd.algorithm());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (traced, splits) = fixture();
        let hmd = Hmd::train(
            Algorithm::Dt,
            FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let mut saved = snapshot(&hmd).unwrap();
        saved.version = 99;
        let dir = std::env::temp_dir().join("rhmd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad-version.json");
        std::fs::write(&path, serde_json::to_string(&saved).unwrap()).unwrap();
        let err = load_hmd(&path).unwrap_err();
        assert_eq!(
            err,
            RhmdError::Version {
                found: 99,
                expected: FORMAT_VERSION
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_hmd(Path::new("/nonexistent/rhmd-model.json")).unwrap_err();
        assert!(matches!(err, RhmdError::Io { .. }));
        assert!(err.to_string().contains("rhmd-model.json"));
    }

    #[test]
    fn malformed_json_is_parse_error() {
        let dir = std::env::temp_dir().join("rhmd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{ not json").unwrap();
        let err = load_hmd(&path).unwrap_err();
        assert!(matches!(err, RhmdError::Parse { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_model_file_is_parse_error() {
        // A model file cut off mid-write (the failure atomic saves prevent,
        // but which a pre-hardening save or a bad disk could leave) must be
        // a typed parse error naming the file, not a panic.
        let (traced, splits) = fixture();
        let hmd = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let dir = std::env::temp_dir().join("rhmd-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.json");
        save_hmd(&hmd, &path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_hmd(&path).unwrap_err();
        assert!(matches!(err, RhmdError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("truncated.json"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let (traced, splits) = fixture();
        let hmd = Hmd::train(
            Algorithm::Dt,
            FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let dir = std::env::temp_dir().join("rhmd-cli-atomic-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_hmd(&hmd, &path).unwrap();
        save_hmd(&hmd, &path).unwrap(); // overwrite is atomic too
        load_hmd(&path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n != "model.json")
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
