//! `rhmd` — command-line interface to the RHMD reproduction.
//!
//! ```text
//! rhmd corpus   [--scale tiny|small|standard|paper]
//! rhmd corpus build --store dir [--scale s] [--features f,g]
//!               [--periods 10000,5000] [--threads n] [--chunk n]
//! rhmd train    [--scale s | --corpus-store dir] [--feature f] [--algo a]
//!               [--period n] [--threads n]
//!               [--quantize int4|int8|int16] [--stochastic-round seed] [--out model.json]
//! rhmd evaluate --model model.json [--scale s | --corpus-store dir]
//!               [--threads n] [--fault noise:0.1]
//! rhmd sweep    [--scale s | --corpus-store dir] [--algos lr,dt]
//!               [--features f,g] [--periods 10000,5000]
//!               [--quantize int4|int8|int16] [--stochastic-round seed]
//!               [--threads n] [--out bench.json] [--checkpoint dir | --resume dir]
//!               [--checkpoint-every n] [--task-deadline secs]
//!               [--metrics snap.json] [--metrics-summary]
//! rhmd attack   [--scale s] [--feature f] [--algo a] [--surrogate a]
//!               [--strategy random|least-weight|weighted] [--count n]
//! rhmd defend   [--scale s] [--periods 10000,5000] [--count n]
//! rhmd serve    --model model.json [--listen path.sock] [--threads n]
//!               [--queue-cap n] [--high-watermark n] [--low-watermark n]
//!               [--batch-max n] [--batch-deadline-ms n] [--task-deadline secs]
//!               [--tenant-deadline secs] [--min-fill f] [--min-coverage f]
//!               [--restart-budget n] [--restart-backoff-ms n]
//!               [--snapshot-every-ms n] [--read-stall-secs n]
//!               [--write-timeout-secs n]
//!               [--metrics snap.json] [--metrics-summary]
//! ```

mod args;
mod commands;
mod persist;

use args::Args;
use rhmd_core::RhmdError;

const USAGE: &str = "\
rhmd — evasion-resilient hardware malware detectors (MICRO'17 reproduction)

USAGE: rhmd <command> [--flag value]...

COMMANDS:
  corpus     build the synthetic corpus and summarize it; `corpus build
             --store DIR` traces it once into mmap-able feature shards
             (content-addressed dedup, checkpointed, resumable)
  dump       print an objdump-style listing of one synthetic binary
  train      train a baseline HMD; optionally save it (--out model.json)
  evaluate   score a saved detector on held-out programs (--model path);
             optionally through faulted counters (--fault noise:0.1,
             also drop:P | multiplex:P | burst:P | saturate:BITS | wrap:BITS)
  sweep      train + score every algorithm x feature x period combination
             in parallel with feature-vector caching (--out bench.json);
             crash-tolerant with --checkpoint/--resume (see below)
  attack     reverse-engineer a victim detector and evade it
  defend     deploy an RHMD pool and measure its resilience
  serve      resident detection service (--model path): stream sessions as
             NDJSON over stdin/stdout or --listen <socket>, with bounded
             queues, load-shedding past --high-watermark (explicit shed
             verdicts, never silent drops), watchdog deadlines, hot model
             reload, and graceful drain on EOF / SIGTERM / {\"Drain\":{}}

COMMON FLAGS:
  --scale tiny|small|standard|paper     corpus size (default: small)
  --feature instructions|memory|architectural
  --algo lr|dt|svm|nn|rf
  --threads N                           worker threads (default: all cores);
                                        results are identical at any N

CORPUS STORE (corpus build; train, evaluate, sweep):
  --store DIR                           (corpus build) shard directory to
                                        create; rebuilding resumes from the
                                        build journal instead of re-tracing
  --chunk N                             (corpus build) programs per
                                        checkpointed build chunk (default 16)
  --corpus-store DIR                    read feature rows from a store built
                                        by `corpus build` instead of
                                        regenerating + re-tracing; mmap'd
                                        zero-copy reads, byte-identical
                                        results, bounded RSS. Fault
                                        injection, attack, and defend need
                                        raw traces and refuse this flag.

QUANTIZATION (train, sweep, defend; LR/SVM/NN only):
  --quantize int4|int8|int16                 post-training quantized inference with
                                        per-feature input scales; tree families
                                        stay exact
  --stochastic-round SEED               round quantized inputs stochastically
                                        (seeded, byte-reproducible at any
                                        --threads N); implies --quantize int16
                                        unless a width is given. Randomized
                                        rounding jitters the decision boundary
                                        seen by a reverse-engineering attacker.

CRASH TOLERANCE (sweep):
  --checkpoint DIR                      journal each finished cell to DIR
                                        (auto-resumes if DIR has a manifest)
  --resume DIR                          resume an interrupted run; refuses a
                                        DIR written by a different config
  --checkpoint-every N                  fsync the journal every N cells (default 1)
  --task-deadline SECS                  flag + requeue work units stuck > SECS
  Resumed runs are bit-identical to uninterrupted ones at any --threads N.

ROBUSTNESS (serve):
  --restart-budget N                    shard-worker restarts the supervisor
                                        may spend before failing fast (default 5)
  --restart-backoff-ms N                base supervisor backoff, doubled per
                                        restart of the same shard (default 10)
  --snapshot-every-ms N                 session-snapshot sync cadence backing
                                        lossless shard restarts (default 25)
  --read-stall-secs N                   disconnect a client stalled mid-frame
                                        (slow loris) after N seconds (default 5)
  --write-timeout-secs N                drop a consumer that blocks verdict
                                        writes for N seconds (default 2)
  Malformed, oversized, stale, or non-finite frames are rejected with typed
  errors (never a crash); sessions that poison the scorer are quarantined
  with explicit abstain verdicts. The drain summary accounts every session:
  offered == decided + abstained + shed + quarantined.

OBSERVABILITY (train, evaluate, sweep):
  --metrics PATH                        export per-stage counters and latency
                                        histograms as JSON after the run
  --metrics-summary                     print a metrics table to stderr
  Metrics are observe-only: results are byte-identical with metrics on or off.
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let exit = match run(raw) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("\n{USAGE}");
            2
        }
    };
    std::process::exit(exit);
}

fn run(raw: Vec<String>) -> Result<(), RhmdError> {
    let args = Args::parse(raw)?;
    // `corpus` takes an optional action (`corpus build`); every other
    // command rejects stray positionals.
    if args.command.as_deref() != Some("corpus") {
        args.expect_no_action()?;
    }
    match args.command.as_deref() {
        Some("corpus") => commands::corpus(&args),
        Some("dump") => commands::dump(&args),
        Some("train") => commands::train(&args),
        Some("evaluate") => commands::evaluate(&args),
        Some("sweep") => commands::sweep(&args),
        Some("attack") => commands::attack(&args),
        Some("defend") => commands::defend(&args),
        Some("serve") => commands::serve(&args),
        Some(other) => Err(RhmdError::config(format!("unknown command '{other}'"))),
        None => Err(RhmdError::config("no command given")),
    }
}
