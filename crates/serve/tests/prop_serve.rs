//! Property tests for the serving pipeline's three load-bearing pieces:
//!
//! * the gap-tolerant window assembler streams to exactly what the batch
//!   path's [`aggregate_with_gaps`] computes, on arbitrary streams;
//! * the micro-batcher never loses, duplicates, or reorders a row across
//!   any interleaving of size-triggered and forced flushes;
//! * the engine emits exactly one verdict per offered session and keeps
//!   the accounting identity, across random loads and queue shapes —
//!   including runs where shedding kicks in and later recovers;
//! * the hostile-input boundary never panics: `parse_request` and the
//!   bounded frame reader accept arbitrary bytes, and the session
//!   sequence filter makes duplicate/stale/out-of-order re-delivery
//!   invisible to window assembly.

use proptest::prelude::*;
use rhmd_features::window::{aggregate_with_gaps, RawWindow, SUBWINDOW};
use rhmd_serve::batch::MicroBatcher;
use rhmd_serve::engine::{Engine, OutEvent};
use rhmd_serve::proto::{parse_request, validate_request, Response};
use rhmd_serve::queue::Watermarks;
use rhmd_serve::server::{read_frame, Frame};
use rhmd_serve::session::{Sealed, SessionKey, SessionState, WindowAssembler};
use rhmd_serve::ServeConfig;
use std::time::{Duration, Instant};

/// A synthetic subwindow whose channels are all derived from `fill`, so a
/// merge mistake in any channel shows up as inequality.
fn sub(fill: u64, salt: u64) -> RawWindow {
    let mut w = RawWindow {
        instructions: fill,
        ..RawWindow::default()
    };
    w.opcode_counts[(salt % 7) as usize] = fill / 2 + salt;
    w.mem_delta_hist[(salt % 5) as usize] = fill / 3 + 1;
    w
}

fn assembled(subs: &[RawWindow], period: u32, min_fill: f64) -> Vec<RawWindow> {
    let mut asm = WindowAssembler::new(period, min_fill);
    let mut out = Vec::new();
    let mut keep = |sealed: Option<Sealed>| {
        if let Some(Sealed::Window(w)) = sealed {
            out.push(*w);
        }
    };
    for s in subs {
        keep(asm.push(s));
    }
    keep(asm.finish());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streamed assembly == batch aggregation, for any stream shape
    /// (short, over-full, and empty subwindows included), period, and
    /// fill floor.
    #[test]
    fn assembler_matches_batch_aggregation(
        fills in prop::collection::vec(0u64..=(u64::from(SUBWINDOW) * 3 / 2), 0..40),
        per in 1u32..6,
        min_fill in prop::sample::select(vec![0.0, 0.25, 0.5, 1.0]),
    ) {
        let period = per * SUBWINDOW;
        let subs: Vec<RawWindow> = fills
            .iter()
            .enumerate()
            .map(|(i, &f)| sub(f, i as u64))
            .collect();
        prop_assert_eq!(
            assembled(&subs, period, min_fill),
            aggregate_with_gaps(&subs, period, min_fill)
        );
    }

    /// Every pushed row comes back exactly once, in push order, with its
    /// flat storage aligned to its entry — across any interleaving of
    /// size-triggered and forced (deadline/shutdown-style) flushes.
    #[test]
    fn batcher_neither_loses_nor_duplicates_rows(
        dims in 1usize..4,
        max_rows in 1usize..6,
        rows in 0usize..40,
        force_every in 1usize..9,
    ) {
        let now = Instant::now();
        let mut b = MicroBatcher::new(dims, max_rows, Duration::from_secs(60));
        let mut seen: Vec<(SessionKey, usize)> = Vec::new();
        for i in 0..rows {
            let key = SessionKey::new("t", &format!("s{}", i % 5));
            let row: Vec<f64> = (0..dims).map(|d| (i * dims + d) as f64).collect();
            let full = b.push(key, i, &row, now);
            prop_assert_eq!(full, b.len() >= max_rows);
            // Flush on the size trigger, plus forced flushes at an
            // arbitrary cadence (standing in for deadline expiry).
            if full || i % force_every == 0 {
                let taken = b.take();
                prop_assert_eq!(taken.flat.len(), taken.entries.len() * dims);
                for (r, entry) in taken.entries.iter().enumerate() {
                    let slot = entry.1;
                    // Row r's flat storage is the row pushed for slot r.
                    prop_assert_eq!(taken.flat[r * dims], (slot * dims) as f64);
                }
                seen.extend(taken.entries);
                prop_assert!(b.is_empty());
                prop_assert_eq!(b.deadline_at(), None);
            }
        }
        seen.extend(b.take().entries);
        prop_assert_eq!(seen.len(), rows);
        for (i, entry) in seen.iter().enumerate() {
            prop_assert_eq!(entry.1, i, "rows drain in push order, exactly once");
        }
    }

    /// The request parser and validator accept arbitrary bytes without
    /// panicking: hostile input draws `Ok` or a typed error, nothing else.
    /// (Runs both raw fuzz strings and JSON-shaped prefixes of real
    /// frames, which exercise deeper parser states.)
    #[test]
    fn parse_request_never_panics_on_arbitrary_input(
        raw in prop::collection::vec(any::<u8>(), 0..256),
        cut in 0usize..128,
    ) {
        let s = String::from_utf8_lossy(&raw).into_owned();
        if let Ok(req) = parse_request(&s) {
            let _ = validate_request(&req);
        }
        // A truncated real frame must also die cleanly.
        let frame = r#"{"Event":{"tenant":"t","session":"s","seq":0,"window":{"instructions":1}}}"#;
        let cut = cut.min(frame.len());
        if let Some(prefix) = frame.get(..cut) {
            if let Ok(req) = parse_request(prefix) {
                let _ = validate_request(&req);
            }
        }
    }

    /// The bounded frame reader never panics on arbitrary byte streams,
    /// never yields a frame beyond the size cap, and always terminates.
    #[test]
    fn frame_reader_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut input = std::io::Cursor::new(bytes);
        let mut partial = Vec::new();
        loop {
            match read_frame(&mut input, &mut partial) {
                Frame::Line(line) => {
                    prop_assert!(line.len() <= rhmd_serve::proto::MAX_FRAME_BYTES);
                    // Whatever came out must feed the parser cleanly too.
                    if let Ok(req) = parse_request(&line) {
                        let _ = validate_request(&req);
                    }
                }
                Frame::Oversized(_) | Frame::Idle | Frame::Stalled => {}
                Frame::Eof { .. } => break,
            }
        }
    }

    /// Re-delivery chaos is invisible to assembly: a stream delivered with
    /// injected duplicates and stale replays (gated by the session
    /// sequence filter, exactly as the engine gates it) seals the same
    /// windows as the clean in-order stream.
    #[test]
    fn sequence_filter_makes_redelivery_invisible_to_assembly(
        fills in prop::collection::vec(1u64..=u64::from(SUBWINDOW), 1..24),
        per in 1u32..4,
        replays in prop::collection::vec((0usize..24, 0usize..24), 0..32),
    ) {
        let period = per * SUBWINDOW;
        let subs: Vec<RawWindow> = fills
            .iter()
            .enumerate()
            .map(|(i, &f)| sub(f, i as u64))
            .collect();
        let now = Instant::now();
        let deliver = |chaos: bool| {
            let mut state = SessionState::new(period, 1.0, 0, now);
            let mut sealed = Vec::new();
            let mut push = |state: &mut SessionState, seq: u64, w: &RawWindow| {
                if state.admit_seq(seq).is_some() {
                    if let Some(Sealed::Window(out)) = state.assembler.push(w) {
                        sealed.push(*out);
                    }
                }
            };
            for (i, w) in subs.iter().enumerate() {
                push(&mut state, i as u64, w);
                if chaos {
                    // Replay arbitrary already-delivered frames (duplicates
                    // of the current one, stale older ones, in any order).
                    for &(at, j) in &replays {
                        if at == i && j <= i {
                            push(&mut state, j as u64, &subs[j]);
                        }
                    }
                }
            }
            sealed
        };
        prop_assert_eq!(deliver(false), deliver(true));
    }

    /// One verdict per offered session and a closed accounting identity,
    /// for random session mixes and queue shapes — with and without
    /// shedding (tight queues + an initially stalled consumer force the
    /// shed path; the collector then recovers and drains everything).
    #[test]
    fn one_verdict_per_session_across_shed_and_recover(
        sessions in 1usize..24,
        events_per in 1usize..6,
        capacity in 2usize..32,
        stall_ms in 0u64..8,
    ) {
        let hmd = fixture::hmd();
        let high = (capacity / 2).max(1);
        let engine = Engine::start(
            hmd.clone(),
            ServeConfig {
                shards: 2,
                queue: Watermarks { capacity, high, low: high / 2 },
                output: Watermarks { capacity: 4096, high: 4096, low: 0 },
                session_deadline: None,
                tenant_deadline: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let out = engine.output();
        let window = fixture::subwindow();
        let stats = std::thread::scope(|scope| {
            let collector = scope.spawn(|| {
                // A stalled start lets queues fill so some cases shed.
                std::thread::sleep(Duration::from_millis(stall_ms));
                let mut ids = Vec::new();
                while let Some(ev) = out.pop() {
                    match ev {
                        OutEvent::Response { response: Response::Verdict(v), .. } => {
                            ids.push(v.session);
                        }
                        OutEvent::Response { .. } => {}
                        OutEvent::Closed => break,
                    }
                }
                ids
            });
            for k in 0..sessions {
                let session = format!("s{k}");
                for seq in 0..events_per {
                    engine.submit_event(0, "t", &session, seq as u64, Box::new(window.clone()), None);
                }
                engine.submit_end(0, "t", &session);
            }
            let stats = engine.drain();
            let mut ids = collector.join().unwrap();
            ids.sort();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "no duplicate verdicts");
            assert_eq!(
                ids.len() as u64,
                stats.offered_sessions,
                "exactly one verdict line per offered session"
            );
            stats
        });
        prop_assert!(stats.accounted(), "identity violated: {:?}", stats);
        prop_assert_eq!(stats.offered_sessions, sessions as u64);
    }
}

/// Shared one-time fixtures: a trained tiny detector and a real traced
/// subwindow (training per proptest case would dominate the runtime).
mod fixture {
    use rhmd_core::hmd::Hmd;
    use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
    use rhmd_features::vector::{FeatureKind, FeatureSpec};
    use rhmd_features::window::RawWindow;
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;
    use std::sync::OnceLock;

    static FIXTURE: OnceLock<(Hmd, RawWindow)> = OnceLock::new();

    fn build() -> &'static (Hmd, RawWindow) {
        FIXTURE.get_or_init(|| {
            let config = CorpusConfig::tiny();
            let corpus = Corpus::build(&config);
            let splits = Splits::new(&corpus, config.seed);
            let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
            let hmd = Hmd::train(
                Algorithm::Lr,
                FeatureSpec::new(FeatureKind::Architectural, 2_000, vec![]),
                &TrainerConfig::default(),
                &traced,
                &splits.victim_train,
            );
            let window = traced.subwindows(0)[0].clone();
            (hmd, window)
        })
    }

    pub fn hmd() -> Hmd {
        build().0.clone()
    }

    pub fn subwindow() -> RawWindow {
        build().1.clone()
    }
}
