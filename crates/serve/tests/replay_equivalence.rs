//! Bit-identity between the resident service and the batch evaluation
//! path: every held-out test program, streamed as a session at several
//! shard counts, must produce exactly the verdict `rhmd evaluate` computes
//! — same decision, same vote counts, same flag rate, at any parallelism.

use rhmd_core::hmd::Hmd;
use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_serve::engine::{Engine, OutEvent};
use rhmd_serve::proto::{Response, VerdictMsg};
use rhmd_serve::queue::Watermarks;
use rhmd_serve::ServeConfig;
use rhmd_uarch::CoreConfig;
use std::sync::Mutex;
use std::time::Duration;

fn fixture() -> (TracedCorpus, Splits, Hmd) {
    let config = CorpusConfig::tiny();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    let hmd = Hmd::train(
        Algorithm::Lr,
        FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]),
        &TrainerConfig::default(),
        &traced,
        &splits.victim_train,
    );
    (traced, splits, hmd)
}

/// Streams every test program as one session through an engine with
/// `shards` workers and returns the verdict lines, keyed by session id.
fn replay(traced: &TracedCorpus, test: &[usize], hmd: &Hmd, shards: usize) -> Vec<VerdictMsg> {
    let engine = Engine::start(
        hmd.clone(),
        ServeConfig {
            shards,
            queue: Watermarks {
                capacity: 1 << 14,
                high: 1 << 14,
                low: 0,
            },
            session_deadline: None,
            tenant_deadline: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let out = engine.output();
    let verdicts = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let collector = scope.spawn(|| {
            while let Some(ev) = out.pop() {
                match ev {
                    OutEvent::Response {
                        response: Response::Verdict(v),
                        ..
                    } => verdicts.lock().unwrap().push(v),
                    OutEvent::Response { .. } => {}
                    OutEvent::Closed => break,
                }
            }
        });
        for (k, &prog) in test.iter().enumerate() {
            let session = format!("s{k}");
            // Interleave tenants so per-tenant micro-batching is exercised.
            let tenant = if k % 2 == 0 { "t0" } else { "t1" };
            for (seq, sub) in traced.subwindows(prog).iter().enumerate() {
                engine.submit_event(0, tenant, &session, seq as u64, Box::new(sub.clone()), None);
            }
            engine.submit_end(0, tenant, &session);
            // Keep at most a couple of sessions in flight so the generous
            // queue never sheds and the comparison stays exact.
            while verdicts.lock().unwrap().len() + 2 < k {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        let stats = engine.drain();
        collector.join().unwrap();
        assert!(stats.accounted());
        assert_eq!(stats.shed_sessions, 0, "replay must not shed");
        assert_eq!(stats.offered_sessions, test.len() as u64);
    });
    verdicts.into_inner().unwrap()
}

#[test]
fn streamed_verdicts_match_batch_evaluation_at_any_shard_count() {
    let (traced, splits, hmd) = fixture();
    let test = &splits.attacker_test;
    for shards in [1usize, 2, 4] {
        let verdicts = replay(&traced, test, &hmd, shards);
        assert_eq!(verdicts.len(), test.len());
        for v in &verdicts {
            let k: usize = v.session[1..].parse().unwrap();
            let expected = hmd.verdict(traced.subwindows(test[k]));
            if expected.total == 0 {
                // The batch path silently reports "benign" on a program
                // with zero scorable windows; the service makes the lack
                // of evidence explicit instead.
                assert_eq!(v.verdict, "abstain", "shards {shards} session {k}");
                assert_eq!(v.reason.as_deref(), Some("coverage"));
                continue;
            }
            let want = if expected.is_malware() { "malware" } else { "benign" };
            assert_eq!(v.verdict, want, "shards {shards} session {k}");
            assert_eq!(v.voted, expected.total, "shards {shards} session {k}");
            assert_eq!(
                v.flag_rate,
                expected.flag_rate(),
                "flag rate must be bit-identical (shards {shards} session {k})"
            );
            assert!(v.reason.is_none());
        }
    }
}

#[test]
fn shard_count_is_invisible_in_the_output() {
    let (traced, splits, hmd) = fixture();
    let test = &splits.attacker_test[..splits.attacker_test.len().min(6)];
    let mut baseline = replay(&traced, test, &hmd, 1);
    baseline.sort_by(|a, b| a.session.cmp(&b.session));
    for shards in [2usize, 4] {
        let mut got = replay(&traced, test, &hmd, shards);
        got.sort_by(|a, b| a.session.cmp(&b.session));
        assert_eq!(got, baseline, "shards {shards} diverged from the 1-shard replay");
    }
}
