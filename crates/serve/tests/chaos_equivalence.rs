//! Bit-identity under chaos: streaming every test program through the
//! full hostile-input pipeline (bounded frame reader → parser → validator
//! → engine) with wire faults *and* injected scorer faults must leave
//! every non-quarantined session's verdict exactly equal to the fault-free
//! replay — same decision, same vote counts, same flag rate — while every
//! quarantine-targeted session gets an explicit `abstain`/`quarantine`
//! line and the four-term accounting identity stays closed.

use rhmd_core::hmd::Hmd;
use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_serve::chaos::{EngineFaults, WireFaults};
use rhmd_serve::engine::{Engine, OutEvent};
use rhmd_serve::proto::{parse_request, validate_request, Request, Response, VerdictMsg};
use rhmd_serve::queue::Watermarks;
use rhmd_serve::server::{read_frame, Frame};
use rhmd_serve::ServeConfig;
use rhmd_uarch::CoreConfig;
use std::collections::HashMap;
use std::sync::Mutex;

fn fixture() -> (TracedCorpus, Splits, Hmd) {
    let config = CorpusConfig::tiny();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    let hmd = Hmd::train(
        Algorithm::Lr,
        FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]),
        &TrainerConfig::default(),
        &traced,
        &splits.victim_train,
    );
    (traced, splits, hmd)
}

struct ChaosRun {
    verdicts: HashMap<String, VerdictMsg>,
    stats: rhmd_serve::proto::StatsMsg,
    rejected_frames: u64,
}

/// Streams every program through the wire pipeline. With `Some(faults)`,
/// every session's frame stream is expanded by [`WireFaults::mutate`] and
/// the engine injects scorer faults; with `None` the run is clean.
fn replay(
    traced: &TracedCorpus,
    test: &[usize],
    hmd: &Hmd,
    faults: Option<(WireFaults, EngineFaults)>,
) -> ChaosRun {
    let (wire, engine_faults) = match &faults {
        Some((w, e)) => (Some(w.clone()), e.clone()),
        None => (None, EngineFaults::default()),
    };
    let engine = Engine::start_with_faults(
        hmd.clone(),
        ServeConfig {
            shards: 2,
            queue: Watermarks {
                capacity: 1 << 14,
                high: 1 << 14,
                low: 0,
            },
            session_deadline: None,
            tenant_deadline: None,
            ..ServeConfig::default()
        },
        engine_faults,
    )
    .unwrap();
    let out = engine.output();
    let verdicts = Mutex::new(HashMap::new());
    let mut rejected_frames = 0u64;
    let stats = std::thread::scope(|scope| {
        let collector = scope.spawn(|| {
            while let Some(ev) = out.pop() {
                match ev {
                    OutEvent::Response {
                        response: Response::Verdict(v),
                        ..
                    } => {
                        let prev = verdicts.lock().unwrap().insert(v.session.clone(), v);
                        assert!(prev.is_none(), "duplicate verdict");
                    }
                    OutEvent::Response { .. } => {}
                    OutEvent::Closed => break,
                }
            }
        });
        for (k, &prog) in test.iter().enumerate() {
            let session = format!("s{k}");
            // Render the session's stream exactly as a client would put it
            // on the wire, with faults expanding each frame.
            let mut bytes: Vec<u8> = Vec::new();
            let mut first_frame = String::new();
            for (seq, sub) in traced.subwindows(prog).iter().enumerate() {
                let frame = serde_json::to_string(&Request::Event {
                    tenant: "t0".into(),
                    session: session.clone(),
                    seq: seq as u64,
                    window: Box::new(sub.clone()),
                    deadline_ms: None,
                })
                .unwrap();
                if seq == 0 {
                    first_frame = frame.clone();
                }
                let lines = match &wire {
                    Some(w) => w.mutate(&session, seq as u64, &frame, &first_frame),
                    None => vec![frame],
                };
                for line in lines {
                    bytes.extend_from_slice(line.as_bytes());
                    bytes.push(b'\n');
                }
            }
            // Feed the stream through the real hostile-input pipeline.
            let mut input = std::io::Cursor::new(bytes);
            let mut partial = Vec::new();
            loop {
                match read_frame(&mut input, &mut partial) {
                    Frame::Line(line) => {
                        match parse_request(&line).and_then(|r| {
                            validate_request(&r)?;
                            Ok(r)
                        }) {
                            Ok(request) => {
                                engine.submit(0, request);
                            }
                            Err(_) => rejected_frames += 1,
                        }
                    }
                    Frame::Oversized(_) => rejected_frames += 1,
                    Frame::Idle | Frame::Stalled => unreachable!("cursors never block"),
                    Frame::Eof { .. } => break,
                }
            }
            engine.submit_end(0, "t0", &session);
        }
        let stats = engine.drain();
        collector.join().unwrap();
        stats
    });
    assert!(stats.accounted(), "identity violated: {stats:?}");
    assert_eq!(stats.offered_sessions, test.len() as u64);
    assert_eq!(stats.shed_sessions, 0, "replay must not shed");
    ChaosRun {
        verdicts: verdicts.into_inner().unwrap(),
        stats,
        rejected_frames,
    }
}

#[test]
fn chaos_changes_no_nonquarantined_verdict() {
    let (traced, splits, hmd) = fixture();
    let test = &splits.attacker_test;
    let wire = WireFaults::standard(7);
    let engine_faults = EngineFaults {
        score_panic: 0.2,
        score_nan: 0.15,
        seed: 7,
    };
    let clean = replay(&traced, test, &hmd, None);
    let chaotic = replay(&traced, test, &hmd, Some((wire.clone(), engine_faults.clone())));

    // The fault plane must actually have fired, or this test is vacuous.
    assert!(chaotic.rejected_frames > 0, "no wire faults surfaced");
    assert!(chaotic.stats.stale_frames > 0, "no re-deliveries surfaced");
    let mut quarantined = 0u64;
    for k in 0..test.len() {
        let session = format!("s{k}");
        let clean_v = &clean.verdicts[&session];
        let chaos_v = &chaotic.verdicts[&session];
        if engine_faults.quarantines("t0", &session) {
            assert_eq!(chaos_v.verdict, "abstain", "{session}");
            assert_eq!(chaos_v.reason.as_deref(), Some("quarantine"), "{session}");
            quarantined += 1;
        } else {
            assert_eq!(
                chaos_v, clean_v,
                "non-quarantined {session} diverged under chaos"
            );
        }
    }
    assert!(quarantined > 0, "no sessions quarantined — rates too low");
    assert_eq!(chaotic.stats.quarantined, quarantined);
    // Clean-run cross-check: quarantine only ever fires when injected.
    assert_eq!(clean.stats.quarantined, 0);
    assert_eq!(clean.rejected_frames, 0);
}
