//! The sharded serving engine: session routing, micro-batched scoring,
//! load-shedding, watchdogs, hot reload, and drain.
//!
//! Sessions hash to one of `shards` worker threads; each worker owns its
//! sessions outright (no shared session state, no locks on the hot path)
//! and pulls from a bounded ingest queue. Admission control happens on the
//! *submitting* thread via [`BoundedQueue::offer`]: past the high
//! watermark the offer is refused, the session is marked shed, and a
//! capacity-exempt control message tells the owning worker to finalize it
//! as an explicit `abstain`/`shed` verdict — overload degrades loudly,
//! never silently.
//!
//! Verdicts leave through a bounded output queue with *blocking* pushes:
//! a slow verdict consumer stalls the workers, the ingest queues fill, and
//! the admission path starts shedding — backpressure propagates end to end
//! with no unbounded buffer anywhere.

use crate::batch::MicroBatcher;
use crate::proto::{Request, Response, StatsMsg, VerdictMsg};
use crate::queue::BoundedQueue;
use crate::session::{Sealed, SessionKey, SessionState, Slot};
use crate::ServeConfig;
use rhmd_core::hmd::{Hmd, QuorumVerdict, ABSTAIN_BOUND};
use rhmd_core::RhmdError;
use rhmd_features::window::RawWindow;
use rhmd_ml::matrix::FeatureMatrix;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Broadcast connection id: the server fans these messages out to every
/// connected client (used for the final `drained` notice).
pub const BROADCAST_CONN: u64 = u64::MAX;

/// An immutable model snapshot served between reloads.
#[derive(Debug)]
pub struct ModelSnapshot {
    hmd: Hmd,
    config_hash: u64,
}

impl ModelSnapshot {
    /// Wraps a trained HMD with its feature-spec config hash.
    pub fn new(hmd: Hmd) -> ModelSnapshot {
        let config_hash = hmd.spec().stable_hash();
        ModelSnapshot { hmd, config_hash }
    }

    /// The detector being served.
    pub fn hmd(&self) -> &Hmd {
        &self.hmd
    }

    /// Stable hash of the feature spec (the reload compatibility key).
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }
}

/// An element of the engine's output stream.
#[derive(Debug)]
pub enum OutEvent {
    /// A protocol response routed to `conn` (or everyone, for
    /// [`BROADCAST_CONN`]).
    Response {
        /// Destination connection id.
        conn: u64,
        /// The response to deliver.
        response: Response,
    },
    /// No further output will follow; consumers should exit.
    Closed,
}

/// Atomic accounting counters (see [`StatsMsg`] for the identity they
/// maintain).
#[derive(Debug, Default)]
pub struct Counts {
    offered_sessions: AtomicU64,
    decided: AtomicU64,
    abstained: AtomicU64,
    shed_sessions: AtomicU64,
    offered_events: AtomicU64,
    shed_events: AtomicU64,
    reloads_ok: AtomicU64,
    reloads_rejected: AtomicU64,
}

impl Counts {
    fn snapshot(&self) -> StatsMsg {
        StatsMsg {
            offered_sessions: self.offered_sessions.load(Ordering::Relaxed),
            decided: self.decided.load(Ordering::Relaxed),
            abstained: self.abstained.load(Ordering::Relaxed),
            shed_sessions: self.shed_sessions.load(Ordering::Relaxed),
            offered_events: self.offered_events.load(Ordering::Relaxed),
            shed_events: self.shed_events.load(Ordering::Relaxed),
            reloads_ok: self.reloads_ok.load(Ordering::Relaxed),
            reloads_rejected: self.reloads_rejected.load(Ordering::Relaxed),
        }
    }
}

enum ShardMsg {
    Event {
        key: SessionKey,
        conn: u64,
        seq: u64,
        window: Box<RawWindow>,
    },
    End {
        key: SessionKey,
        conn: u64,
        at: Instant,
    },
    Shed {
        key: SessionKey,
        conn: u64,
    },
    Drain,
}

struct ShardHandle {
    queue: Arc<BoundedQueue<ShardMsg>>,
    /// Sessions currently refused at admission; their later events drop at
    /// the door (counted) without touching the queue.
    shed: Mutex<HashSet<SessionKey>>,
}

/// The resident serving engine. One per `rhmd serve` process (or embedded
/// in-process by `loadgen`).
pub struct Engine {
    shards: Vec<ShardHandle>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    model: Arc<RwLock<Arc<ModelSnapshot>>>,
    out: Arc<BoundedQueue<OutEvent>>,
    counts: Arc<Counts>,
    config: ServeConfig,
    draining: Arc<AtomicBool>,
}

fn read_snapshot(model: &RwLock<Arc<ModelSnapshot>>) -> Arc<ModelSnapshot> {
    match model.read() {
        Ok(g) => Arc::clone(&g),
        Err(p) => Arc::clone(&p.into_inner()),
    }
}

impl Engine {
    /// Validates `config`, installs `hmd` as the serving snapshot, and
    /// spawns the shard workers.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Config`] for invalid configuration.
    pub fn start(hmd: Hmd, config: ServeConfig) -> Result<Engine, RhmdError> {
        config.validate()?;
        let model = Arc::new(RwLock::new(Arc::new(ModelSnapshot::new(hmd))));
        let out = Arc::new(BoundedQueue::new(config.output));
        let counts = Arc::new(Counts::default());
        let draining = Arc::new(AtomicBool::new(false));
        let mut shards = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for idx in 0..config.shards {
            let queue = Arc::new(BoundedQueue::new(config.queue));
            shards.push(ShardHandle {
                queue: Arc::clone(&queue),
                shed: Mutex::new(HashSet::new()),
            });
            let worker = Worker::new(
                idx,
                queue,
                Arc::clone(&model),
                Arc::clone(&out),
                Arc::clone(&counts),
                config.clone(),
            );
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rhmd-serve-{idx}"))
                    .spawn(move || worker.run())
                    .map_err(|e| RhmdError::config(format!("serve: spawn worker: {e}")))?,
            );
        }
        Ok(Engine {
            shards,
            workers: Mutex::new(workers),
            model,
            out,
            counts,
            config,
            draining,
        })
    }

    /// The engine's output stream (verdicts + control replies). Consume it
    /// from a dedicated thread; slow consumption propagates backpressure
    /// into load-shedding by design.
    pub fn output(&self) -> Arc<BoundedQueue<OutEvent>> {
        Arc::clone(&self.out)
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> StatsMsg {
        self.counts.snapshot()
    }

    /// The serving feature-spec config hash.
    pub fn config_hash(&self) -> u64 {
        read_snapshot(&self.model).config_hash()
    }

    /// Whether any shard is currently refusing admissions.
    pub fn is_shedding(&self) -> bool {
        self.shards.iter().any(|s| s.queue.is_shedding())
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Routes one subwindow event. Never blocks: under overload the event
    /// (and the rest of its session) is shed, with the session finalized as
    /// an explicit `abstain`/`shed` verdict by the owning worker.
    pub fn submit_event(&self, conn: u64, tenant: &str, session: &str, seq: u64, window: Box<RawWindow>) {
        if self.draining.load(Ordering::Relaxed) {
            return; // post-drain stragglers are refused before being offered
        }
        let key = SessionKey::new(tenant, session);
        let shard = &self.shards[key.shard(self.shards.len())];
        {
            let shed = lock(&shard.shed);
            if shed.contains(&key) {
                drop(shed);
                self.counts.shed_events.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        match shard.queue.offer(ShardMsg::Event {
            key: key.clone(),
            conn,
            seq,
            window,
        }) {
            Ok(()) => {
                self.counts.offered_events.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.counts.shed_events.fetch_add(1, Ordering::Relaxed);
                rhmd_obs::incr("serve.shed.events");
                lock(&shard.shed).insert(key.clone());
                // Capacity-exempt: the shed notice must reach the worker or
                // the session would vanish without a verdict.
                let _ = shard.queue.push_control(ShardMsg::Shed { key, conn });
            }
        }
    }

    /// Marks a session's stream complete; its verdict will be emitted once
    /// in-flight windows score.
    pub fn submit_end(&self, conn: u64, tenant: &str, session: &str) {
        if self.draining.load(Ordering::Relaxed) {
            return;
        }
        let key = SessionKey::new(tenant, session);
        let shard = &self.shards[key.shard(self.shards.len())];
        lock(&shard.shed).remove(&key);
        let _ = shard.queue.push_control(ShardMsg::End {
            key,
            conn,
            at: Instant::now(),
        });
    }

    /// Hot-swaps the serving model.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Config`] (and keeps serving the old model) when
    /// the new model's feature-spec config hash differs — a reload must not
    /// change what the service measures mid-stream.
    pub fn reload(&self, hmd: Hmd) -> Result<u64, RhmdError> {
        let next = ModelSnapshot::new(hmd);
        let current = self.config_hash();
        if next.config_hash() != current {
            self.counts.reloads_rejected.fetch_add(1, Ordering::Relaxed);
            rhmd_obs::incr("serve.reload.rejected");
            return Err(RhmdError::config(format!(
                "reload rejected: feature-spec config hash {} does not match serving hash {current}; \
                 the old model remains active",
                next.config_hash()
            )));
        }
        let hash = next.config_hash();
        match self.model.write() {
            Ok(mut g) => *g = Arc::new(next),
            Err(p) => *p.into_inner() = Arc::new(next),
        }
        self.counts.reloads_ok.fetch_add(1, Ordering::Relaxed);
        rhmd_obs::incr("serve.reload.ok");
        Ok(hash)
    }

    /// Hot-reloads from a model file written by `rhmd train --out`.
    ///
    /// # Errors
    ///
    /// Propagates load errors ([`RhmdError::Io`]/[`RhmdError::Parse`]/
    /// [`RhmdError::Version`]) and the config-hash mismatch from
    /// [`Engine::reload`]; all of them leave the old model serving.
    pub fn reload_path(&self, path: &Path) -> Result<u64, RhmdError> {
        let hmd = rhmd_core::persist::load_hmd(path).inspect_err(|_| {
            self.counts.reloads_rejected.fetch_add(1, Ordering::Relaxed);
            rhmd_obs::incr("serve.reload.rejected");
        })?;
        self.reload(hmd)
    }

    /// Dispatches one parsed request. Returns `true` when the client asked
    /// for a drain (the caller owns the engine and performs it).
    pub fn submit(&self, conn: u64, request: Request) -> bool {
        match request {
            Request::Event {
                tenant,
                session,
                seq,
                window,
            } => self.submit_event(conn, &tenant, &session, seq, window),
            Request::End { tenant, session } => self.submit_end(conn, &tenant, &session),
            Request::Reload { model } => {
                let response = match self.reload_path(Path::new(&model)) {
                    Ok(config_hash) => Response::Reloaded { model, config_hash },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                };
                let _ = self.out.push(OutEvent::Response { conn, response });
            }
            Request::Stats {} => {
                let _ = self.out.push(OutEvent::Response {
                    conn,
                    response: Response::Stats(self.stats()),
                });
            }
            Request::Drain {} => return true,
        }
        false
    }

    /// Routes one response to the output stream (used by front-ends for
    /// request-level errors the engine itself never sees, e.g. unparseable
    /// lines).
    pub fn respond(&self, conn: u64, response: Response) {
        let _ = self.out.push(OutEvent::Response { conn, response });
    }

    /// Graceful drain: stops admissions, lets workers finish in-flight
    /// batches, finalizes un-ended sessions as `abstain`/`drain`, emits a
    /// broadcast [`Response::Drained`] and [`OutEvent::Closed`], and
    /// returns the final accounting. Idempotent: later calls just return
    /// the final stats.
    pub fn drain(&self) -> StatsMsg {
        if self.draining.swap(true, Ordering::SeqCst) {
            return self.counts.snapshot();
        }
        for shard in &self.shards {
            let _ = shard.queue.push_control(ShardMsg::Drain);
        }
        let handles: Vec<JoinHandle<()>> = lock(&self.workers).drain(..).collect();
        for worker in handles {
            let _ = worker.join();
        }
        for shard in &self.shards {
            shard.queue.close();
        }
        let stats = self.counts.snapshot();
        debug_assert!(stats.accounted(), "drain accounting violated: {stats:?}");
        let _ = self.out.push(OutEvent::Response {
            conn: BROADCAST_CONN,
            response: Response::Drained(stats),
        });
        let _ = self.out.push(OutEvent::Closed);
        self.out.close();
        stats
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // A dropped (not drained) engine must not leave workers spinning.
        if !self.draining.swap(true, Ordering::SeqCst) {
            for shard in &self.shards {
                shard.queue.close();
            }
            self.out.close();
            for worker in lock(&self.workers).drain(..) {
                let _ = worker.join();
            }
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

enum Entry {
    Live(Box<SessionState>),
    /// The session already got its (shed) verdict; later events are
    /// ignored until the watchdog expires the marker.
    Tombstone(Instant),
}

struct Worker {
    idx: usize,
    queue: Arc<BoundedQueue<ShardMsg>>,
    model: Arc<RwLock<Arc<ModelSnapshot>>>,
    out: Arc<BoundedQueue<OutEvent>>,
    counts: Arc<Counts>,
    config: ServeConfig,
    sessions: HashMap<SessionKey, Entry>,
    batchers: HashMap<Arc<str>, MicroBatcher>,
    tenant_activity: HashMap<Arc<str>, Instant>,
    row: Vec<f64>,
    last_sweep: Instant,
    sweep_every: Duration,
}

impl Worker {
    fn new(
        idx: usize,
        queue: Arc<BoundedQueue<ShardMsg>>,
        model: Arc<RwLock<Arc<ModelSnapshot>>>,
        out: Arc<BoundedQueue<OutEvent>>,
        counts: Arc<Counts>,
        config: ServeConfig,
    ) -> Worker {
        let shortest = config
            .session_deadline
            .into_iter()
            .chain(config.tenant_deadline)
            .min()
            .unwrap_or(Duration::from_secs(4));
        let sweep_every = (shortest / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
        Worker {
            idx,
            queue,
            model,
            out,
            counts,
            config,
            sessions: HashMap::new(),
            batchers: HashMap::new(),
            tenant_activity: HashMap::new(),
            row: Vec::new(),
            last_sweep: Instant::now(),
            sweep_every,
        }
    }

    fn run(mut self) {
        let _ = self.idx;
        loop {
            let timeout = self.next_timeout();
            match self.queue.pop_timeout(timeout) {
                Some(ShardMsg::Drain) => {
                    self.drain();
                    return;
                }
                Some(msg) => self.handle(msg),
                None => {
                    if self.queue.is_closed() {
                        return; // engine dropped without drain
                    }
                }
            }
            self.tick(Instant::now());
        }
    }

    fn handle(&mut self, msg: ShardMsg) {
        match msg {
            ShardMsg::Event {
                key,
                conn,
                seq,
                window,
            } => self.on_event(key, conn, seq, &window),
            ShardMsg::End { key, conn, at } => self.on_end(&key, conn, at),
            ShardMsg::Shed { key, conn } => self.on_shed(key, conn),
            ShardMsg::Drain => {} // only reachable from drain()'s inner loop
        }
    }

    /// Time until the nearest open batch deadline, clamped so watchdog
    /// sweeps stay timely even on an idle shard.
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut timeout = Duration::from_millis(50).min(self.sweep_every);
        for batcher in self.batchers.values() {
            if let Some(at) = batcher.deadline_at() {
                timeout = timeout.min(at.saturating_duration_since(now));
            }
        }
        timeout.max(Duration::from_millis(1))
    }

    fn on_event(&mut self, key: SessionKey, conn: u64, seq: u64, window: &RawWindow) {
        let now = Instant::now();
        self.tenant_activity.insert(key.tenant.clone(), now);
        let snap = read_snapshot(&self.model);
        let period = snap.hmd().spec().period;
        let min_fill = self.config.min_fill;
        let counts = &self.counts;
        let entry = self.sessions.entry(key.clone()).or_insert_with(|| {
            counts.offered_sessions.fetch_add(1, Ordering::Relaxed);
            rhmd_obs::incr("serve.sessions.offered");
            Entry::Live(Box::new(SessionState::new(period, min_fill, conn, now)))
        });
        let state = match entry {
            Entry::Live(s) => s,
            Entry::Tombstone(_) => return, // already verdicted (shed)
        };
        state.last_activity = now;
        state.conn = conn;
        if seq < state.next_seq {
            // Sequence regression: the stream is incoherent; abstain loudly
            // rather than assemble windows out of order.
            rhmd_obs::incr("serve.sessions.protocol_poisoned");
            self.flush_tenant(&key.tenant.clone());
            self.finalize_abstain(&key, "protocol");
            return;
        }
        if seq > state.next_seq {
            let gap = seq - state.next_seq;
            state.gap_events += gap;
            rhmd_obs::add("serve.seq_gaps", gap);
        }
        state.next_seq = seq + 1;
        if let Some(sealed) = state.assembler.push(window) {
            match sealed {
                Sealed::Window(w) => {
                    if self.enqueue_vote(&key, &snap, &w, now) {
                        rhmd_obs::incr("serve.batch.flush_full");
                        self.flush_tenant(&key.tenant.clone());
                    }
                }
                Sealed::Dropped => {}
            }
        }
    }

    /// Projects one sealed window into its tenant's micro-batch (or
    /// resolves the vote immediately when the window abstains). Returns
    /// `true` when the batch hit its size trigger.
    fn enqueue_vote(
        &mut self,
        key: &SessionKey,
        snap: &ModelSnapshot,
        window: &RawWindow,
        now: Instant,
    ) -> bool {
        let dims = snap.hmd().spec().dims();
        let Some(Entry::Live(state)) = self.sessions.get_mut(key) else {
            return false;
        };
        let slot = state.slots.len();
        if window.instructions == 0 {
            state.slots.push(Slot::Done(None));
            return false;
        }
        if dims == 0 {
            // Degenerate spec: no batch path, mirror the per-window fallback
            // the batch evaluator uses.
            state.slots.push(Slot::Done(snap.hmd().classify_window_checked(window)));
            return false;
        }
        self.row.clear();
        snap.hmd().spec().project_into(window, &mut self.row);
        if self.row.iter().any(|x| !x.is_finite() || x.abs() > ABSTAIN_BOUND) {
            rhmd_obs::incr("serve.windows.abstained_corrupt");
            state.slots.push(Slot::Done(None));
            return false;
        }
        state.slots.push(Slot::Pending);
        let batch_max = self.config.batch_max;
        let batch_deadline = self.config.batch_deadline;
        let batcher = self
            .batchers
            .entry(key.tenant.clone())
            .or_insert_with(|| MicroBatcher::new(dims, batch_max, batch_deadline));
        batcher.push(key.clone(), slot, &self.row, now)
    }

    /// Scores a tenant's buffered batch and scatters votes back into the
    /// owning sessions' slots.
    fn flush_tenant(&mut self, tenant: &Arc<str>) {
        let Some(batcher) = self.batchers.get_mut(tenant) else {
            return;
        };
        if batcher.is_empty() {
            return;
        }
        let dims = batcher.dims();
        let taken = batcher.take();
        let snap = read_snapshot(&self.model);
        let rows = taken.entries.len();
        let xs = FeatureMatrix::from_flat(dims, taken.flat);
        let mut scores = vec![0.0; xs.len()];
        snap.hmd().model().score_batch(&xs, &mut scores);
        let threshold = snap.hmd().model().threshold();
        rhmd_obs::incr("serve.batch.flushes");
        rhmd_obs::add("serve.windows.scored", rows as u64);
        if rhmd_obs::enabled() {
            rhmd_obs::add(
                &format!("{}.windows_scored", rhmd_obs::labeled("serve.tenant", tenant)),
                rows as u64,
            );
        }
        for ((key, slot), score) in taken.entries.into_iter().zip(scores) {
            if let Some(Entry::Live(state)) = self.sessions.get_mut(&key) {
                if let Some(s) = state.slots.get_mut(slot) {
                    *s = Slot::Done(Some(score >= threshold));
                }
            }
        }
    }

    fn on_end(&mut self, key: &SessionKey, conn: u64, at: Instant) {
        self.tenant_activity.insert(key.tenant.clone(), at);
        match self.sessions.get(key) {
            None => {
                // A session whose stream was empty: offered and abstained in
                // one step (no evidence at all).
                self.counts.offered_sessions.fetch_add(1, Ordering::Relaxed);
                rhmd_obs::incr("serve.sessions.offered");
                self.counts.abstained.fetch_add(1, Ordering::Relaxed);
                self.emit_verdict(conn, key, &QuorumVerdict::from_votes(&[]), "abstain", Some("coverage"), at);
            }
            Some(Entry::Tombstone(_)) => {
                // Shed earlier; its verdict is already out.
                self.sessions.remove(key);
            }
            Some(Entry::Live(_)) => {
                let snap = read_snapshot(&self.model);
                let now = Instant::now();
                let tail = match self.sessions.get_mut(key) {
                    Some(Entry::Live(state)) => state.assembler.finish(),
                    _ => None,
                };
                if let Some(Sealed::Window(w)) = tail {
                    self.enqueue_vote(key, &snap, &w, now);
                }
                // Resolve every pending slot before judging.
                self.flush_tenant(&key.tenant);
                self.finalize_end(key, at);
            }
        }
    }

    fn finalize_end(&mut self, key: &SessionKey, at: Instant) {
        let Some(Entry::Live(state)) = self.sessions.remove(key) else {
            return;
        };
        let votes = state.votes();
        let quorum = QuorumVerdict::from_votes(&votes);
        let (verdict, reason) = if quorum.voted == 0 || quorum.coverage() < self.config.min_coverage
        {
            ("abstain", Some("coverage"))
        } else if quorum.is_malware() {
            ("malware", None)
        } else {
            ("benign", None)
        };
        if reason.is_none() {
            self.counts.decided.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counts.abstained.fetch_add(1, Ordering::Relaxed);
        }
        self.emit_verdict(state.conn, key, &quorum, verdict, reason, at);
    }

    fn on_shed(&mut self, key: SessionKey, conn: u64) {
        let now = Instant::now();
        self.tenant_activity.insert(key.tenant.clone(), now);
        let live = matches!(self.sessions.get(&key), Some(Entry::Live(_)));
        if live {
            // Mid-stream shed: resolve what already scored so the verdict
            // line reports how far the session got.
            self.flush_tenant(&key.tenant);
        } else if matches!(self.sessions.get(&key), Some(Entry::Tombstone(_))) {
            return; // duplicate shed notice
        }
        let quorum = match self.sessions.remove(&key) {
            Some(Entry::Live(state)) => QuorumVerdict::from_votes(&state.votes()),
            _ => {
                // First contact under overload: the session is offered and
                // shed in one step.
                self.counts.offered_sessions.fetch_add(1, Ordering::Relaxed);
                rhmd_obs::incr("serve.sessions.offered");
                QuorumVerdict::from_votes(&[])
            }
        };
        self.counts.shed_sessions.fetch_add(1, Ordering::Relaxed);
        rhmd_obs::incr("serve.sessions.shed");
        self.sessions.insert(key.clone(), Entry::Tombstone(now));
        self.emit_verdict(conn, &key, &quorum, "abstain", Some("shed"), now);
    }

    /// Finalizes a live session as an abstention (`drain`, `deadline`,
    /// `tenant-deadline`, `protocol`). The tenant's batch must already be
    /// flushed.
    fn finalize_abstain(&mut self, key: &SessionKey, reason: &str) {
        let Some(Entry::Live(state)) = self.sessions.remove(key) else {
            return;
        };
        let quorum = QuorumVerdict::from_votes(&state.votes());
        self.counts.abstained.fetch_add(1, Ordering::Relaxed);
        self.emit_verdict(state.conn, key, &quorum, "abstain", Some(reason), Instant::now());
    }

    fn emit_verdict(
        &self,
        conn: u64,
        key: &SessionKey,
        quorum: &QuorumVerdict,
        verdict: &str,
        reason: Option<&str>,
        since: Instant,
    ) {
        rhmd_obs::observe_ns(
            "serve.verdict_latency",
            since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        );
        if rhmd_obs::enabled() {
            let base = rhmd_obs::labeled("serve.tenant", &key.tenant);
            let outcome = if reason.is_some() { "abstained" } else { "decided" };
            rhmd_obs::incr(&format!("{base}.{outcome}"));
        }
        let msg = VerdictMsg {
            tenant: key.tenant.to_string(),
            session: key.session.to_string(),
            verdict: verdict.to_string(),
            reason: reason.map(str::to_string),
            voted: quorum.voted,
            abstained: quorum.abstained,
            flag_rate: quorum.flag_rate(),
        };
        // Blocking push: verdicts are never dropped; a slow consumer stalls
        // this worker, which is exactly how backpressure reaches admission.
        let _ = self.out.push(OutEvent::Response {
            conn,
            response: Response::Verdict(msg),
        });
    }

    /// Deadline batch flushes plus (rate-limited) watchdog sweeps.
    fn tick(&mut self, now: Instant) {
        let expired: Vec<Arc<str>> = self
            .batchers
            .iter()
            .filter(|(_, b)| b.expired(now))
            .map(|(t, _)| t.clone())
            .collect();
        for tenant in expired {
            rhmd_obs::incr("serve.batch.flush_deadline");
            self.flush_tenant(&tenant);
        }
        if now.saturating_duration_since(self.last_sweep) >= self.sweep_every {
            self.last_sweep = now;
            self.sweep(now);
        }
    }

    fn sweep(&mut self, now: Instant) {
        if let Some(deadline) = self.config.session_deadline {
            let stale: Vec<SessionKey> = self
                .sessions
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Live(s)
                        if now.saturating_duration_since(s.last_activity) >= deadline =>
                    {
                        Some(k.clone())
                    }
                    _ => None,
                })
                .collect();
            for key in stale {
                rhmd_obs::incr("serve.watchdog.session_expired");
                self.flush_tenant(&key.tenant.clone());
                self.finalize_abstain(&key, "deadline");
            }
            self.sessions.retain(|_, e| match e {
                Entry::Tombstone(at) => now.saturating_duration_since(*at) < deadline,
                Entry::Live(_) => true,
            });
        }
        if let Some(deadline) = self.config.tenant_deadline {
            let stale_tenants: Vec<Arc<str>> = self
                .tenant_activity
                .iter()
                .filter(|(_, at)| now.saturating_duration_since(**at) >= deadline)
                .map(|(t, _)| t.clone())
                .collect();
            for tenant in stale_tenants {
                rhmd_obs::incr("serve.watchdog.tenant_expired");
                self.flush_tenant(&tenant);
                let keys: Vec<SessionKey> = self
                    .sessions
                    .iter()
                    .filter_map(|(k, e)| match e {
                        Entry::Live(_) if k.tenant == tenant => Some(k.clone()),
                        _ => None,
                    })
                    .collect();
                for key in keys {
                    self.finalize_abstain(&key, "tenant-deadline");
                }
                self.tenant_activity.remove(&tenant);
            }
        }
    }

    /// Drain: absorb already-queued stragglers, flush every batch, and
    /// finalize whatever is still live as `abstain`/`drain`.
    fn drain(&mut self) {
        while let Some(msg) = self.queue.pop_timeout(Duration::from_millis(10)) {
            match msg {
                ShardMsg::Drain => {}
                other => self.handle(other),
            }
        }
        let tenants: Vec<Arc<str>> = self.batchers.keys().cloned().collect();
        for tenant in tenants {
            self.flush_tenant(&tenant);
        }
        let live: Vec<SessionKey> = self
            .sessions
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Live(_) => Some(k.clone()),
                Entry::Tombstone(_) => None,
            })
            .collect();
        for key in live {
            rhmd_obs::incr("serve.sessions.drained");
            self.finalize_abstain(&key, "drain");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
    use rhmd_features::vector::{FeatureKind, FeatureSpec};
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits, Hmd) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let hmd = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        (traced, splits, hmd)
    }

    fn collect_verdicts(
        out: &BoundedQueue<OutEvent>,
        expect: usize,
    ) -> HashMap<(String, String), VerdictMsg> {
        let mut verdicts = HashMap::new();
        while verdicts.len() < expect {
            match out.pop() {
                Some(OutEvent::Response {
                    response: Response::Verdict(v),
                    ..
                }) => {
                    let prev = verdicts.insert((v.tenant.clone(), v.session.clone()), v);
                    assert!(prev.is_none(), "duplicate verdict for a session");
                }
                Some(_) => {}
                None => panic!("output closed before all verdicts arrived"),
            }
        }
        verdicts
    }

    #[test]
    fn replay_matches_batch_evaluation() {
        let (traced, splits, hmd) = fixture();
        for shards in [1, 3] {
            let engine = Engine::start(
                hmd.clone(),
                ServeConfig {
                    shards,
                    session_deadline: None,
                    tenant_deadline: None,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
            let out = engine.output();
            let programs: Vec<usize> = splits.attacker_test.iter().copied().take(6).collect();
            for &i in &programs {
                let session = format!("p{i}");
                for (seq, sub) in traced.subwindows(i).iter().enumerate() {
                    engine.submit_event(0, "t0", &session, seq as u64, Box::new(sub.clone()));
                }
                engine.submit_end(0, "t0", &session);
            }
            let verdicts = collect_verdicts(&out, programs.len());
            for &i in &programs {
                let batch = hmd.verdict(traced.subwindows(i));
                let served = &verdicts[&("t0".to_string(), format!("p{i}"))];
                if batch.total == 0 {
                    assert_eq!(served.verdict, "abstain", "program {i}");
                } else {
                    let expected = if batch.is_malware() { "malware" } else { "benign" };
                    assert_eq!(served.verdict, expected, "program {i} at {shards} shards");
                    assert_eq!(served.voted, batch.total, "program {i}");
                    assert!((served.flag_rate - batch.flag_rate()).abs() < 1e-12);
                }
            }
            let stats = engine.drain();
            assert!(stats.accounted(), "{stats:?}");
            assert_eq!(stats.offered_sessions, programs.len() as u64);
            assert_eq!(stats.shed_sessions, 0);
        }
    }

    #[test]
    fn overload_sheds_loudly_and_accounts_everything() {
        let (traced, _, hmd) = fixture();
        let engine = Engine::start(
            hmd,
            ServeConfig {
                shards: 1,
                queue: crate::queue::Watermarks {
                    capacity: 8,
                    high: 2,
                    low: 0,
                },
                output: crate::queue::Watermarks {
                    capacity: 1,
                    high: 1,
                    low: 0,
                },
                session_deadline: None,
                tenant_deadline: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let out = engine.output();
        let subs = traced.subwindows(0);
        // Two quick sessions: the first verdict fills the output queue (no
        // consumer yet), the second blocks the worker on its push.
        for s in ["warm0", "warm1"] {
            for (seq, sub) in subs.iter().take(10).enumerate() {
                engine.submit_event(0, "t0", s, seq as u64, Box::new(sub.clone()));
            }
            engine.submit_end(0, "t0", s);
        }
        // Give the worker time to wedge against the full output queue.
        std::thread::sleep(Duration::from_millis(100));
        // Flood distinct sessions: the tiny ingest queue saturates and most
        // of these are refused at admission.
        for i in 0..40 {
            engine.submit_event(0, "t0", &format!("flood{i}"), 0, Box::new(subs[0].clone()));
        }
        assert!(engine.stats().shed_events > 0, "flood did not shed");
        // Now consume the output so the pipeline unwedges, then drain.
        let collector = std::thread::spawn({
            let out = Arc::clone(&out);
            move || {
                let mut verdicts: Vec<VerdictMsg> = Vec::new();
                while let Some(ev) = out.pop() {
                    match ev {
                        OutEvent::Response {
                            response: Response::Verdict(v),
                            ..
                        } => verdicts.push(v),
                        OutEvent::Closed => break,
                        _ => {}
                    }
                }
                verdicts
            }
        });
        let stats = engine.drain();
        let verdicts = collector.join().unwrap();
        assert!(stats.accounted(), "{stats:?}");
        assert!(stats.shed_sessions > 0, "{stats:?}");
        assert_eq!(
            verdicts.len() as u64,
            stats.offered_sessions,
            "exactly one verdict per offered session: {stats:?}"
        );
        let shed_lines = verdicts
            .iter()
            .filter(|v| v.reason.as_deref() == Some("shed"))
            .count() as u64;
        assert_eq!(shed_lines, stats.shed_sessions);
        // No session got two verdicts.
        let mut ids: Vec<&str> = verdicts.iter().map(|v| v.session.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), verdicts.len());
    }

    #[test]
    fn reload_validates_config_hash_and_keeps_serving() {
        let (traced, splits, hmd) = fixture();
        let engine = Engine::start(hmd.clone(), ServeConfig::default()).unwrap();
        let before = engine.config_hash();
        // Same spec, retrained: accepted.
        let same = Hmd::train(
            Algorithm::Dt,
            hmd.spec().clone(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        assert_eq!(engine.reload(same).unwrap(), before);
        // Different period => different config hash: rejected, old model
        // stays.
        let other = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Architectural, 10_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let err = engine.reload(other).unwrap_err();
        assert!(matches!(err, RhmdError::Config(_)));
        assert_eq!(engine.config_hash(), before);
        let stats = engine.stats();
        assert_eq!(stats.reloads_ok, 1);
        assert_eq!(stats.reloads_rejected, 1);
    }

    #[test]
    fn session_watchdog_abstains_stalled_sessions() {
        let (traced, _, hmd) = fixture();
        let engine = Engine::start(
            hmd,
            ServeConfig {
                shards: 1,
                session_deadline: Some(Duration::from_millis(50)),
                tenant_deadline: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let out = engine.output();
        // One event, never an End: the watchdog must finalize it.
        engine.submit_event(0, "t0", "stalled", 0, Box::new(traced.subwindows(0)[0].clone()));
        let verdicts = collect_verdicts(&out, 1);
        let v = &verdicts[&("t0".to_string(), "stalled".to_string())];
        assert_eq!(v.verdict, "abstain");
        assert_eq!(v.reason.as_deref(), Some("deadline"));
        let stats = engine.drain();
        assert!(stats.accounted());
        assert_eq!(stats.abstained, 1);
    }
}
