//! The sharded serving engine: session routing, micro-batched scoring,
//! load-shedding, poison-pill quarantine, shard supervision, watchdogs,
//! hot reload, and drain.
//!
//! Sessions hash to one of `shards` worker threads; each worker owns its
//! sessions outright (no shared session state, no locks on the hot path)
//! and pulls from a bounded ingest queue. Admission control happens on the
//! *submitting* thread via [`BoundedQueue::offer`]: past the high
//! watermark the offer is refused, the session is marked shed, and a
//! capacity-exempt control message tells the owning worker to finalize it
//! as an explicit `abstain`/`shed` verdict — overload degrades loudly,
//! never silently.
//!
//! Verdicts leave through a bounded output queue with *blocking* pushes:
//! a slow verdict consumer stalls the workers, the ingest queues fill, and
//! the admission path starts shedding — backpressure propagates end to end
//! with no unbounded buffer anywhere.
//!
//! Two failure boundaries sit between a hostile session and the daemon:
//!
//! * **Poison-pill quarantine.** Every micro-batch scores inside a
//!   [`std::panic::catch_unwind`] fence. A panicking or non-finite batch
//!   is bisected to isolate the offending rows; their sessions are
//!   finalized as `abstain`/`quarantine` (counted separately in the
//!   accounting identity) and tombstoned at the door, while every other
//!   session in the batch keeps its exact score — scoring is
//!   row-independent, so the bisection cannot perturb innocent verdicts.
//! * **Shard supervision.** Each worker syncs dirty sessions into an
//!   in-memory snapshot store (create, then every
//!   [`ServeConfig::snapshot_every`]); a supervisor thread detects worker
//!   death, restarts the shard with sessions restored from the store under
//!   a bounded restart budget with deterministic exponential backoff, and
//!   fails fast (explicit `abstain`/`shard-down` verdicts, engine flagged
//!   failed) when the budget is exhausted. The one unavoidable hole is the
//!   single message being processed at the instant of death; everything
//!   else is restored, and a [`Engine::kill_shard`] kill (which flushes
//!   and syncs before dying) recovers bit-identically.

use crate::batch::MicroBatcher;
use crate::chaos::EngineFaults;
use crate::proto::{Request, Response, StatsMsg, VerdictMsg};
use crate::queue::BoundedQueue;
use crate::session::{Sealed, SessionKey, SessionSnapshot, SessionState, Slot};
use crate::ServeConfig;
use rhmd_core::hmd::{Hmd, QuorumVerdict, ABSTAIN_BOUND};
use rhmd_core::RhmdError;
use rhmd_features::window::RawWindow;
use rhmd_ml::matrix::FeatureMatrix;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Broadcast connection id: the server fans these messages out to every
/// connected client (used for the final `drained` notice).
pub const BROADCAST_CONN: u64 = u64::MAX;

/// An immutable model snapshot served between reloads.
#[derive(Debug)]
pub struct ModelSnapshot {
    hmd: Hmd,
    config_hash: u64,
}

impl ModelSnapshot {
    /// Wraps a trained HMD with its feature-spec config hash.
    pub fn new(hmd: Hmd) -> ModelSnapshot {
        let config_hash = hmd.spec().stable_hash();
        ModelSnapshot { hmd, config_hash }
    }

    /// The detector being served.
    pub fn hmd(&self) -> &Hmd {
        &self.hmd
    }

    /// Stable hash of the feature spec (the reload compatibility key).
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }
}

/// An element of the engine's output stream.
#[derive(Debug)]
pub enum OutEvent {
    /// A protocol response routed to `conn` (or everyone, for
    /// [`BROADCAST_CONN`]).
    Response {
        /// Destination connection id.
        conn: u64,
        /// The response to deliver.
        response: Response,
    },
    /// No further output will follow; consumers should exit.
    Closed,
}

/// Atomic accounting counters (see [`StatsMsg`] for the identity they
/// maintain).
#[derive(Debug, Default)]
pub struct Counts {
    offered_sessions: AtomicU64,
    decided: AtomicU64,
    abstained: AtomicU64,
    shed_sessions: AtomicU64,
    quarantined: AtomicU64,
    offered_events: AtomicU64,
    shed_events: AtomicU64,
    stale_frames: AtomicU64,
    shard_restarts: AtomicU64,
    reloads_ok: AtomicU64,
    reloads_rejected: AtomicU64,
}

impl Counts {
    fn snapshot(&self) -> StatsMsg {
        StatsMsg {
            offered_sessions: self.offered_sessions.load(Ordering::Relaxed),
            decided: self.decided.load(Ordering::Relaxed),
            abstained: self.abstained.load(Ordering::Relaxed),
            shed_sessions: self.shed_sessions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            offered_events: self.offered_events.load(Ordering::Relaxed),
            shed_events: self.shed_events.load(Ordering::Relaxed),
            stale_frames: self.stale_frames.load(Ordering::Relaxed),
            shard_restarts: self.shard_restarts.load(Ordering::Relaxed),
            reloads_ok: self.reloads_ok.load(Ordering::Relaxed),
            reloads_rejected: self.reloads_rejected.load(Ordering::Relaxed),
        }
    }
}

enum ShardMsg {
    Event {
        key: SessionKey,
        conn: u64,
        seq: u64,
        window: Box<RawWindow>,
        deadline_ms: Option<u64>,
    },
    End {
        key: SessionKey,
        conn: u64,
        at: Instant,
    },
    Shed {
        key: SessionKey,
        conn: u64,
    },
    /// Chaos hook: the worker flushes its batches, syncs every session to
    /// the snapshot store, and dies — exercising lossless supervision
    /// recovery.
    Kill,
    Drain,
}

type SnapshotStore = Mutex<HashMap<SessionKey, SessionSnapshot>>;

struct ShardHandle {
    queue: Arc<BoundedQueue<ShardMsg>>,
    /// Sessions currently refused at admission; their later events drop at
    /// the door (counted) without touching the queue. Lives on the engine
    /// side, so it survives worker death.
    shed: Mutex<HashSet<SessionKey>>,
    /// Incremental session snapshots, the restart substrate. Workers insert
    /// at session creation and re-sync dirty sessions periodically; every
    /// finalize path removes its key, so leftovers after worker death are
    /// exactly the sessions that still need a verdict.
    store: Arc<SnapshotStore>,
}

/// The resident serving engine. One per `rhmd serve` process (or embedded
/// in-process by `loadgen`).
pub struct Engine {
    shards: Arc<Vec<ShardHandle>>,
    workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    model: Arc<RwLock<Arc<ModelSnapshot>>>,
    out: Arc<BoundedQueue<OutEvent>>,
    counts: Arc<Counts>,
    config: ServeConfig,
    faults: EngineFaults,
    draining: Arc<AtomicBool>,
    failed: Arc<AtomicBool>,
    last_error: Arc<Mutex<Option<String>>>,
    recovery_ns: Arc<Mutex<Vec<u64>>>,
}

fn read_snapshot(model: &RwLock<Arc<ModelSnapshot>>) -> Arc<ModelSnapshot> {
    match model.read() {
        Ok(g) => Arc::clone(&g),
        Err(p) => Arc::clone(&p.into_inner()),
    }
}

/// Contained panics inside shard workers (injected scorer faults, chaos
/// kills) are expected events under test; the default panic hook would
/// flood stderr with backtraces for failures that are caught, counted, and
/// recovered. Silence the hook for engine worker threads only — the
/// supervisor surfaces real deaths through `shard_restarts`, `last_error`,
/// and metrics.
fn silence_worker_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let ours = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("rhmd-serve-"));
            if !ours {
                prev(info);
            }
        }));
    });
}

impl Engine {
    /// Validates `config`, installs `hmd` as the serving snapshot, and
    /// spawns the shard workers and their supervisor. Engine-side fault
    /// injection is read from the `RHMD_SERVE_FAULTS` environment variable.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Config`] for invalid configuration and
    /// [`RhmdError::Parse`] for a malformed fault spec — a misconfigured
    /// chaos run fails loudly at startup instead of silently serving
    /// without faults.
    pub fn start(hmd: Hmd, config: ServeConfig) -> Result<Engine, RhmdError> {
        Engine::start_with_faults(hmd, config, EngineFaults::from_env()?)
    }

    /// [`Engine::start`] with an explicit fault plane (ignores the
    /// environment) — what `loadgen` uses to keep its clean baseline
    /// points clean while chaos points inject.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Config`] for invalid configuration.
    pub fn start_with_faults(
        hmd: Hmd,
        config: ServeConfig,
        faults: EngineFaults,
    ) -> Result<Engine, RhmdError> {
        config.validate()?;
        silence_worker_panics();
        let model = Arc::new(RwLock::new(Arc::new(ModelSnapshot::new(hmd))));
        let out = Arc::new(BoundedQueue::try_new(config.output)?);
        let counts = Arc::new(Counts::default());
        let draining = Arc::new(AtomicBool::new(false));
        let failed = Arc::new(AtomicBool::new(false));
        let last_error = Arc::new(Mutex::new(None));
        let recovery_ns = Arc::new(Mutex::new(Vec::new()));
        let mut shards = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for idx in 0..config.shards {
            let queue = Arc::new(BoundedQueue::try_new(config.queue)?);
            let store: Arc<SnapshotStore> = Arc::new(Mutex::new(HashMap::new()));
            workers.push(Some(spawn_worker(
                idx,
                Arc::clone(&queue),
                Arc::clone(&store),
                Arc::clone(&model),
                Arc::clone(&out),
                Arc::clone(&counts),
                config.clone(),
                faults.clone(),
                false,
            )?));
            shards.push(ShardHandle {
                queue,
                shed: Mutex::new(HashSet::new()),
                store,
            });
        }
        let shards = Arc::new(shards);
        let workers = Arc::new(Mutex::new(workers));
        let supervisor = Supervisor {
            shards: Arc::clone(&shards),
            workers: Arc::clone(&workers),
            model: Arc::clone(&model),
            out: Arc::clone(&out),
            counts: Arc::clone(&counts),
            config: config.clone(),
            faults: faults.clone(),
            draining: Arc::clone(&draining),
            failed: Arc::clone(&failed),
            last_error: Arc::clone(&last_error),
            recovery_ns: Arc::clone(&recovery_ns),
        };
        let supervisor = std::thread::Builder::new()
            .name("rhmd-supervise".to_string())
            .spawn(move || supervisor.run())
            .map_err(|e| RhmdError::config(format!("serve: spawn supervisor: {e}")))?;
        Ok(Engine {
            shards,
            workers,
            supervisor: Mutex::new(Some(supervisor)),
            model,
            out,
            counts,
            config,
            faults,
            draining,
            failed,
            last_error,
            recovery_ns,
        })
    }

    /// The engine's output stream (verdicts + control replies). Consume it
    /// from a dedicated thread; slow consumption propagates backpressure
    /// into load-shedding by design.
    pub fn output(&self) -> Arc<BoundedQueue<OutEvent>> {
        Arc::clone(&self.out)
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> StatsMsg {
        self.counts.snapshot()
    }

    /// The serving feature-spec config hash.
    pub fn config_hash(&self) -> u64 {
        read_snapshot(&self.model).config_hash()
    }

    /// Whether any shard is currently refusing admissions.
    pub fn is_shedding(&self) -> bool {
        self.shards.iter().any(|s| s.queue.is_shedding())
    }

    /// Whether the engine has failed fast (a shard exhausted its restart
    /// budget or could not be respawned). Front-ends poll this and initiate
    /// a drain: a failed engine refuses to limp along silently.
    pub fn failed(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }

    /// The most recent supervision error (shard death or fail-fast cause).
    pub fn last_error(&self) -> Option<String> {
        lock(&self.last_error).clone()
    }

    /// Wall-clock nanoseconds of each completed shard recovery
    /// (death detection through restored worker running, backoff
    /// included) — the chaos benchmark's recovery-latency sample set.
    pub fn recoveries_ns(&self) -> Vec<u64> {
        lock(&self.recovery_ns).clone()
    }

    /// The engine-side fault plane in effect.
    pub fn faults(&self) -> &EngineFaults {
        &self.faults
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Chaos hook: asks shard `idx` to flush, sync its snapshot store, and
    /// die — the supervisor then restarts it from the store. Returns
    /// whether the kill was delivered (in-range shard, queue open).
    pub fn kill_shard(&self, idx: usize) -> bool {
        idx < self.shards.len() && self.shards[idx].queue.push_control(ShardMsg::Kill).is_ok()
    }

    /// Routes one subwindow event. Never blocks: under overload the event
    /// (and the rest of its session) is shed, with the session finalized as
    /// an explicit `abstain`/`shed` verdict by the owning worker.
    pub fn submit_event(
        &self,
        conn: u64,
        tenant: &str,
        session: &str,
        seq: u64,
        window: Box<RawWindow>,
        deadline_ms: Option<u64>,
    ) {
        if self.draining.load(Ordering::Relaxed) {
            return; // post-drain stragglers are refused before being offered
        }
        let key = SessionKey::new(tenant, session);
        let shard = &self.shards[key.shard(self.shards.len())];
        {
            let shed = lock(&shard.shed);
            if shed.contains(&key) {
                drop(shed);
                self.counts.shed_events.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        match shard.queue.offer(ShardMsg::Event {
            key: key.clone(),
            conn,
            seq,
            window,
            deadline_ms,
        }) {
            Ok(()) => {
                self.counts.offered_events.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.counts.shed_events.fetch_add(1, Ordering::Relaxed);
                rhmd_obs::incr("serve.shed.events");
                lock(&shard.shed).insert(key.clone());
                // Capacity-exempt: the shed notice must reach the worker or
                // the session would vanish without a verdict.
                let _ = shard.queue.push_control(ShardMsg::Shed { key, conn });
            }
        }
    }

    /// Marks a session's stream complete; its verdict will be emitted once
    /// in-flight windows score.
    pub fn submit_end(&self, conn: u64, tenant: &str, session: &str) {
        if self.draining.load(Ordering::Relaxed) {
            return;
        }
        let key = SessionKey::new(tenant, session);
        let shard = &self.shards[key.shard(self.shards.len())];
        lock(&shard.shed).remove(&key);
        let _ = shard.queue.push_control(ShardMsg::End {
            key,
            conn,
            at: Instant::now(),
        });
    }

    /// Hot-swaps the serving model.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Config`] (and keeps serving the old model) when
    /// the new model's feature-spec config hash differs — a reload must not
    /// change what the service measures mid-stream.
    pub fn reload(&self, hmd: Hmd) -> Result<u64, RhmdError> {
        let next = ModelSnapshot::new(hmd);
        let current = self.config_hash();
        if next.config_hash() != current {
            self.counts.reloads_rejected.fetch_add(1, Ordering::Relaxed);
            rhmd_obs::incr("serve.reload.rejected");
            return Err(RhmdError::config(format!(
                "reload rejected: feature-spec config hash {} does not match serving hash {current}; \
                 the old model remains active",
                next.config_hash()
            )));
        }
        let hash = next.config_hash();
        match self.model.write() {
            Ok(mut g) => *g = Arc::new(next),
            Err(p) => *p.into_inner() = Arc::new(next),
        }
        self.counts.reloads_ok.fetch_add(1, Ordering::Relaxed);
        rhmd_obs::incr("serve.reload.ok");
        Ok(hash)
    }

    /// Hot-reloads from a model file written by `rhmd train --out`.
    ///
    /// # Errors
    ///
    /// Propagates load errors ([`RhmdError::Io`]/[`RhmdError::Parse`]/
    /// [`RhmdError::Version`]) and the config-hash mismatch from
    /// [`Engine::reload`]; all of them leave the old model serving.
    pub fn reload_path(&self, path: &Path) -> Result<u64, RhmdError> {
        let hmd = rhmd_core::persist::load_hmd(path).inspect_err(|_| {
            self.counts.reloads_rejected.fetch_add(1, Ordering::Relaxed);
            rhmd_obs::incr("serve.reload.rejected");
        })?;
        self.reload(hmd)
    }

    /// Dispatches one parsed request. Returns `true` when the client asked
    /// for a drain (the caller owns the engine and performs it).
    pub fn submit(&self, conn: u64, request: Request) -> bool {
        match request {
            Request::Event {
                tenant,
                session,
                seq,
                window,
                deadline_ms,
            } => self.submit_event(conn, &tenant, &session, seq, window, deadline_ms),
            Request::End { tenant, session } => self.submit_end(conn, &tenant, &session),
            Request::Reload { model } => {
                let response = match self.reload_path(Path::new(&model)) {
                    Ok(config_hash) => Response::Reloaded { model, config_hash },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                };
                let _ = self.out.push(OutEvent::Response { conn, response });
            }
            Request::Stats {} => {
                let _ = self.out.push(OutEvent::Response {
                    conn,
                    response: Response::Stats(self.stats()),
                });
            }
            Request::Drain {} => return true,
        }
        false
    }

    /// Routes one response to the output stream (used by front-ends for
    /// request-level errors the engine itself never sees, e.g. unparseable
    /// lines).
    pub fn respond(&self, conn: u64, response: Response) {
        let _ = self.out.push(OutEvent::Response { conn, response });
    }

    /// Graceful drain: stops admissions, lets workers finish in-flight
    /// batches, finalizes un-ended sessions as `abstain`/`drain` (and any
    /// sessions orphaned by an unrecovered shard as `abstain`/
    /// `"shard-down"`), emits a broadcast [`Response::Drained`] and
    /// [`OutEvent::Closed`], and returns the final accounting. Idempotent:
    /// later calls just return the final stats.
    pub fn drain(&self) -> StatsMsg {
        if self.draining.swap(true, Ordering::SeqCst) {
            return self.counts.snapshot();
        }
        // Supervision stops first so a worker exiting on Drain is never
        // mistaken for a death (and never restarted mid-drain).
        if let Some(sup) = lock(&self.supervisor).take() {
            let _ = sup.join();
        }
        for shard in self.shards.iter() {
            let _ = shard.queue.push_control(ShardMsg::Drain);
        }
        let handles: Vec<JoinHandle<()>> =
            lock(&self.workers).iter_mut().filter_map(Option::take).collect();
        for worker in handles {
            let _ = worker.join();
        }
        for shard in self.shards.iter() {
            shard.queue.close();
        }
        // A worker that drained cleanly emptied its store; leftovers mean
        // the shard died undrained — finalize them so the identity holds.
        for shard in self.shards.iter() {
            finalize_store_as(&shard.store, &self.out, &self.counts, "shard-down");
        }
        let stats = self.counts.snapshot();
        debug_assert!(stats.accounted(), "drain accounting violated: {stats:?}");
        let _ = self.out.push(OutEvent::Response {
            conn: BROADCAST_CONN,
            response: Response::Drained(stats),
        });
        let _ = self.out.push(OutEvent::Closed);
        self.out.close();
        stats
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // A dropped (not drained) engine must not leave workers spinning.
        if !self.draining.swap(true, Ordering::SeqCst) {
            if let Some(sup) = lock(&self.supervisor).take() {
                let _ = sup.join();
            }
            for shard in self.shards.iter() {
                shard.queue.close();
            }
            self.out.close();
            for worker in lock(&self.workers).iter_mut().filter_map(Option::take) {
                let _ = worker.join();
            }
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Finalizes every session left in a dead shard's snapshot store as an
/// abstention with `reason` — the fail-fast and drain catch-all that keeps
/// `offered == decided + abstained + shed + quarantined` exact even when a
/// shard is never coming back.
fn finalize_store_as(
    store: &SnapshotStore,
    out: &BoundedQueue<OutEvent>,
    counts: &Counts,
    reason: &str,
) {
    let orphans: Vec<(SessionKey, SessionSnapshot)> = lock(store).drain().collect();
    for (key, snap) in orphans {
        let votes: Vec<Option<bool>> = snap
            .slots
            .iter()
            .map(|s| match s {
                Slot::Done(v) => *v,
                Slot::Pending => None,
            })
            .collect();
        let quorum = QuorumVerdict::from_votes(&votes);
        counts.abstained.fetch_add(1, Ordering::Relaxed);
        rhmd_obs::incr("serve.sessions.shard_down");
        let msg = VerdictMsg {
            tenant: key.tenant.to_string(),
            session: key.session.to_string(),
            verdict: "abstain".to_string(),
            reason: Some(reason.to_string()),
            voted: quorum.voted,
            abstained: quorum.abstained,
            flag_rate: quorum.flag_rate(),
        };
        let _ = out.push(OutEvent::Response {
            conn: snap.conn,
            response: Response::Verdict(msg),
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    idx: usize,
    queue: Arc<BoundedQueue<ShardMsg>>,
    store: Arc<SnapshotStore>,
    model: Arc<RwLock<Arc<ModelSnapshot>>>,
    out: Arc<BoundedQueue<OutEvent>>,
    counts: Arc<Counts>,
    config: ServeConfig,
    faults: EngineFaults,
    restore: bool,
) -> Result<JoinHandle<()>, RhmdError> {
    let mut worker = Worker::new(idx, queue, store, model, out, counts, config, faults);
    if restore {
        worker.restore_sessions();
    }
    std::thread::Builder::new()
        .name(format!("rhmd-serve-{idx}"))
        .spawn(move || worker.run())
        .map_err(|e| RhmdError::config(format!("serve: spawn worker {idx}: {e}")))
}

/// The supervision loop: detect dead shard workers, restart them from the
/// snapshot store under the restart budget with deterministic exponential
/// backoff, fail fast when the budget runs out. Exits as soon as the
/// engine begins draining.
struct Supervisor {
    shards: Arc<Vec<ShardHandle>>,
    workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    model: Arc<RwLock<Arc<ModelSnapshot>>>,
    out: Arc<BoundedQueue<OutEvent>>,
    counts: Arc<Counts>,
    config: ServeConfig,
    faults: EngineFaults,
    draining: Arc<AtomicBool>,
    failed: Arc<AtomicBool>,
    last_error: Arc<Mutex<Option<String>>>,
    recovery_ns: Arc<Mutex<Vec<u64>>>,
}

impl Supervisor {
    fn run(self) {
        let mut restarts = vec![0u32; self.shards.len()];
        loop {
            if self.draining.load(Ordering::SeqCst) {
                return;
            }
            for (idx, spent) in restarts.iter_mut().enumerate() {
                let finished = lock(&self.workers)[idx]
                    .as_ref()
                    .is_some_and(JoinHandle::is_finished);
                if !finished {
                    continue;
                }
                if self.draining.load(Ordering::SeqCst) {
                    return;
                }
                let began = Instant::now();
                let handle = lock(&self.workers)[idx].take();
                let cause = match handle.map(JoinHandle::join) {
                    Some(Err(payload)) => Some(panic_message(payload.as_ref())),
                    _ => None, // clean exit (engine dropping) — not a death
                };
                let Some(cause) = cause else { continue };
                rhmd_obs::incr("serve.shard.deaths");
                if *spent >= self.config.restart_budget {
                    self.fail_shard(
                        idx,
                        &format!(
                            "died ({cause}) with restart budget {} exhausted",
                            self.config.restart_budget
                        ),
                    );
                    continue;
                }
                // Deterministic exponential backoff: restart n waits
                // base * 2^n, capped so a misconfigured base cannot stall
                // supervision for minutes.
                let backoff = self
                    .config
                    .restart_backoff
                    .saturating_mul(1u32 << (*spent).min(16))
                    .min(Duration::from_secs(2));
                std::thread::sleep(backoff);
                *spent += 1;
                *lock(&self.last_error) =
                    Some(format!("shard {idx} died ({cause}); restart {spent}"));
                match spawn_worker(
                    idx,
                    Arc::clone(&self.shards[idx].queue),
                    Arc::clone(&self.shards[idx].store),
                    Arc::clone(&self.model),
                    Arc::clone(&self.out),
                    Arc::clone(&self.counts),
                    self.config.clone(),
                    self.faults.clone(),
                    true,
                ) {
                    Ok(h) => {
                        lock(&self.workers)[idx] = Some(h);
                        self.counts.shard_restarts.fetch_add(1, Ordering::Relaxed);
                        let ns = began.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        rhmd_obs::incr("serve.shard.restarts");
                        rhmd_obs::observe_ns("serve.shard.recovery", ns);
                        lock(&self.recovery_ns).push(ns);
                    }
                    Err(e) => self.fail_shard(idx, &format!("respawn failed: {e}")),
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Fail-fast: close the shard's ingest (new sessions are refused before
    /// they are ever offered), give every stored session an explicit
    /// `abstain`/`shard-down` verdict, and flag the engine failed so
    /// front-ends drain instead of limping.
    fn fail_shard(&self, idx: usize, why: &str) {
        self.shards[idx].queue.close();
        *lock(&self.last_error) = Some(format!("shard {idx}: {why}"));
        rhmd_obs::incr("serve.shard.failed");
        finalize_store_as(&self.shards[idx].store, &self.out, &self.counts, "shard-down");
        self.failed.store(true, Ordering::SeqCst);
    }
}

/// Best-effort panic payload extraction (`&str` / `String` payloads only).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Scores `keys[lo..hi]`'s rows inside a `catch_unwind` fence, bisecting on
/// panic to isolate poison rows. `scores[i]` becomes `Some(score)` for
/// healthy rows, `None` for poisoned ones (panicked or non-finite).
/// Scoring is row-independent, so healthy rows score identically whether
/// or not the batch was bisected around them — quarantine cannot perturb
/// innocent sessions' verdicts.
#[allow(clippy::too_many_arguments)]
fn score_guarded(
    hmd: &Hmd,
    dims: usize,
    flat: &[f64],
    keys: &[SessionKey],
    lo: usize,
    hi: usize,
    faults: &EngineFaults,
    scores: &mut [Option<f64>],
) {
    if lo >= hi {
        return;
    }
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let xs = FeatureMatrix::from_flat(dims, flat[lo * dims..hi * dims].to_vec());
        let mut s = vec![0.0; hi - lo];
        hmd.model().score_batch(&xs, &mut s);
        for (i, key) in keys[lo..hi].iter().enumerate() {
            if faults.panics(&key.tenant, &key.session) {
                panic!("injected scorer panic for {}/{}", key.tenant, key.session);
            }
            if faults.nans(&key.tenant, &key.session) {
                s[i] = f64::NAN;
            }
        }
        s
    }));
    match attempt {
        Ok(s) => {
            for (i, v) in s.into_iter().enumerate() {
                scores[lo + i] = v.is_finite().then_some(v);
            }
        }
        Err(_) if hi - lo == 1 => {
            scores[lo] = None;
        }
        Err(_) => {
            rhmd_obs::incr("serve.batch.bisects");
            let mid = lo + (hi - lo) / 2;
            score_guarded(hmd, dims, flat, keys, lo, mid, faults, scores);
            score_guarded(hmd, dims, flat, keys, mid, hi, faults, scores);
        }
    }
}

enum Entry {
    Live(Box<SessionState>),
    /// The session already got its (shed/quarantine) verdict; later events
    /// are ignored until the watchdog expires the marker.
    Tombstone(Instant),
}

struct Worker {
    idx: usize,
    queue: Arc<BoundedQueue<ShardMsg>>,
    model: Arc<RwLock<Arc<ModelSnapshot>>>,
    out: Arc<BoundedQueue<OutEvent>>,
    counts: Arc<Counts>,
    config: ServeConfig,
    faults: EngineFaults,
    store: Arc<SnapshotStore>,
    /// Sessions mutated since the last snapshot sync.
    dirty: HashSet<SessionKey>,
    sessions: HashMap<SessionKey, Entry>,
    batchers: HashMap<Arc<str>, MicroBatcher>,
    tenant_activity: HashMap<Arc<str>, Instant>,
    row: Vec<f64>,
    last_sweep: Instant,
    sweep_every: Duration,
    last_sync: Instant,
    /// Earliest client-requested verdict deadline across live sessions.
    nearest_deadline: Option<Instant>,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    fn new(
        idx: usize,
        queue: Arc<BoundedQueue<ShardMsg>>,
        store: Arc<SnapshotStore>,
        model: Arc<RwLock<Arc<ModelSnapshot>>>,
        out: Arc<BoundedQueue<OutEvent>>,
        counts: Arc<Counts>,
        config: ServeConfig,
        faults: EngineFaults,
    ) -> Worker {
        let shortest = config
            .session_deadline
            .into_iter()
            .chain(config.tenant_deadline)
            .min()
            .unwrap_or(Duration::from_secs(4));
        let sweep_every = (shortest / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
        Worker {
            idx,
            queue,
            model,
            out,
            counts,
            config,
            faults,
            store,
            dirty: HashSet::new(),
            sessions: HashMap::new(),
            batchers: HashMap::new(),
            tenant_activity: HashMap::new(),
            row: Vec::new(),
            last_sweep: Instant::now(),
            sweep_every,
            last_sync: Instant::now(),
            nearest_deadline: None,
        }
    }

    /// Rebuilds sessions from the snapshot store after a shard restart.
    /// Counts are untouched — these sessions were already offered.
    fn restore_sessions(&mut self) {
        let snaps: Vec<(SessionKey, SessionSnapshot)> = lock(&self.store)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        if snaps.is_empty() {
            return;
        }
        let period = read_snapshot(&self.model).hmd().spec().period;
        let now = Instant::now();
        rhmd_obs::add("serve.shard.sessions_restored", snaps.len() as u64);
        for (key, snap) in snaps {
            self.tenant_activity.insert(key.tenant.clone(), now);
            let state = SessionState::restore(period, self.config.min_fill, snap, now);
            if let Some(at) = state.deadline_at {
                self.nearest_deadline = Some(self.nearest_deadline.map_or(at, |n| n.min(at)));
            }
            self.sessions.insert(key, Entry::Live(Box::new(state)));
        }
    }

    fn run(mut self) {
        loop {
            let timeout = self.next_timeout();
            match self.queue.pop_timeout(timeout) {
                Some(ShardMsg::Drain) => {
                    self.drain();
                    return;
                }
                Some(ShardMsg::Kill) => self.die(),
                Some(msg) => self.handle(msg),
                None => {
                    if self.queue.is_closed() {
                        return; // engine dropped without drain
                    }
                }
            }
            self.tick(Instant::now());
        }
    }

    /// The chaos kill path: resolve every pending vote, sync every live
    /// session into the snapshot store, then die. Because the store is
    /// complete at the instant of death, the supervisor's restart is
    /// lossless and the recovered shard's verdicts are bit-identical.
    fn die(&mut self) -> ! {
        let tenants: Vec<Arc<str>> = self.batchers.keys().cloned().collect();
        for tenant in tenants {
            self.flush_tenant(&tenant);
        }
        self.sync_all();
        rhmd_obs::incr("serve.shard.killed");
        panic!("shard {} killed by kill_shard (chaos)", self.idx);
    }

    fn handle(&mut self, msg: ShardMsg) {
        match msg {
            ShardMsg::Event {
                key,
                conn,
                seq,
                window,
                deadline_ms,
            } => self.on_event(key, conn, seq, &window, deadline_ms),
            ShardMsg::End { key, conn, at } => self.on_end(&key, conn, at),
            ShardMsg::Shed { key, conn } => self.on_shed(key, conn),
            // Only reachable from drain()'s inner loop, where both are
            // no-ops (the shard is already terminating).
            ShardMsg::Drain | ShardMsg::Kill => {}
        }
    }

    /// Time until the nearest open batch deadline, clamped so watchdog
    /// sweeps and client deadlines stay timely even on an idle shard.
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut timeout = Duration::from_millis(50).min(self.sweep_every);
        for batcher in self.batchers.values() {
            if let Some(at) = batcher.deadline_at() {
                timeout = timeout.min(at.saturating_duration_since(now));
            }
        }
        if let Some(at) = self.nearest_deadline {
            timeout = timeout.min(at.saturating_duration_since(now));
        }
        timeout.max(Duration::from_millis(1))
    }

    fn on_event(
        &mut self,
        key: SessionKey,
        conn: u64,
        seq: u64,
        window: &RawWindow,
        deadline_ms: Option<u64>,
    ) {
        let now = Instant::now();
        self.tenant_activity.insert(key.tenant.clone(), now);
        let snap = read_snapshot(&self.model);
        let period = snap.hmd().spec().period;
        let min_fill = self.config.min_fill;
        if !self.sessions.contains_key(&key) {
            self.counts.offered_sessions.fetch_add(1, Ordering::Relaxed);
            rhmd_obs::incr("serve.sessions.offered");
            let state = SessionState::new(period, min_fill, conn, now);
            // Synced at creation: a session's *existence* must survive
            // worker death, or its verdict could be lost and the
            // accounting identity broken.
            lock(&self.store).insert(key.clone(), state.snapshot());
            self.sessions.insert(key.clone(), Entry::Live(Box::new(state)));
        }
        let state = match self.sessions.get_mut(&key) {
            Some(Entry::Live(s)) => s,
            _ => return, // already verdicted (shed/quarantined)
        };
        state.last_activity = now;
        state.conn = conn;
        if let Some(ms) = deadline_ms {
            state.tighten_deadline(now + Duration::from_millis(ms));
            let at = state.deadline_at.unwrap_or(now);
            self.nearest_deadline = Some(self.nearest_deadline.map_or(at, |n| n.min(at)));
        }
        let Some(gap) = state.admit_seq(seq) else {
            // Stale or duplicate re-delivery: repaired by dropping, which
            // is exactly what makes a redelivered stream assemble
            // bit-identically to a clean one.
            self.counts.stale_frames.fetch_add(1, Ordering::Relaxed);
            rhmd_obs::incr("serve.frames.stale_dropped");
            return;
        };
        if gap > 0 {
            rhmd_obs::add("serve.seq_gaps", gap);
        }
        self.dirty.insert(key.clone());
        if let Some(sealed) = state.assembler.push(window) {
            match sealed {
                Sealed::Window(w) => {
                    if self.enqueue_vote(&key, &snap, &w, now) {
                        rhmd_obs::incr("serve.batch.flush_full");
                        self.flush_tenant(&key.tenant.clone());
                    }
                }
                Sealed::Dropped => {}
            }
        }
    }

    /// Projects one sealed window into its tenant's micro-batch (or
    /// resolves the vote immediately when the window abstains). Returns
    /// `true` when the batch hit its size trigger.
    fn enqueue_vote(
        &mut self,
        key: &SessionKey,
        snap: &ModelSnapshot,
        window: &RawWindow,
        now: Instant,
    ) -> bool {
        let dims = snap.hmd().spec().dims();
        let Some(Entry::Live(state)) = self.sessions.get_mut(key) else {
            return false;
        };
        let slot = state.slots.len();
        if window.instructions == 0 {
            state.slots.push(Slot::Done(None));
            return false;
        }
        if dims == 0 {
            // Degenerate spec: no batch path, mirror the per-window fallback
            // the batch evaluator uses.
            state.slots.push(Slot::Done(snap.hmd().classify_window_checked(window)));
            return false;
        }
        self.row.clear();
        snap.hmd().spec().project_into(window, &mut self.row);
        if self.row.iter().any(|x| !x.is_finite() || x.abs() > ABSTAIN_BOUND) {
            rhmd_obs::incr("serve.windows.abstained_corrupt");
            state.slots.push(Slot::Done(None));
            return false;
        }
        state.slots.push(Slot::Pending);
        let batch_max = self.config.batch_max;
        let batch_deadline = self.config.batch_deadline;
        let batcher = self
            .batchers
            .entry(key.tenant.clone())
            .or_insert_with(|| MicroBatcher::new(dims, batch_max, batch_deadline));
        batcher.push(key.clone(), slot, &self.row, now)
    }

    /// Scores a tenant's buffered batch inside the poison-pill fence and
    /// scatters votes back into the owning sessions' slots. Rows whose
    /// scoring panicked or produced non-finite values quarantine their
    /// session; every other row keeps its exact score.
    fn flush_tenant(&mut self, tenant: &Arc<str>) {
        let Some(batcher) = self.batchers.get_mut(tenant) else {
            return;
        };
        if batcher.is_empty() {
            return;
        }
        let dims = batcher.dims();
        let taken = batcher.take();
        let snap = read_snapshot(&self.model);
        let rows = taken.entries.len();
        let keys: Vec<SessionKey> = taken.entries.iter().map(|(k, _)| k.clone()).collect();
        let mut scores: Vec<Option<f64>> = vec![None; rows];
        score_guarded(
            snap.hmd(),
            dims,
            &taken.flat,
            &keys,
            0,
            rows,
            &self.faults,
            &mut scores,
        );
        let threshold = snap.hmd().model().threshold();
        rhmd_obs::incr("serve.batch.flushes");
        rhmd_obs::add("serve.windows.scored", rows as u64);
        if rhmd_obs::enabled() {
            rhmd_obs::add(
                &format!("{}.windows_scored", rhmd_obs::labeled("serve.tenant", tenant)),
                rows as u64,
            );
        }
        let mut poisoned: Vec<SessionKey> = Vec::new();
        for ((key, slot), score) in taken.entries.into_iter().zip(scores) {
            if let Some(Entry::Live(state)) = self.sessions.get_mut(&key) {
                if let Some(s) = state.slots.get_mut(slot) {
                    *s = match score {
                        Some(v) => Slot::Done(Some(v >= threshold)),
                        None => Slot::Done(None),
                    };
                }
            }
            if score.is_none() && !poisoned.contains(&key) {
                poisoned.push(key);
            }
        }
        for key in poisoned {
            self.quarantine(&key);
        }
    }

    /// Poison-pill isolation: the session's scoring panicked or produced
    /// non-finite values. It gets an explicit `abstain`/`quarantine`
    /// verdict built from whatever votes resolved cleanly, is counted in
    /// the `quarantined` accounting term, and is tombstoned so the rest of
    /// its stream drops at the door.
    fn quarantine(&mut self, key: &SessionKey) {
        let Some(Entry::Live(state)) = self.forget(key) else {
            return;
        };
        let now = Instant::now();
        let quorum = QuorumVerdict::from_votes(&state.votes_lossy());
        self.counts.quarantined.fetch_add(1, Ordering::Relaxed);
        rhmd_obs::incr("serve.sessions.quarantined");
        self.sessions.insert(key.clone(), Entry::Tombstone(now));
        self.emit_verdict(state.conn, key, &quorum, "abstain", Some("quarantine"), now);
    }

    /// Removes a session from the live map, the dirty set, and the
    /// snapshot store — the single exit point every finalize path goes
    /// through, so the store never resurrects a verdicted session.
    fn forget(&mut self, key: &SessionKey) -> Option<Entry> {
        self.dirty.remove(key);
        lock(&self.store).remove(key);
        self.sessions.remove(key)
    }

    /// Re-syncs sessions mutated since the last sync into the store.
    fn sync_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let mut store = lock(&self.store);
        for key in self.dirty.drain() {
            if let Some(Entry::Live(state)) = self.sessions.get(&key) {
                store.insert(key, state.snapshot());
            }
        }
    }

    /// Syncs every live session (the kill path's lossless handoff).
    fn sync_all(&mut self) {
        self.dirty.clear();
        let mut store = lock(&self.store);
        for (key, entry) in &self.sessions {
            if let Entry::Live(state) = entry {
                store.insert(key.clone(), state.snapshot());
            }
        }
    }

    fn on_end(&mut self, key: &SessionKey, conn: u64, at: Instant) {
        self.tenant_activity.insert(key.tenant.clone(), at);
        match self.sessions.get(key) {
            None => {
                // A session whose stream was empty: offered and abstained in
                // one step (no evidence at all).
                self.counts.offered_sessions.fetch_add(1, Ordering::Relaxed);
                rhmd_obs::incr("serve.sessions.offered");
                self.counts.abstained.fetch_add(1, Ordering::Relaxed);
                self.emit_verdict(conn, key, &QuorumVerdict::from_votes(&[]), "abstain", Some("coverage"), at);
            }
            Some(Entry::Tombstone(_)) => {
                // Shed or quarantined earlier; its verdict is already out.
                self.forget(key);
            }
            Some(Entry::Live(_)) => {
                let snap = read_snapshot(&self.model);
                let now = Instant::now();
                let tail = match self.sessions.get_mut(key) {
                    Some(Entry::Live(state)) => state.assembler.finish(),
                    _ => None,
                };
                if let Some(Sealed::Window(w)) = tail {
                    self.enqueue_vote(key, &snap, &w, now);
                }
                // Resolve every pending slot before judging. This can
                // quarantine `key` itself, in which case finalize_end
                // finds nothing live and the quarantine verdict stands.
                self.flush_tenant(&key.tenant.clone());
                self.finalize_end(key, at);
            }
        }
    }

    fn finalize_end(&mut self, key: &SessionKey, at: Instant) {
        let Some(Entry::Live(state)) = self.forget(key) else {
            return;
        };
        let votes = state.votes();
        let quorum = QuorumVerdict::from_votes(&votes);
        let (verdict, reason) = if quorum.voted == 0 || quorum.coverage() < self.config.min_coverage
        {
            ("abstain", Some("coverage"))
        } else if quorum.is_malware() {
            ("malware", None)
        } else {
            ("benign", None)
        };
        if reason.is_none() {
            self.counts.decided.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counts.abstained.fetch_add(1, Ordering::Relaxed);
        }
        self.emit_verdict(state.conn, key, &quorum, verdict, reason, at);
    }

    fn on_shed(&mut self, key: SessionKey, conn: u64) {
        let now = Instant::now();
        self.tenant_activity.insert(key.tenant.clone(), now);
        let live = matches!(self.sessions.get(&key), Some(Entry::Live(_)));
        if live {
            // Mid-stream shed: resolve what already scored so the verdict
            // line reports how far the session got. The flush can
            // quarantine the session, in which case the shed downgrade
            // below finds a tombstone and becomes a no-op.
            self.flush_tenant(&key.tenant.clone());
        }
        if matches!(self.sessions.get(&key), Some(Entry::Tombstone(_))) {
            return; // duplicate shed notice, or quarantined during flush
        }
        let quorum = match self.forget(&key) {
            Some(Entry::Live(state)) => QuorumVerdict::from_votes(&state.votes_lossy()),
            _ => {
                // First contact under overload: the session is offered and
                // shed in one step.
                self.counts.offered_sessions.fetch_add(1, Ordering::Relaxed);
                rhmd_obs::incr("serve.sessions.offered");
                QuorumVerdict::from_votes(&[])
            }
        };
        self.counts.shed_sessions.fetch_add(1, Ordering::Relaxed);
        rhmd_obs::incr("serve.sessions.shed");
        self.sessions.insert(key.clone(), Entry::Tombstone(now));
        self.emit_verdict(conn, &key, &quorum, "abstain", Some("shed"), now);
    }

    /// Finalizes a live session as an abstention (`drain`, `deadline`,
    /// `tenant-deadline`). The tenant's batch must already be flushed.
    fn finalize_abstain(&mut self, key: &SessionKey, reason: &str) {
        let Some(Entry::Live(state)) = self.forget(key) else {
            return;
        };
        let quorum = QuorumVerdict::from_votes(&state.votes());
        self.counts.abstained.fetch_add(1, Ordering::Relaxed);
        self.emit_verdict(state.conn, key, &quorum, "abstain", Some(reason), Instant::now());
    }

    fn emit_verdict(
        &self,
        conn: u64,
        key: &SessionKey,
        quorum: &QuorumVerdict,
        verdict: &str,
        reason: Option<&str>,
        since: Instant,
    ) {
        rhmd_obs::observe_ns(
            "serve.verdict_latency",
            since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        );
        if rhmd_obs::enabled() {
            let base = rhmd_obs::labeled("serve.tenant", &key.tenant);
            let outcome = if reason.is_some() { "abstained" } else { "decided" };
            rhmd_obs::incr(&format!("{base}.{outcome}"));
        }
        let msg = VerdictMsg {
            tenant: key.tenant.to_string(),
            session: key.session.to_string(),
            verdict: verdict.to_string(),
            reason: reason.map(str::to_string),
            voted: quorum.voted,
            abstained: quorum.abstained,
            flag_rate: quorum.flag_rate(),
        };
        // Blocking push: verdicts are never dropped; a slow consumer stalls
        // this worker, which is exactly how backpressure reaches admission.
        let _ = self.out.push(OutEvent::Response {
            conn,
            response: Response::Verdict(msg),
        });
    }

    /// Deadline batch flushes, client-deadline enforcement, snapshot
    /// syncs, and (rate-limited) watchdog sweeps.
    fn tick(&mut self, now: Instant) {
        let expired: Vec<Arc<str>> = self
            .batchers
            .iter()
            .filter(|(_, b)| b.expired(now))
            .map(|(t, _)| t.clone())
            .collect();
        for tenant in expired {
            rhmd_obs::incr("serve.batch.flush_deadline");
            self.flush_tenant(&tenant);
        }
        self.enforce_request_deadlines(now);
        if now.saturating_duration_since(self.last_sync) >= self.config.snapshot_every {
            self.last_sync = now;
            self.sync_dirty();
        }
        if now.saturating_duration_since(self.last_sweep) >= self.sweep_every {
            self.last_sweep = now;
            self.sweep(now);
        }
    }

    /// Per-request deadline propagation: a session whose client-requested
    /// deadline passed finalizes as an explicit `abstain`/`deadline` right
    /// now — a late verdict becomes an abstention, never a stall.
    fn enforce_request_deadlines(&mut self, now: Instant) {
        let Some(at) = self.nearest_deadline else {
            return;
        };
        if now < at {
            return;
        }
        let overdue: Vec<SessionKey> = self
            .sessions
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Live(s) if s.past_deadline(now) => Some(k.clone()),
                _ => None,
            })
            .collect();
        for key in overdue {
            rhmd_obs::incr("serve.watchdog.request_deadline");
            self.flush_tenant(&key.tenant.clone());
            self.finalize_abstain(&key, "deadline");
        }
        self.nearest_deadline = self
            .sessions
            .values()
            .filter_map(|e| match e {
                Entry::Live(s) => s.deadline_at,
                Entry::Tombstone(_) => None,
            })
            .min();
    }

    fn sweep(&mut self, now: Instant) {
        // Tombstones always expire, even with the idle watchdog disabled —
        // they are door markers, not sessions, and must not accumulate.
        let ttl = self.config.session_deadline.unwrap_or(Duration::from_secs(60));
        self.sessions.retain(|_, e| match e {
            Entry::Tombstone(at) => now.saturating_duration_since(*at) < ttl,
            Entry::Live(_) => true,
        });
        if let Some(deadline) = self.config.session_deadline {
            let stale: Vec<SessionKey> = self
                .sessions
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Live(s)
                        if now.saturating_duration_since(s.last_activity) >= deadline =>
                    {
                        Some(k.clone())
                    }
                    _ => None,
                })
                .collect();
            for key in stale {
                rhmd_obs::incr("serve.watchdog.session_expired");
                self.flush_tenant(&key.tenant.clone());
                self.finalize_abstain(&key, "deadline");
            }
        }
        if let Some(deadline) = self.config.tenant_deadline {
            let stale_tenants: Vec<Arc<str>> = self
                .tenant_activity
                .iter()
                .filter(|(_, at)| now.saturating_duration_since(**at) >= deadline)
                .map(|(t, _)| t.clone())
                .collect();
            for tenant in stale_tenants {
                rhmd_obs::incr("serve.watchdog.tenant_expired");
                self.flush_tenant(&tenant);
                let keys: Vec<SessionKey> = self
                    .sessions
                    .iter()
                    .filter_map(|(k, e)| match e {
                        Entry::Live(_) if k.tenant == tenant => Some(k.clone()),
                        _ => None,
                    })
                    .collect();
                for key in keys {
                    self.finalize_abstain(&key, "tenant-deadline");
                }
                self.tenant_activity.remove(&tenant);
            }
        }
    }

    /// Drain: absorb already-queued stragglers, flush every batch, and
    /// finalize whatever is still live as `abstain`/`drain`.
    fn drain(&mut self) {
        while let Some(msg) = self.queue.pop_timeout(Duration::from_millis(10)) {
            match msg {
                ShardMsg::Drain | ShardMsg::Kill => {}
                other => self.handle(other),
            }
        }
        let tenants: Vec<Arc<str>> = self.batchers.keys().cloned().collect();
        for tenant in tenants {
            self.flush_tenant(&tenant);
        }
        let live: Vec<SessionKey> = self
            .sessions
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Live(_) => Some(k.clone()),
                Entry::Tombstone(_) => None,
            })
            .collect();
        for key in live {
            rhmd_obs::incr("serve.sessions.drained");
            self.finalize_abstain(&key, "drain");
        }
        // Anything left in the store is a tombstoned leftover already
        // verdicted; clear it so the engine's drain catch-all does not
        // double-finalize.
        lock(&self.store).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
    use rhmd_features::vector::{FeatureKind, FeatureSpec};
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits, Hmd) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let hmd = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        (traced, splits, hmd)
    }

    /// Collects exactly `expect` verdicts, or a typed error if the output
    /// closes first — supervision-observable instead of a panic.
    fn collect_verdicts(
        out: &BoundedQueue<OutEvent>,
        expect: usize,
    ) -> Result<HashMap<(String, String), VerdictMsg>, RhmdError> {
        let mut verdicts = HashMap::new();
        while verdicts.len() < expect {
            match out.pop() {
                Some(OutEvent::Response {
                    response: Response::Verdict(v),
                    ..
                }) => {
                    let prev = verdicts.insert((v.tenant.clone(), v.session.clone()), v);
                    assert!(prev.is_none(), "duplicate verdict for a session");
                }
                Some(_) => {}
                None => {
                    return Err(RhmdError::io(
                        "serve output",
                        format!("closed after {} of {expect} verdicts", verdicts.len()),
                    ))
                }
            }
        }
        Ok(verdicts)
    }

    #[test]
    fn replay_matches_batch_evaluation() {
        let (traced, splits, hmd) = fixture();
        for shards in [1, 3] {
            let engine = Engine::start_with_faults(
                hmd.clone(),
                ServeConfig {
                    shards,
                    session_deadline: None,
                    tenant_deadline: None,
                    ..ServeConfig::default()
                },
                EngineFaults::default(),
            )
            .unwrap();
            let out = engine.output();
            let programs: Vec<usize> = splits.attacker_test.iter().copied().take(6).collect();
            for &i in &programs {
                let session = format!("p{i}");
                for (seq, sub) in traced.subwindows(i).iter().enumerate() {
                    engine.submit_event(0, "t0", &session, seq as u64, Box::new(sub.clone()), None);
                }
                engine.submit_end(0, "t0", &session);
            }
            let verdicts = collect_verdicts(&out, programs.len()).unwrap();
            for &i in &programs {
                let batch = hmd.verdict(traced.subwindows(i));
                let served = &verdicts[&("t0".to_string(), format!("p{i}"))];
                if batch.total == 0 {
                    assert_eq!(served.verdict, "abstain", "program {i}");
                } else {
                    let expected = if batch.is_malware() { "malware" } else { "benign" };
                    assert_eq!(served.verdict, expected, "program {i} at {shards} shards");
                    assert_eq!(served.voted, batch.total, "program {i}");
                    assert!((served.flag_rate - batch.flag_rate()).abs() < 1e-12);
                }
            }
            let stats = engine.drain();
            assert!(stats.accounted(), "{stats:?}");
            assert_eq!(stats.offered_sessions, programs.len() as u64);
            assert_eq!(stats.shed_sessions, 0);
            assert_eq!(stats.quarantined, 0);
        }
    }

    #[test]
    fn overload_sheds_loudly_and_accounts_everything() {
        let (traced, _, hmd) = fixture();
        let engine = Engine::start_with_faults(
            hmd,
            ServeConfig {
                shards: 1,
                queue: crate::queue::Watermarks {
                    capacity: 8,
                    high: 2,
                    low: 0,
                },
                output: crate::queue::Watermarks {
                    capacity: 1,
                    high: 1,
                    low: 0,
                },
                session_deadline: None,
                tenant_deadline: None,
                ..ServeConfig::default()
            },
            EngineFaults::default(),
        )
        .unwrap();
        let out = engine.output();
        let subs = traced.subwindows(0);
        // Two quick sessions: the first verdict fills the output queue (no
        // consumer yet), the second blocks the worker on its push.
        for s in ["warm0", "warm1"] {
            for (seq, sub) in subs.iter().take(10).enumerate() {
                engine.submit_event(0, "t0", s, seq as u64, Box::new(sub.clone()), None);
            }
            engine.submit_end(0, "t0", s);
        }
        // Give the worker time to wedge against the full output queue.
        std::thread::sleep(Duration::from_millis(100));
        // Flood distinct sessions: the tiny ingest queue saturates and most
        // of these are refused at admission.
        for i in 0..40 {
            engine.submit_event(0, "t0", &format!("flood{i}"), 0, Box::new(subs[0].clone()), None);
        }
        assert!(engine.stats().shed_events > 0, "flood did not shed");
        // Now consume the output so the pipeline unwedges, then drain.
        let collector = std::thread::spawn({
            let out = Arc::clone(&out);
            move || {
                let mut verdicts: Vec<VerdictMsg> = Vec::new();
                while let Some(ev) = out.pop() {
                    match ev {
                        OutEvent::Response {
                            response: Response::Verdict(v),
                            ..
                        } => verdicts.push(v),
                        OutEvent::Closed => break,
                        _ => {}
                    }
                }
                verdicts
            }
        });
        let stats = engine.drain();
        let verdicts = collector.join().unwrap();
        assert!(stats.accounted(), "{stats:?}");
        assert!(stats.shed_sessions > 0, "{stats:?}");
        assert_eq!(
            verdicts.len() as u64,
            stats.offered_sessions,
            "exactly one verdict per offered session: {stats:?}"
        );
        let shed_lines = verdicts
            .iter()
            .filter(|v| v.reason.as_deref() == Some("shed"))
            .count() as u64;
        assert_eq!(shed_lines, stats.shed_sessions);
        // No session got two verdicts.
        let mut ids: Vec<&str> = verdicts.iter().map(|v| v.session.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), verdicts.len());
    }

    #[test]
    fn reload_validates_config_hash_and_keeps_serving() {
        let (traced, splits, hmd) = fixture();
        let engine = Engine::start_with_faults(
            hmd.clone(),
            ServeConfig::default(),
            EngineFaults::default(),
        )
        .unwrap();
        let before = engine.config_hash();
        // Same spec, retrained: accepted.
        let same = Hmd::train(
            Algorithm::Dt,
            hmd.spec().clone(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        assert_eq!(engine.reload(same).unwrap(), before);
        // Different period => different config hash: rejected, old model
        // stays.
        let other = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Architectural, 10_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let err = engine.reload(other).unwrap_err();
        assert!(matches!(err, RhmdError::Config(_)));
        assert_eq!(engine.config_hash(), before);
        let stats = engine.stats();
        assert_eq!(stats.reloads_ok, 1);
        assert_eq!(stats.reloads_rejected, 1);
    }

    #[test]
    fn session_watchdog_abstains_stalled_sessions() {
        let (traced, _, hmd) = fixture();
        let engine = Engine::start_with_faults(
            hmd,
            ServeConfig {
                shards: 1,
                session_deadline: Some(Duration::from_millis(50)),
                tenant_deadline: None,
                ..ServeConfig::default()
            },
            EngineFaults::default(),
        )
        .unwrap();
        let out = engine.output();
        // One event, never an End: the watchdog must finalize it.
        engine.submit_event(0, "t0", "stalled", 0, Box::new(traced.subwindows(0)[0].clone()), None);
        let verdicts = collect_verdicts(&out, 1).unwrap();
        let v = &verdicts[&("t0".to_string(), "stalled".to_string())];
        assert_eq!(v.verdict, "abstain");
        assert_eq!(v.reason.as_deref(), Some("deadline"));
        let stats = engine.drain();
        assert!(stats.accounted());
        assert_eq!(stats.abstained, 1);
    }

    #[test]
    fn client_deadline_turns_stall_into_abstention() {
        let (traced, _, hmd) = fixture();
        let engine = Engine::start_with_faults(
            hmd,
            ServeConfig {
                shards: 1,
                session_deadline: None,
                tenant_deadline: None,
                ..ServeConfig::default()
            },
            EngineFaults::default(),
        )
        .unwrap();
        let out = engine.output();
        // The frame carries a 30ms verdict deadline; the End never comes.
        engine.submit_event(
            0,
            "t0",
            "slow",
            0,
            Box::new(traced.subwindows(0)[0].clone()),
            Some(30),
        );
        let verdicts = collect_verdicts(&out, 1).unwrap();
        let v = &verdicts[&("t0".to_string(), "slow".to_string())];
        assert_eq!(v.verdict, "abstain");
        assert_eq!(v.reason.as_deref(), Some("deadline"));
        let stats = engine.drain();
        assert!(stats.accounted(), "{stats:?}");
    }

    #[test]
    fn stale_and_duplicate_frames_are_repaired_not_fatal() {
        let (traced, splits, hmd) = fixture();
        let program = splits.attacker_test[0];
        let subs = traced.subwindows(program);
        let run = |chaotic: bool| {
            let engine = Engine::start_with_faults(
                hmd.clone(),
                ServeConfig {
                    shards: 1,
                    session_deadline: None,
                    tenant_deadline: None,
                    ..ServeConfig::default()
                },
                EngineFaults::default(),
            )
            .unwrap();
            let out = engine.output();
            for (seq, sub) in subs.iter().enumerate() {
                engine.submit_event(0, "t0", "s", seq as u64, Box::new(sub.clone()), None);
                if chaotic {
                    // Duplicate of the frame just sent, plus a stale replay
                    // of frame 0: both must drop at the sequence filter.
                    engine.submit_event(0, "t0", "s", seq as u64, Box::new(sub.clone()), None);
                    engine.submit_event(0, "t0", "s", 0, Box::new(subs[0].clone()), None);
                }
            }
            engine.submit_end(0, "t0", "s");
            let verdicts = collect_verdicts(&out, 1).unwrap();
            let stats = engine.drain();
            (verdicts[&("t0".to_string(), "s".to_string())].clone(), stats)
        };
        let (clean, _) = run(false);
        let (faulted, stats) = run(true);
        assert_eq!(clean, faulted, "re-deliveries changed the verdict");
        assert!(stats.accounted(), "{stats:?}");
        assert!(stats.stale_frames > 0, "{stats:?}");
    }

    #[test]
    fn poison_sessions_quarantine_without_harming_neighbors() {
        let (traced, splits, hmd) = fixture();
        let programs: Vec<usize> = splits.attacker_test.iter().copied().take(6).collect();
        let faults = EngineFaults {
            score_panic: 0.5,
            score_nan: 0.3,
            seed: 11,
        };
        let run = |f: EngineFaults| {
            let engine = Engine::start_with_faults(
                hmd.clone(),
                ServeConfig {
                    shards: 2,
                    session_deadline: None,
                    tenant_deadline: None,
                    ..ServeConfig::default()
                },
                f,
            )
            .unwrap();
            let out = engine.output();
            for &i in &programs {
                let session = format!("p{i}");
                for (seq, sub) in traced.subwindows(i).iter().enumerate() {
                    engine.submit_event(0, "t0", &session, seq as u64, Box::new(sub.clone()), None);
                }
                engine.submit_end(0, "t0", &session);
            }
            let verdicts = collect_verdicts(&out, programs.len()).unwrap();
            let stats = engine.drain();
            (verdicts, stats)
        };
        let (clean, _) = run(EngineFaults::default());
        let (chaotic, stats) = run(faults.clone());
        assert!(stats.accounted(), "{stats:?}");
        let mut quarantined = 0u64;
        for &i in &programs {
            let id = ("t0".to_string(), format!("p{i}"));
            if faults.quarantines("t0", &format!("p{i}")) {
                assert_eq!(chaotic[&id].verdict, "abstain", "p{i}");
                assert_eq!(chaotic[&id].reason.as_deref(), Some("quarantine"), "p{i}");
                quarantined += 1;
            } else {
                assert_eq!(chaotic[&id], clean[&id], "untargeted p{i} perturbed");
            }
        }
        assert!(quarantined > 0, "fault rates too low to exercise quarantine");
        assert_eq!(stats.quarantined, quarantined, "{stats:?}");
        assert_eq!(stats.decided + stats.abstained, programs.len() as u64 - quarantined);
    }

    #[test]
    fn killed_shard_recovers_bit_identically() {
        let (traced, splits, hmd) = fixture();
        let programs: Vec<usize> = splits.attacker_test.iter().copied().take(4).collect();
        let run = |kill: bool| {
            let engine = Engine::start_with_faults(
                hmd.clone(),
                ServeConfig {
                    shards: 1,
                    session_deadline: None,
                    tenant_deadline: None,
                    ..ServeConfig::default()
                },
                EngineFaults::default(),
            )
            .unwrap();
            let out = engine.output();
            // First half of every session's stream...
            for &i in &programs {
                let session = format!("p{i}");
                let subs = traced.subwindows(i);
                for (seq, sub) in subs.iter().take(subs.len() / 2).enumerate() {
                    engine.submit_event(0, "t0", &session, seq as u64, Box::new(sub.clone()), None);
                }
            }
            if kill {
                // ...then the shard dies (flush + sync + panic) and the
                // supervisor restores it from snapshots...
                assert!(engine.kill_shard(0));
                let began = Instant::now();
                while engine.stats().shard_restarts == 0 {
                    assert!(began.elapsed() < Duration::from_secs(10), "no restart");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            // ...and the streams complete as if nothing happened.
            for &i in &programs {
                let session = format!("p{i}");
                let subs = traced.subwindows(i);
                for (seq, sub) in subs.iter().enumerate().skip(subs.len() / 2) {
                    engine.submit_event(0, "t0", &session, seq as u64, Box::new(sub.clone()), None);
                }
                engine.submit_end(0, "t0", &session);
            }
            let verdicts = collect_verdicts(&out, programs.len()).unwrap();
            let stats = engine.drain();
            (verdicts, stats)
        };
        let (clean, _) = run(false);
        let (recovered, stats) = run(true);
        assert!(stats.accounted(), "{stats:?}");
        assert_eq!(stats.shard_restarts, 1, "{stats:?}");
        for (id, v) in &clean {
            assert_eq!(recovered[id], *v, "verdict changed across kill/restore: {id:?}");
        }
        assert!(!recovered.is_empty());
    }

    #[test]
    fn exhausted_restart_budget_fails_fast_with_exact_accounting() {
        let (traced, _, hmd) = fixture();
        let engine = Engine::start_with_faults(
            hmd,
            ServeConfig {
                shards: 1,
                restart_budget: 0,
                session_deadline: None,
                tenant_deadline: None,
                ..ServeConfig::default()
            },
            EngineFaults::default(),
        )
        .unwrap();
        let out = engine.output();
        let subs = traced.subwindows(0);
        for (seq, sub) in subs.iter().take(3).enumerate() {
            engine.submit_event(0, "t0", "doomed", seq as u64, Box::new(sub.clone()), None);
        }
        assert!(engine.kill_shard(0));
        let began = Instant::now();
        while !engine.failed() {
            assert!(began.elapsed() < Duration::from_secs(10), "engine never failed fast");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(engine.last_error().unwrap().contains("budget"));
        // The doomed session got an explicit shard-down abstention.
        let verdicts = collect_verdicts(&out, 1).unwrap();
        let v = &verdicts[&("t0".to_string(), "doomed".to_string())];
        assert_eq!(v.verdict, "abstain");
        assert_eq!(v.reason.as_deref(), Some("shard-down"));
        let stats = engine.drain();
        assert!(stats.accounted(), "{stats:?}");
        assert_eq!(stats.shard_restarts, 0);
    }
}
