//! `rhmd-serve`: a resident detection service over the RHMD pipeline.
//!
//! The batch pipeline answers "is this corpus malware?" offline; this crate
//! answers it *online*: many concurrent program sessions stream
//! committed-event subwindows over a line protocol ([`proto`]), a sharded
//! engine ([`engine`]) assembles them into collection windows per session
//! ([`session`]), micro-batches the feature rows per tenant ([`batch`]),
//! scores them through the same `Classifier::score_batch` hot path the
//! batch evaluator uses, and emits exactly one verdict per session.
//!
//! The robustness contract, in order of importance:
//!
//! 1. **No silent drops.** Every offered session reaches exactly one
//!    terminal state — decided, abstained, shed, or quarantined — and the
//!    accounting identity
//!    `offered == decided + abstained + shed + quarantined` is checkable
//!    at any moment via the `stats` message.
//! 2. **Explicit backpressure.** Shard queues are bounded ([`queue`]); past
//!    the high watermark new work is refused and the affected sessions
//!    degrade to an explicit `abstain`/`shed` verdict instead of queueing
//!    without bound. Hysteresis (recover at the low watermark) prevents
//!    flapping.
//! 3. **Bit-identical replay.** With strict assembly (`min_fill = 1.0`) and
//!    no overload, replaying a corpus through the service yields the same
//!    per-program verdicts as `rhmd evaluate`, at any shard count — and
//!    wire-level chaos ([`chaos`]) must not change any non-quarantined
//!    session's verdict.
//! 4. **Blast-radius isolation.** A poison session — one whose windows
//!    panic the scorer or yield non-finite scores — is bisected out of its
//!    micro-batch, quarantined with an explicit `abstain`/`quarantine`
//!    verdict, and never takes down the batch, the shard, or the daemon.
//! 5. **Supervised recovery.** A dead shard worker is restarted from
//!    incremental session snapshots under a bounded restart budget with
//!    deterministic exponential backoff; an exhausted budget fails fast
//!    (every stored session gets an `abstain`/`shard-down` verdict and the
//!    engine flags itself failed) instead of limping silently.
//! 6. **Graceful degradation everywhere else.** Session, tenant, and
//!    per-request client deadlines turn stalls into abstentions; hot
//!    reload swaps the model atomically and rejects config-hash mismatches
//!    while continuing to serve the old model; drain finishes in-flight
//!    work before exiting.

#![warn(missing_docs)]

pub mod batch;
pub mod chaos;
pub mod engine;
pub mod proto;
pub mod queue;
pub mod server;
pub mod session;

use crate::queue::Watermarks;
use rhmd_core::RhmdError;
use std::time::Duration;

/// Tunables for the resident service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard worker threads (each owns a disjoint set of sessions).
    pub shards: usize,
    /// Watermarks for each shard's ingest queue.
    pub queue: Watermarks,
    /// Watermarks for the verdict/output queue (offer is never used on it,
    /// only blocking pushes, so only `capacity` matters).
    pub output: Watermarks,
    /// Micro-batch size trigger (rows).
    pub batch_max: usize,
    /// Micro-batch deadline trigger, measured from a batch's first row.
    pub batch_deadline: Duration,
    /// Idle deadline after which a session is finalized as an abstention
    /// with reason `"deadline"`. `None` disables the session watchdog.
    pub session_deadline: Option<Duration>,
    /// Idle deadline after which *all* of a tenant's live sessions are
    /// finalized with reason `"tenant-deadline"`. `None` disables it.
    pub tenant_deadline: Option<Duration>,
    /// Gap-tolerance floor for window assembly (1.0 = strict, the
    /// bit-identical-replay setting).
    pub min_fill: f64,
    /// Coverage floor below which a session's verdict abstains with reason
    /// `"coverage"` (matches `VerdictPolicy::judge_quorum` semantics).
    pub min_coverage: f64,
    /// How often each shard worker syncs dirty sessions into its in-memory
    /// snapshot store (the recovery substrate for shard restarts).
    pub snapshot_every: Duration,
    /// How many times the supervisor may restart any single shard before
    /// declaring the engine failed. `0` disables supervision restarts
    /// (first death fails fast).
    pub restart_budget: u32,
    /// Base delay of the supervisor's deterministic exponential backoff:
    /// restart `n` of a shard waits `restart_backoff * 2^n`.
    pub restart_backoff: Duration,
    /// How long a socket connection may stall *mid-frame* before it is
    /// disconnected as a slow-loris client. Idle connections with no
    /// partial frame buffered are never disconnected by this.
    pub read_stall: Duration,
    /// Per-write timeout for socket consumers; a client too slow to accept
    /// its verdicts is disconnected rather than allowed to wedge the
    /// writer thread (verdict delivery is per-connection best-effort; the
    /// accounting counters are the durable record).
    pub write_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: 2,
            queue: Watermarks {
                capacity: 4096,
                high: 3072,
                low: 1024,
            },
            output: Watermarks {
                capacity: 4096,
                high: 4096,
                low: 0,
            },
            batch_max: 64,
            batch_deadline: Duration::from_millis(5),
            session_deadline: Some(Duration::from_secs(30)),
            tenant_deadline: Some(Duration::from_secs(120)),
            min_fill: 1.0,
            min_coverage: 0.0,
            snapshot_every: Duration::from_millis(25),
            restart_budget: 5,
            restart_backoff: Duration::from_millis(10),
            read_stall: Duration::from_secs(5),
            write_timeout: Duration::from_secs(2),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Config`] on nonsensical values (zero shards,
    /// inconsistent watermarks, out-of-range floors).
    pub fn validate(&self) -> Result<(), RhmdError> {
        if self.shards == 0 {
            return Err(RhmdError::config("serve: shards must be at least 1"));
        }
        self.queue
            .validate()
            .map_err(|e| RhmdError::config(format!("serve ingest queue: {e}")))?;
        self.output
            .validate()
            .map_err(|e| RhmdError::config(format!("serve output queue: {e}")))?;
        if self.batch_max == 0 {
            return Err(RhmdError::config("serve: batch-max must be at least 1"));
        }
        if !self.min_fill.is_finite() || !(0.0..=1.0).contains(&self.min_fill) {
            return Err(RhmdError::config(format!(
                "serve: min-fill must be in [0, 1], got {}",
                self.min_fill
            )));
        }
        if !self.min_coverage.is_finite() || !(0.0..=1.0).contains(&self.min_coverage) {
            return Err(RhmdError::config(format!(
                "serve: min-coverage must be in [0, 1], got {}",
                self.min_coverage
            )));
        }
        if self.snapshot_every.is_zero() {
            return Err(RhmdError::config(
                "serve: snapshot-every must be positive",
            ));
        }
        if self.restart_budget > 0 && self.restart_backoff.is_zero() {
            return Err(RhmdError::config(
                "serve: restart-backoff must be positive when restarts are budgeted",
            ));
        }
        if self.read_stall.is_zero() || self.write_timeout.is_zero() {
            return Err(RhmdError::config(
                "serve: read-stall and write-timeout must be positive",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let mut c = ServeConfig {
            shards: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(c.validate(), Err(RhmdError::Config(_))));
        c.shards = 1;
        c.min_fill = 1.5;
        assert!(c.validate().is_err());
        c.min_fill = 1.0;
        c.queue.low = c.queue.capacity + 1;
        assert!(c.validate().is_err());
        c.queue.low = 0;
        c.snapshot_every = Duration::ZERO;
        assert!(c.validate().is_err());
        c.snapshot_every = Duration::from_millis(25);
        c.restart_backoff = Duration::ZERO;
        assert!(c.validate().is_err());
        c.restart_budget = 0;
        assert!(c.validate().is_ok(), "unbudgeted restarts need no backoff");
    }
}
