//! A dependency-free bounded MPSC queue with watermark-based admission
//! control.
//!
//! The service's backpressure story is built on three verbs:
//!
//! * [`BoundedQueue::offer`] — admission-controlled producer path. Past the
//!   *high* watermark the queue flips into shedding mode and refuses offers
//!   until the consumer drains it back below the *low* watermark
//!   (hysteresis, so the service does not flap between shedding and
//!   accepting on every element).
//! * [`BoundedQueue::push`] — blocking producer path for work that must
//!   never be dropped (verdicts, control messages). Blocks while the queue
//!   is at hard capacity, propagating backpressure upstream.
//! * [`BoundedQueue::push_control`] — capacity-exempt path for the rare,
//!   small control messages (shed notices, drain markers) whose delivery
//!   the no-silent-drops accounting depends on; exempting them from the
//!   capacity bound makes the control plane deadlock-free by construction.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Watermark configuration for a [`BoundedQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Hard bound for [`BoundedQueue::push`]; `offer` never exceeds `high`.
    pub capacity: usize,
    /// Admission refusals (shedding) begin when the length reaches `high`.
    pub high: usize,
    /// Shedding ends once the length drains back to `low` or below.
    pub low: usize,
}

impl Watermarks {
    /// Validates `low <= high <= capacity` and a nonzero capacity.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("queue capacity must be at least 1".to_string());
        }
        if self.high > self.capacity || self.low > self.high {
            return Err(format!(
                "watermarks must satisfy low <= high <= capacity, got low={} high={} capacity={}",
                self.low, self.high, self.capacity
            ));
        }
        Ok(())
    }
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    shedding: bool,
    closed: bool,
}

/// Bounded MPSC queue with explicit backpressure and shedding hysteresis.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    nonfull: Condvar,
    marks: Watermarks,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with the given watermarks, rejecting inconsistent
    /// ones with a typed error so supervision layers observe the failure
    /// instead of unwinding through a worker thread.
    ///
    /// # Errors
    ///
    /// Returns [`rhmd_core::RhmdError::Config`] when the watermarks violate
    /// `low <= high <= capacity` or the capacity is zero.
    pub fn try_new(marks: Watermarks) -> Result<BoundedQueue<T>, rhmd_core::RhmdError> {
        marks
            .validate()
            .map_err(|e| rhmd_core::RhmdError::config(format!("queue watermarks: {e}")))?;
        Ok(BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                shedding: false,
                closed: false,
            }),
            nonempty: Condvar::new(),
            nonfull: Condvar::new(),
            marks,
        })
    }

    /// Admission-controlled push: refuses (returns the item back) while the
    /// queue sheds. Shedding starts when the length reaches the high
    /// watermark and stops only once it drains to the low watermark —
    /// hysteresis, so one drained slot does not re-admit a flood.
    pub fn offer(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(item);
        }
        if inner.shedding {
            if inner.items.len() <= self.marks.low {
                inner.shedding = false;
            } else {
                return Err(item);
            }
        }
        if inner.items.len() >= self.marks.high {
            inner.shedding = true;
            return Err(item);
        }
        inner.items.push_back(item);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space below hard capacity. Returns the item
    /// back only if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        while inner.items.len() >= self.marks.capacity && !inner.closed {
            inner = match self.nonfull.wait(inner) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Capacity-exempt push for control messages; only fails when closed.
    pub fn push_control(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Pops the next item, waiting up to `timeout`. `None` on timeout or
    /// when the queue is closed and empty.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut inner = self.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.nonfull.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            inner = match self.nonempty.wait_timeout(inner, deadline - now) {
                Ok((g, _)) => g,
                Err(p) => p.into_inner().0,
            };
        }
    }

    /// Pops the next item, waiting until one arrives or the queue is closed
    /// and empty.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.nonfull.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = match self.nonempty.wait(inner) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Closes the queue: producers fail fast, consumers drain what remains.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        self.nonempty.notify_all();
        self.nonfull.notify_all();
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue is currently refusing offers.
    pub fn is_shedding(&self) -> bool {
        self.lock().shedding
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// The configured watermarks.
    pub fn watermarks(&self) -> Watermarks {
        self.marks
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn marks(capacity: usize, high: usize, low: usize) -> Watermarks {
        Watermarks { capacity, high, low }
    }

    #[test]
    fn watermark_validation() {
        assert!(marks(8, 6, 2).validate().is_ok());
        assert!(marks(0, 0, 0).validate().is_err());
        assert!(marks(8, 9, 2).validate().is_err());
        assert!(marks(8, 4, 6).validate().is_err());
    }

    #[test]
    fn offer_sheds_at_high_and_recovers_at_low() {
        let q = BoundedQueue::try_new(marks(16, 4, 1)).unwrap();
        for i in 0..4 {
            q.offer(i).unwrap();
        }
        // Length 4 == high: next offer flips to shedding and is refused.
        assert_eq!(q.offer(99), Err(99));
        assert!(q.is_shedding());
        // Draining to 2 (> low) is not enough — hysteresis holds.
        q.pop_timeout(Duration::from_millis(10)).unwrap();
        q.pop_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(q.offer(99), Err(99));
        // Draining to low (1) re-admits.
        q.pop_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(q.offer(7), Ok(()));
        assert!(!q.is_shedding());
    }

    #[test]
    fn control_pushes_bypass_capacity() {
        let q = BoundedQueue::try_new(marks(2, 2, 0)).unwrap();
        q.offer(1).unwrap();
        q.offer(2).unwrap();
        assert!(q.offer(3).is_err());
        q.push_control(100).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pop_timeout_times_out_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::try_new(marks(4, 3, 1)).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::try_new(marks(4, 3, 1)).unwrap();
        q.offer(1).unwrap();
        q.close();
        assert_eq!(q.offer(2), Err(2));
        assert_eq!(q.push_control(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::try_new(marks(1, 1, 0)).unwrap());
        q.push(1u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2u32))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn mpsc_delivers_everything_in_fifo_per_producer() {
        let q = Arc::new(BoundedQueue::try_new(marks(64, 48, 8)).unwrap());
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        q.push((p, i)).unwrap();
                    }
                })
            })
            .collect();
        let mut seen = vec![0u64; 4];
        for _ in 0..400 {
            let (p, i) = q.pop().unwrap();
            assert_eq!(i, seen[p as usize], "per-producer FIFO order");
            seen[p as usize] += 1;
        }
        for h in producers {
            h.join().unwrap();
        }
        assert_eq!(seen, vec![100; 4]);
    }
}
