//! Transport front-ends for the engine: NDJSON over stdin/stdout or a Unix
//! domain socket, plus dependency-free SIGTERM/SIGINT handling.
//!
//! Both front-ends share the same lifecycle: readers submit parsed
//! requests into the engine, a single writer thread drains the engine's
//! output queue, and the main thread polls for a shutdown condition (EOF,
//! a `drain` request, a signal, or a failed engine). Shutdown always goes
//! through [`crate::engine::Engine::drain`], so in-flight batches finish
//! and every offered session gets its verdict line before the process
//! exits.
//!
//! The transport layer is the outermost chaos boundary, and it assumes
//! every client is hostile or broken:
//!
//! * Frames are read through [`read_frame`], which enforces
//!   [`MAX_FRAME_BYTES`] with bounded memory — an oversized frame is
//!   *discarded as it streams in* and answered with a typed error, never
//!   buffered in proportion to its length.
//! * Parsed requests pass [`crate::proto::validate_request`] before they
//!   reach the engine: hostile identifiers and counter values draw a typed
//!   error response, not a panic or a garbled feature row.
//! * A connection stalled mid-frame for longer than
//!   [`crate::ServeConfig::read_stall`] is disconnected as a slow-loris
//!   client; a connection that is merely idle (no partial frame) is left
//!   alone indefinitely.
//! * Socket writes carry [`crate::ServeConfig::write_timeout`]; a consumer
//!   too slow to accept its verdicts is disconnected instead of wedging
//!   the shared writer thread.
//! * Transient `accept` errors are retried with backoff; only persistent
//!   failure closes the listener (into a graceful drain).
//! * Signals are counted, not latched: repeated SIGTERM/SIGINT during a
//!   drain are coalesced into the single drain already running
//!   (idempotent shutdown), and the socket file is unlinked exactly once,
//!   only if it is still *our* socket (a replacement server that already
//!   re-bound the path keeps its file).

use crate::engine::{Engine, OutEvent, BROADCAST_CONN};
use crate::proto::{
    parse_request, render_response, validate_request, Response, StatsMsg, MAX_FRAME_BYTES,
};
use rhmd_core::RhmdError;
use std::io::{BufRead, BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static SIGNALS: AtomicU64 = AtomicU64::new(0);

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic add. Counting (rather than a
        // boolean latch) keeps repeated signals observable while the drain
        // they coalesce into runs exactly once.
        SIGNALS.fetch_add(1, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicU64;
    pub static SIGNALS: AtomicU64 = AtomicU64::new(0);
    pub fn install() {}
}

/// Installs SIGTERM/SIGINT handlers that request a graceful drain (no-op
/// off Unix). Idempotent; re-installing never loses the signal count.
pub fn install_signal_handlers() {
    sig::install();
}

/// Whether a shutdown signal has been received.
pub fn shutdown_requested() -> bool {
    shutdown_signals() > 0
}

/// How many shutdown signals have been received. The first one initiates
/// the drain; later ones are coalesced into it (and visible here, so an
/// operator hammering ^C can be told the drain is already running).
pub fn shutdown_signals() -> u64 {
    sig::SIGNALS.load(std::sync::atomic::Ordering::SeqCst)
}

/// How often the main loop polls for shutdown conditions.
const POLL: Duration = Duration::from_millis(25);

/// Consecutive non-transient `accept` failures tolerated (with escalating
/// backoff) before the listener gives up and drains.
const ACCEPT_RETRY_BUDGET: u32 = 8;

/// Outcome of reading one NDJSON frame via [`read_frame`].
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete frame (without its newline).
    Line(String),
    /// The frame exceeded [`MAX_FRAME_BYTES`]; this many bytes were
    /// discarded (the stream itself remains usable).
    Oversized(usize),
    /// The read timed out with a partial frame buffered — the slow-loris
    /// posture. The caller should disconnect.
    Stalled,
    /// The read timed out with no partial frame buffered — a merely idle
    /// connection. The caller should keep waiting.
    Idle,
    /// End of stream (or hard transport error). `mid_frame` is true when
    /// the peer vanished with a partial frame buffered.
    Eof {
        /// Whether unterminated bytes were pending at disconnect.
        mid_frame: bool,
    },
}

/// Reads one newline-terminated frame from `input` with bounded memory:
/// a frame longer than [`MAX_FRAME_BYTES`] is discarded *while it streams
/// in* (never accumulated) and reported as [`Frame::Oversized`]. `partial`
/// carries an incomplete frame across calls, so timeouts ([`Frame::Idle`] /
/// [`Frame::Stalled`]) never lose buffered bytes.
///
/// This is the hostile-input boundary for the wire: arbitrary bytes in,
/// a typed [`Frame`] out, no panic, no unbounded allocation.
pub fn read_frame(input: &mut impl BufRead, partial: &mut Vec<u8>) -> Frame {
    let mut discarded = 0usize;
    loop {
        let chunk = match input.fill_buf() {
            Ok([]) => {
                let mid_frame = !partial.is_empty() || discarded > 0;
                partial.clear();
                return Frame::Eof { mid_frame };
            }
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if partial.is_empty() && discarded == 0 {
                    return Frame::Idle;
                }
                return Frame::Stalled;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                let mid_frame = !partial.is_empty() || discarded > 0;
                partial.clear();
                return Frame::Eof { mid_frame };
            }
        };
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if discarded > 0 {
            discarded += newline.map_or(take, |i| i);
        } else {
            partial.extend_from_slice(&chunk[..newline.map_or(take, |i| i)]);
            if partial.len() > MAX_FRAME_BYTES {
                discarded = partial.len();
                partial.clear();
            }
        }
        input.consume(take);
        if newline.is_some() {
            if discarded > 0 {
                return Frame::Oversized(discarded);
            }
            let line = String::from_utf8_lossy(partial).into_owned();
            partial.clear();
            return Frame::Line(line);
        }
    }
}

/// Serves the engine over stdin/stdout until EOF, a `drain` request, a
/// shutdown signal, or engine failure, then drains gracefully.
///
/// # Errors
///
/// Currently infallible at this layer (transport errors terminate the
/// affected reader/writer and lead into the drain path); the `Result` is
/// the stable shape for front-ends that can fail to bind.
pub fn serve_stdio(engine: Engine) -> Result<StatsMsg, RhmdError> {
    install_signal_handlers();
    let engine = Arc::new(engine);
    let out = engine.output();

    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        let mut w = BufWriter::new(stdout.lock());
        write_loop(&out, |_conn, line| {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        });
    });

    let reader = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            read_loop(&engine, 0, stdin.lock());
        })
    };

    while !shutdown_requested() && !reader.is_finished() && !engine.failed() {
        std::thread::sleep(POLL);
    }
    if engine.failed() {
        rhmd_obs::incr("serve.drain.engine_failed");
    }
    let stats = engine.drain();
    let _ = writer.join();
    // The reader may still be parked on a blocked stdin read after a
    // signal; it holds only an Arc and the process is about to exit, so it
    // is left detached rather than interrupted.
    Ok(stats)
}

/// Unlink-exactly-once, unlink-only-ours cleanup for the listener socket.
///
/// Without the identity check there is a shutdown race: a replacement
/// server can re-bind the path while this process is still mid-drain, and
/// the old unconditional `remove_file` would then delete the *new*
/// server's socket. The guard remembers the bound socket's `(dev, ino)`
/// and removes the path only while it still names that inode.
#[cfg(unix)]
struct SocketGuard {
    path: std::path::PathBuf,
    dev: u64,
    ino: u64,
    removed: AtomicBool,
}

#[cfg(unix)]
impl SocketGuard {
    fn new(path: &std::path::Path) -> std::io::Result<SocketGuard> {
        use std::os::unix::fs::MetadataExt;
        let meta = std::fs::symlink_metadata(path)?;
        Ok(SocketGuard {
            path: path.to_path_buf(),
            dev: meta.dev(),
            ino: meta.ino(),
            removed: AtomicBool::new(false),
        })
    }

    fn remove_if_ours(&self) {
        use std::os::unix::fs::MetadataExt;
        if self.removed.swap(true, Ordering::SeqCst) {
            return;
        }
        match std::fs::symlink_metadata(&self.path) {
            Ok(meta) if meta.dev() == self.dev && meta.ino() == self.ino => {
                let _ = std::fs::remove_file(&self.path);
            }
            _ => {
                // Replaced or already gone: not ours to delete.
                rhmd_obs::incr("serve.socket.replaced_during_drain");
            }
        }
    }
}

#[cfg(unix)]
impl Drop for SocketGuard {
    fn drop(&mut self) {
        self.remove_if_ours();
    }
}

/// Serves the engine over a Unix domain socket at `path` (created fresh;
/// an existing socket file is replaced). Accepts any number of concurrent
/// client connections; drains on a `drain` request, a shutdown signal, or
/// engine failure.
///
/// # Errors
///
/// Returns [`RhmdError::Io`] when the socket cannot be bound.
#[cfg(unix)]
pub fn serve_listener(engine: Engine, path: &std::path::Path) -> Result<StatsMsg, RhmdError> {
    use std::os::unix::net::UnixListener;

    install_signal_handlers();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .map_err(|e| RhmdError::io(format!("bind {}", path.display()), e.to_string()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| RhmdError::io(format!("socket {}", path.display()), e.to_string()))?;
    let guard = SocketGuard::new(path)
        .map_err(|e| RhmdError::io(format!("stat {}", path.display()), e.to_string()))?;

    let engine = Arc::new(engine);
    let out = engine.output();
    let write_timeout = engine.config().write_timeout;
    let read_stall = engine.config().read_stall;
    let conns: Arc<Mutex<std::collections::HashMap<u64, std::os::unix::net::UnixStream>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let drain_requested = Arc::new(AtomicBool::new(false));

    let writer = {
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            write_loop(&out, |conn, line| {
                let mut map = match conns.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                if conn == BROADCAST_CONN {
                    map.retain(|_, s| write_line(s, line));
                } else if let Some(s) = map.get_mut(&conn) {
                    if !write_line(s, line) {
                        // Slow or vanished consumer: the write timed out or
                        // failed, so the connection goes, not the daemon.
                        rhmd_obs::incr("serve.conns.write_dropped");
                        map.remove(&conn);
                    }
                }
            });
        })
    };

    let next_conn = AtomicU64::new(1);
    let mut readers = Vec::new();
    let mut accept_failures: u32 = 0;
    while !shutdown_requested() && !drain_requested.load(Ordering::SeqCst) && !engine.failed() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                accept_failures = 0;
                let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                rhmd_obs::incr("serve.conns.accepted");
                // Reads poll at `read_stall` so a mid-frame stall is
                // detected; writes time out so a slow consumer cannot wedge
                // the shared writer.
                let _ = stream.set_read_timeout(Some(read_stall));
                if let Ok(clone) = stream.try_clone() {
                    let _ = clone.set_write_timeout(Some(write_timeout));
                    match conns.lock() {
                        Ok(mut g) => {
                            g.insert(conn, clone);
                        }
                        Err(p) => {
                            p.into_inner().insert(conn, clone);
                        }
                    }
                }
                let engine = Arc::clone(&engine);
                let drain_requested = Arc::clone(&drain_requested);
                readers.push(std::thread::spawn(move || {
                    let reader = std::io::BufReader::new(stream);
                    if read_loop(&engine, conn, reader) {
                        drain_requested.store(true, Ordering::SeqCst);
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => {
                // Transient accept errors (EMFILE pressure, aborted
                // handshakes) are retried with escalating backoff; only a
                // persistently failing listener falls through to drain.
                accept_failures += 1;
                rhmd_obs::incr("serve.accept.errors");
                if accept_failures > ACCEPT_RETRY_BUDGET {
                    break;
                }
                std::thread::sleep(POLL * accept_failures);
            }
        }
    }
    if engine.failed() {
        rhmd_obs::incr("serve.drain.engine_failed");
    }
    let stats = engine.drain();
    let _ = writer.join();
    guard.remove_if_ours();
    // Reader threads parked on open connections exit when clients
    // disconnect; like the stdio reader they are left detached at exit.
    Ok(stats)
}

/// Reads NDJSON frames from `input` and submits them until EOF, a `drain`
/// request, or a slow-loris stall; returns `true` when the client asked to
/// drain. Blank frames are ignored; malformed, oversized, and
/// validation-rejected frames get a typed `error` response and the stream
/// continues (one bad frame must not kill a session multiplex).
fn read_loop(engine: &Engine, conn: u64, mut input: impl BufRead) -> bool {
    let mut partial = Vec::new();
    loop {
        match read_frame(&mut input, &mut partial) {
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_request(&line).and_then(|r| {
                    validate_request(&r)?;
                    Ok(r)
                }) {
                    Ok(request) => {
                        if engine.submit(conn, request) {
                            return true;
                        }
                    }
                    Err(e) => {
                        rhmd_obs::incr("serve.requests.malformed");
                        engine.respond(
                            conn,
                            Response::Error {
                                message: e.to_string(),
                            },
                        );
                    }
                }
            }
            Frame::Oversized(bytes) => {
                rhmd_obs::incr("serve.requests.oversized");
                engine.respond(
                    conn,
                    Response::Error {
                        message: format!(
                            "frame of {bytes} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                        ),
                    },
                );
            }
            Frame::Idle => {
                // A quiet connection waiting for verdicts: not a fault.
                continue;
            }
            Frame::Stalled => {
                // Mid-frame for longer than the read timeout: slow-loris
                // posture, disconnect.
                rhmd_obs::incr("serve.conns.slow_loris");
                return false;
            }
            Frame::Eof { mid_frame } => {
                if mid_frame {
                    rhmd_obs::incr("serve.conns.disconnect_midframe");
                }
                return false;
            }
        }
    }
}

/// Writes one line; `false` on any error (timeout, broken pipe).
#[cfg(unix)]
fn write_line(stream: &mut std::os::unix::net::UnixStream, line: &str) -> bool {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .is_ok()
}

/// Drains the output queue into `deliver` until [`OutEvent::Closed`].
fn write_loop(out: &crate::queue::BoundedQueue<OutEvent>, mut deliver: impl FnMut(u64, &str)) {
    while let Some(ev) = out.pop() {
        match ev {
            OutEvent::Response { conn, response } => {
                deliver(conn, &render_response(&response));
            }
            OutEvent::Closed => break,
        }
    }
}

#[cfg(test)]
mod frame_tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_split_on_newlines_with_state_across_calls() {
        let mut input = Cursor::new(b"one\ntwo\nthree".to_vec());
        let mut partial = Vec::new();
        assert_eq!(read_frame(&mut input, &mut partial), Frame::Line("one".into()));
        assert_eq!(read_frame(&mut input, &mut partial), Frame::Line("two".into()));
        // Unterminated tail: a mid-frame EOF, loudly distinguished.
        assert_eq!(
            read_frame(&mut input, &mut partial),
            Frame::Eof { mid_frame: true }
        );
        assert_eq!(
            read_frame(&mut input, &mut partial),
            Frame::Eof { mid_frame: false }
        );
    }

    #[test]
    fn oversized_frames_are_discarded_with_bounded_memory() {
        let mut bytes = vec![b'x'; MAX_FRAME_BYTES + 100];
        bytes.push(b'\n');
        bytes.extend_from_slice(b"after\n");
        let mut input = Cursor::new(bytes);
        let mut partial = Vec::new();
        match read_frame(&mut input, &mut partial) {
            Frame::Oversized(n) => assert!(n > MAX_FRAME_BYTES),
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert!(
            partial.capacity() <= 2 * MAX_FRAME_BYTES,
            "oversized frame must not accumulate"
        );
        // The stream survives the oversized frame.
        assert_eq!(read_frame(&mut input, &mut partial), Frame::Line("after".into()));
    }

    #[test]
    fn invalid_utf8_is_replaced_not_fatal() {
        let mut input = Cursor::new(b"\xff\xfe{bad}\n".to_vec());
        let mut partial = Vec::new();
        match read_frame(&mut input, &mut partial) {
            Frame::Line(line) => assert!(line.contains("{bad}")),
            other => panic!("expected Line, got {other:?}"),
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::chaos::EngineFaults;
    use crate::ServeConfig;
    use rhmd_core::hmd::Hmd;
    use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
    use rhmd_features::vector::{FeatureKind, FeatureSpec};
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    fn trained() -> (TracedCorpus, Hmd) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let hmd = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        (traced, hmd)
    }

    #[test]
    fn socket_round_trip_with_drain_and_hostile_frames() {
        let (traced, hmd) = trained();
        let engine = Engine::start_with_faults(
            hmd.clone(),
            ServeConfig {
                session_deadline: None,
                tenant_deadline: None,
                ..ServeConfig::default()
            },
            EngineFaults::default(),
        )
        .unwrap();
        let sock =
            std::env::temp_dir().join(format!("rhmd-serve-test-{}.sock", std::process::id()));
        let server = {
            let sock = sock.clone();
            std::thread::spawn(move || serve_listener(engine, &sock).unwrap())
        };
        // Wait for the socket to appear.
        let mut stream = loop {
            if let Ok(s) = UnixStream::connect(&sock) {
                break s;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        let subs = traced.subwindows(0);
        for (seq, sub) in subs.iter().enumerate() {
            let line = serde_json::to_string(&crate::proto::Request::Event {
                tenant: "t".into(),
                session: "s".into(),
                seq: seq as u64,
                window: Box::new(sub.clone()),
                deadline_ms: None,
            })
            .unwrap();
            writeln!(stream, "{line}").unwrap();
        }
        writeln!(stream, "{{\"End\":{{\"tenant\":\"t\",\"session\":\"s\"}}}}").unwrap();
        // Three hostile frames, all answered with typed errors: malformed
        // JSON, an empty-tenant End, and an oversized payload.
        writeln!(stream, "not json").unwrap();
        writeln!(stream, "{{\"End\":{{\"tenant\":\"\",\"session\":\"s\"}}}}").unwrap();
        writeln!(stream, "{{\"junk\":\"{}\"}}", "x".repeat(MAX_FRAME_BYTES)).unwrap();
        writeln!(stream, "{{\"Drain\":{{}}}}").unwrap();
        stream.flush().unwrap();

        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut verdicts = 0;
        let mut errors = 0;
        let mut drained = false;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            match serde_json::from_str::<Response>(&line).unwrap() {
                Response::Verdict(v) => {
                    verdicts += 1;
                    let expected = hmd.verdict(subs);
                    if expected.total > 0 {
                        let want = if expected.is_malware() { "malware" } else { "benign" };
                        assert_eq!(v.verdict, want);
                    }
                }
                Response::Error { .. } => errors += 1,
                Response::Drained(stats) => {
                    assert!(stats.accounted());
                    drained = true;
                    break;
                }
                _ => {}
            }
        }
        let stats = server.join().unwrap();
        assert_eq!(verdicts, 1);
        assert_eq!(errors, 3);
        assert!(drained, "drained notice must reach the client");
        assert_eq!(stats.offered_sessions, 1);
        assert_eq!(stats.quarantined, 0);
        assert!(!std::path::Path::new(&sock).exists(), "socket file cleaned up");
    }

    #[test]
    fn slow_loris_and_midframe_disconnect_do_not_stall_the_daemon() {
        let (traced, hmd) = trained();
        let engine = Engine::start_with_faults(
            hmd,
            ServeConfig {
                session_deadline: None,
                tenant_deadline: None,
                read_stall: Duration::from_millis(100),
                ..ServeConfig::default()
            },
            EngineFaults::default(),
        )
        .unwrap();
        let sock =
            std::env::temp_dir().join(format!("rhmd-serve-loris-{}.sock", std::process::id()));
        let server = {
            let sock = sock.clone();
            std::thread::spawn(move || serve_listener(engine, &sock).unwrap())
        };
        let connect = || loop {
            if let Ok(s) = UnixStream::connect(&sock) {
                break s;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        // Attacker 1: sends half a frame and stalls. The read-stall
        // watchdog must disconnect it.
        let mut loris = connect();
        loris.write_all(b"{\"Event\":{\"tenant\":\"t\",").unwrap();
        loris.flush().unwrap();
        // Attacker 2: sends half a frame and vanishes.
        let mut vanisher = connect();
        vanisher.write_all(b"{\"End\":{\"tenant").unwrap();
        vanisher.flush().unwrap();
        drop(vanisher);
        std::thread::sleep(Duration::from_millis(300));
        // The daemon is still fully live for a well-behaved client.
        let mut good = connect();
        let subs = traced.subwindows(0);
        let line = serde_json::to_string(&crate::proto::Request::Event {
            tenant: "t".into(),
            session: "ok".into(),
            seq: 0,
            window: Box::new(subs[0].clone()),
            deadline_ms: None,
        })
        .unwrap();
        writeln!(good, "{line}").unwrap();
        writeln!(good, "{{\"End\":{{\"tenant\":\"t\",\"session\":\"ok\"}}}}").unwrap();
        writeln!(good, "{{\"Drain\":{{}}}}").unwrap();
        good.flush().unwrap();
        let reader = BufReader::new(good.try_clone().unwrap());
        let mut saw_verdict = false;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            match serde_json::from_str::<Response>(&line).unwrap() {
                Response::Verdict(v) => {
                    assert_eq!(v.session, "ok");
                    saw_verdict = true;
                }
                Response::Drained(stats) => {
                    assert!(stats.accounted());
                    break;
                }
                _ => {}
            }
        }
        let stats = server.join().unwrap();
        assert!(saw_verdict, "healthy client starved by attackers");
        assert_eq!(stats.offered_sessions, 1);
        // The half-frames never became sessions.
        assert!(stats.accounted());
        drop(loris);
    }
}
