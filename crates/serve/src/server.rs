//! Transport front-ends for the engine: NDJSON over stdin/stdout or a Unix
//! domain socket, plus dependency-free SIGTERM/SIGINT handling.
//!
//! Both front-ends share the same lifecycle: readers submit parsed
//! requests into the engine, a single writer thread drains the engine's
//! output queue, and the main thread polls for a shutdown condition (EOF,
//! a `drain` request, or a signal). Shutdown always goes through
//! [`crate::engine::Engine::drain`], so in-flight batches finish and every
//! offered session gets its verdict line before the process exits.

use crate::engine::{Engine, OutEvent, BROADCAST_CONN};
use crate::proto::{parse_request, render_response, Response, StatsMsg};
use rhmd_core::RhmdError;
use std::io::{BufRead, BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    use std::sync::atomic::AtomicBool;
    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);
    pub fn install() {}
}

/// Installs SIGTERM/SIGINT handlers that request a graceful drain (no-op
/// off Unix).
pub fn install_signal_handlers() {
    sig::install();
}

/// Whether a shutdown signal has been received.
pub fn shutdown_requested() -> bool {
    sig::SHUTDOWN.load(std::sync::atomic::Ordering::SeqCst)
}

/// How often the main loop polls for shutdown conditions.
const POLL: Duration = Duration::from_millis(25);

/// Serves the engine over stdin/stdout until EOF, a `drain` request, or a
/// shutdown signal, then drains gracefully.
///
/// # Errors
///
/// Currently infallible at this layer (transport errors terminate the
/// affected reader/writer and lead into the drain path); the `Result` is
/// the stable shape for front-ends that can fail to bind.
pub fn serve_stdio(engine: Engine) -> Result<StatsMsg, RhmdError> {
    install_signal_handlers();
    let engine = Arc::new(engine);
    let out = engine.output();

    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        let mut w = BufWriter::new(stdout.lock());
        write_loop(&out, |_conn, line| {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        });
    });

    let reader = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            read_loop(&engine, 0, stdin.lock());
        })
    };

    while !shutdown_requested() && !reader.is_finished() {
        std::thread::sleep(POLL);
    }
    let stats = engine.drain();
    let _ = writer.join();
    // The reader may still be parked on a blocked stdin read after a
    // signal; it holds only an Arc and the process is about to exit, so it
    // is left detached rather than interrupted.
    Ok(stats)
}

/// Serves the engine over a Unix domain socket at `path` (created fresh;
/// an existing socket file is replaced). Accepts any number of concurrent
/// client connections; drains on a `drain` request or a shutdown signal.
///
/// # Errors
///
/// Returns [`RhmdError::Io`] when the socket cannot be bound.
#[cfg(unix)]
pub fn serve_listener(engine: Engine, path: &std::path::Path) -> Result<StatsMsg, RhmdError> {
    use std::os::unix::net::UnixListener;

    install_signal_handlers();
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)
        .map_err(|e| RhmdError::io(format!("bind {}", path.display()), e.to_string()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| RhmdError::io(format!("socket {}", path.display()), e.to_string()))?;

    let engine = Arc::new(engine);
    let out = engine.output();
    let conns: Arc<Mutex<std::collections::HashMap<u64, std::os::unix::net::UnixStream>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let drain_requested = Arc::new(AtomicBool::new(false));

    let writer = {
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            write_loop(&out, |conn, line| {
                let mut map = match conns.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                if conn == BROADCAST_CONN {
                    map.retain(|_, s| writeln!(s, "{line}").is_ok());
                } else if let Some(s) = map.get_mut(&conn) {
                    if writeln!(s, "{line}").is_err() {
                        map.remove(&conn);
                    }
                }
            });
        })
    };

    let next_conn = AtomicU64::new(1);
    let mut readers = Vec::new();
    while !shutdown_requested() && !drain_requested.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                rhmd_obs::incr("serve.conns.accepted");
                if let Ok(clone) = stream.try_clone() {
                    match conns.lock() {
                        Ok(mut g) => {
                            g.insert(conn, clone);
                        }
                        Err(p) => {
                            p.into_inner().insert(conn, clone);
                        }
                    }
                }
                let engine = Arc::clone(&engine);
                let drain_requested = Arc::clone(&drain_requested);
                readers.push(std::thread::spawn(move || {
                    let reader = std::io::BufReader::new(stream);
                    if read_loop(&engine, conn, reader) {
                        drain_requested.store(true, Ordering::SeqCst);
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => break,
        }
    }
    let stats = engine.drain();
    let _ = writer.join();
    let _ = std::fs::remove_file(path);
    // Reader threads parked on open connections exit when clients
    // disconnect; like the stdio reader they are left detached at exit.
    Ok(stats)
}

/// Reads NDJSON requests from `input` and submits them until EOF or a
/// `drain` request; returns `true` when the client asked to drain. Blank
/// lines are ignored; unparseable lines get a typed `error` response and
/// the stream continues (one bad line must not kill a session multiplex).
fn read_loop(engine: &Engine, conn: u64, input: impl BufRead) -> bool {
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(request) => {
                if engine.submit(conn, request) {
                    return true;
                }
            }
            Err(e) => {
                rhmd_obs::incr("serve.requests.malformed");
                engine.respond(
                    conn,
                    Response::Error {
                        message: e.to_string(),
                    },
                );
            }
        }
    }
    false
}

/// Drains the output queue into `deliver` until [`OutEvent::Closed`].
fn write_loop(
    out: &crate::queue::BoundedQueue<OutEvent>,
    mut deliver: impl FnMut(u64, &str),
) {
    while let Some(ev) = out.pop() {
        match ev {
            OutEvent::Response { conn, response } => {
                deliver(conn, &render_response(&response));
            }
            OutEvent::Closed => break,
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use rhmd_core::hmd::Hmd;
    use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
    use rhmd_features::vector::{FeatureKind, FeatureSpec};
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    #[test]
    fn socket_round_trip_with_drain() {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let hmd = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let engine = Engine::start(
            hmd.clone(),
            ServeConfig {
                session_deadline: None,
                tenant_deadline: None,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let sock = std::env::temp_dir().join(format!("rhmd-serve-test-{}.sock", std::process::id()));
        let server = {
            let sock = sock.clone();
            std::thread::spawn(move || serve_listener(engine, &sock).unwrap())
        };
        // Wait for the socket to appear.
        let mut stream = loop {
            if let Ok(s) = UnixStream::connect(&sock) {
                break s;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        let subs = traced.subwindows(0);
        for (seq, sub) in subs.iter().enumerate() {
            let line = serde_json::to_string(&crate::proto::Request::Event {
                tenant: "t".into(),
                session: "s".into(),
                seq: seq as u64,
                window: Box::new(sub.clone()),
            })
            .unwrap();
            writeln!(stream, "{line}").unwrap();
        }
        writeln!(stream, "{{\"End\":{{\"tenant\":\"t\",\"session\":\"s\"}}}}").unwrap();
        writeln!(stream, "not json").unwrap();
        writeln!(stream, "{{\"Drain\":{{}}}}").unwrap();
        stream.flush().unwrap();

        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut verdicts = 0;
        let mut errors = 0;
        let mut drained = false;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            match serde_json::from_str::<Response>(&line).unwrap() {
                Response::Verdict(v) => {
                    verdicts += 1;
                    let expected = hmd.verdict(subs);
                    if expected.total > 0 {
                        let want = if expected.is_malware() { "malware" } else { "benign" };
                        assert_eq!(v.verdict, want);
                    }
                }
                Response::Error { .. } => errors += 1,
                Response::Drained(stats) => {
                    assert!(stats.accounted());
                    drained = true;
                    break;
                }
                _ => {}
            }
        }
        let stats = server.join().unwrap();
        assert_eq!(verdicts, 1);
        assert_eq!(errors, 1);
        assert!(drained, "drained notice must reach the client");
        assert_eq!(stats.offered_sessions, 1);
        assert!(!std::path::Path::new(&sock).exists(), "socket file cleaned up");
    }
}
