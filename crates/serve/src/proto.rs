//! The NDJSON wire protocol of `rhmd serve`.
//!
//! One JSON document per line, externally tagged by message type (the tag
//! is the variant name, verbatim). Clients stream committed-event
//! subwindows per `(tenant, session)` pair and receive exactly one
//! `Verdict` line per offered session — decided, abstained, or shed —
//! plus replies to control messages:
//!
//! ```text
//! → {"Event":{"tenant":"t0","session":"s1","seq":0,"window":{...}}}
//! → {"End":{"tenant":"t0","session":"s1"}}
//! ← {"Verdict":{"tenant":"t0","session":"s1","verdict":"malware",...}}
//! → {"Reload":{"model":"models/new.json"}}
//! ← {"Reloaded":{"model":"models/new.json","config_hash":1234}}
//! → {"Stats":{}}
//! ← {"Stats":{...accounting counters...}}
//! ```
//!
//! `window` is a serialized [`RawWindow`] — the same representation the
//! tracing substrate produces, so any corpus replays over the wire without
//! translation.

use rhmd_features::window::RawWindow;
use serde::{Deserialize, Serialize};

/// Hard cap on one NDJSON frame, in bytes. Longer frames are drained and
/// rejected with a typed error — an attacker-sized payload must cost the
/// server bounded memory, not an allocation proportional to the payload.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Hard cap on tenant and session identifier length, in bytes.
pub const MAX_ID_BYTES: usize = 256;

/// Hard cap on any single counter value in a submitted window: `2^53`, the
/// largest integer range f64 projects exactly. Anything larger is not a
/// plausible per-subwindow PMU delta and would silently lose precision in
/// feature space (and can overflow the u64 merge accumulators under
/// assembly) — rejected with a typed error instead.
pub const MAX_COUNTER: u64 = 1 << 53;

/// A client → server message.
///
/// `Deserialize` is hand-written (rather than derived) so optional fields
/// like `deadline_ms` may be omitted on the wire — robustness demands the
/// parser accept yesterday's frames, not just its own round trips.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Request {
    /// One committed-event subwindow for a session, with its stream
    /// sequence number (gaps are tolerated; duplicate and stale sequence
    /// numbers are dropped as re-deliveries).
    Event {
        /// Tenant owning the session.
        tenant: String,
        /// Session identifier, unique within the tenant.
        session: String,
        /// Zero-based subwindow sequence number.
        seq: u64,
        /// The raw subwindow statistics.
        window: Box<RawWindow>,
        /// Optional verdict deadline in milliseconds from this frame's
        /// arrival; past it the session finalizes as an explicit
        /// `abstain`/`deadline` rather than stalling the caller. The
        /// earliest deadline across a session's frames wins.
        deadline_ms: Option<u64>,
    },
    /// End of a session's stream: assemble, score, and emit its verdict.
    End {
        /// Tenant owning the session.
        tenant: String,
        /// Session identifier.
        session: String,
    },
    /// Hot-reload the model from a path; rejected (keeping the old model)
    /// unless the new model's feature-spec config hash matches.
    Reload {
        /// Path to a model JSON file written by `rhmd train --out`.
        model: String,
    },
    /// Request an accounting snapshot.
    Stats {},
    /// Begin graceful drain (same as EOF / SIGTERM).
    Drain {},
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Terminal outcome for one session. Exactly one per offered session.
    Verdict(VerdictMsg),
    /// A successful hot reload.
    Reloaded {
        /// The model path that was loaded.
        model: String,
        /// The (unchanged) feature-spec config hash now serving.
        config_hash: u64,
    },
    /// An accounting snapshot.
    Stats(StatsMsg),
    /// A request-level error (bad line, rejected reload, draining).
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Drain finished; no further messages follow.
    Drained(StatsMsg),
}

/// Terminal outcome for one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerdictMsg {
    /// Tenant owning the session.
    pub tenant: String,
    /// Session identifier.
    pub session: String,
    /// `"malware"`, `"benign"`, or `"abstain"`.
    pub verdict: String,
    /// Why an abstention happened (`"coverage"`, `"shed"`, `"deadline"`,
    /// `"tenant-deadline"`, `"quarantine"`, `"shard-down"`, `"drain"`);
    /// `null` for decisions.
    pub reason: Option<String>,
    /// Collection windows that produced a vote.
    pub voted: usize,
    /// Collection windows the detector abstained on.
    pub abstained: usize,
    /// Fraction of voting windows that flagged malware.
    pub flag_rate: f64,
}

impl VerdictMsg {
    /// Whether this session got a decision (rather than an abstention).
    pub fn is_decided(&self) -> bool {
        self.verdict != "abstain"
    }
}

/// Accounting counters, disjoint by terminal state:
/// `offered_sessions == decided + abstained + shed_sessions + quarantined`.
///
/// `Deserialize` is hand-written with missing-counter-defaults-to-zero
/// semantics, so stats emitted by older builds (without the chaos
/// counters) still parse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StatsMsg {
    /// Sessions the service has seen a first message for.
    pub offered_sessions: u64,
    /// Sessions that ended with a decision.
    pub decided: u64,
    /// Sessions that ended abstained (coverage, deadline, drain).
    pub abstained: u64,
    /// Sessions refused or degraded by load-shedding (their verdict line is
    /// an abstention with reason `"shed"`, counted here, not in
    /// `abstained`).
    pub shed_sessions: u64,
    /// Sessions isolated by the poison-pill boundary: their windows made
    /// the scorer panic or produce non-finite scores, so they were
    /// finalized as `abstain`/`quarantine` and their remaining input is
    /// dropped at the door. Counted here, not in `abstained`.
    pub quarantined: u64,
    /// Subwindow events accepted into shard queues.
    pub offered_events: u64,
    /// Subwindow events dropped by load-shedding.
    pub shed_events: u64,
    /// Stale or duplicate subwindow frames dropped by the sequence filter
    /// (re-deliveries repaired away, not verdict-affecting).
    pub stale_frames: u64,
    /// Shard workers restarted by the supervisor after a death.
    pub shard_restarts: u64,
    /// Successful hot reloads.
    pub reloads_ok: u64,
    /// Rejected hot reloads (config-hash mismatch or unreadable model).
    pub reloads_rejected: u64,
}

impl StatsMsg {
    /// The no-silent-drops identity: every offered session reached exactly
    /// one terminal state.
    pub fn accounted(&self) -> bool {
        self.offered_sessions
            == self.decided + self.abstained + self.shed_sessions + self.quarantined
    }
}

/// Looks up `name` in a map value, treating a missing key as JSON `null`
/// (the lenient accessor backing optional wire fields).
fn opt_field<'a>(value: &'a serde::Value, name: &str) -> &'a serde::Value {
    static NULL: serde::Value = serde::Value::Null;
    match value {
        serde::Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map_or(&NULL, |(_, v)| v),
        _ => &NULL,
    }
}

impl serde::Deserialize for Request {
    fn deserialize(value: &serde::Value) -> Result<Request, serde::Error> {
        let entries = value.map()?;
        if entries.len() != 1 {
            return Err(serde::Error::msg(format!(
                "expected exactly one externally-tagged request object, found {} keys",
                entries.len()
            )));
        }
        let (tag, inner) = &entries[0];
        match tag.as_str() {
            "Event" => Ok(Request::Event {
                tenant: serde::Deserialize::deserialize(inner.field("tenant")?)?,
                session: serde::Deserialize::deserialize(inner.field("session")?)?,
                seq: serde::Deserialize::deserialize(inner.field("seq")?)?,
                window: serde::Deserialize::deserialize(inner.field("window")?)?,
                deadline_ms: serde::Deserialize::deserialize(opt_field(inner, "deadline_ms"))?,
            }),
            "End" => Ok(Request::End {
                tenant: serde::Deserialize::deserialize(inner.field("tenant")?)?,
                session: serde::Deserialize::deserialize(inner.field("session")?)?,
            }),
            "Reload" => Ok(Request::Reload {
                model: serde::Deserialize::deserialize(inner.field("model")?)?,
            }),
            "Stats" => {
                inner.map()?;
                Ok(Request::Stats {})
            }
            "Drain" => {
                inner.map()?;
                Ok(Request::Drain {})
            }
            other => Err(serde::Error::msg(format!(
                "unknown request type `{other}`"
            ))),
        }
    }
}

impl serde::Deserialize for StatsMsg {
    fn deserialize(value: &serde::Value) -> Result<StatsMsg, serde::Error> {
        fn counter(value: &serde::Value, name: &str) -> Result<u64, serde::Error> {
            match opt_field(value, name) {
                serde::Value::Null => Ok(0),
                v => serde::Deserialize::deserialize(v),
            }
        }
        value.map()?;
        Ok(StatsMsg {
            offered_sessions: counter(value, "offered_sessions")?,
            decided: counter(value, "decided")?,
            abstained: counter(value, "abstained")?,
            shed_sessions: counter(value, "shed_sessions")?,
            quarantined: counter(value, "quarantined")?,
            offered_events: counter(value, "offered_events")?,
            shed_events: counter(value, "shed_events")?,
            stale_frames: counter(value, "stale_frames")?,
            shard_restarts: counter(value, "shard_restarts")?,
            reloads_ok: counter(value, "reloads_ok")?,
            reloads_rejected: counter(value, "reloads_rejected")?,
        })
    }
}

/// Validates a parsed request's identifiers and window payload: rejects
/// empty/oversized tenant or session ids and counter values beyond
/// [`MAX_COUNTER`] in any channel. Pure reject-or-accept — a hostile frame
/// draws a typed error, never a panic or a silently-garbled feature row.
///
/// # Errors
///
/// Returns [`rhmd_core::RhmdError::Parse`] naming the offending field.
pub fn validate_request(request: &Request) -> Result<(), rhmd_core::RhmdError> {
    fn check_id(what: &str, id: &str) -> Result<(), rhmd_core::RhmdError> {
        if id.is_empty() {
            return Err(rhmd_core::RhmdError::parse(what, "must not be empty"));
        }
        if id.len() > MAX_ID_BYTES {
            return Err(rhmd_core::RhmdError::parse(
                what,
                format!("{} bytes exceeds the {MAX_ID_BYTES}-byte cap", id.len()),
            ));
        }
        Ok(())
    }
    match request {
        Request::Event {
            tenant,
            session,
            window,
            ..
        } => {
            check_id("tenant", tenant)?;
            check_id("session", session)?;
            let over = |v: u64| v > MAX_COUNTER;
            if over(window.instructions)
                || window.opcode_counts.iter().copied().any(over)
                || window.mem_delta_hist.iter().copied().any(over)
                || window.counters.to_array().iter().copied().any(over)
            {
                return Err(rhmd_core::RhmdError::parse(
                    "window",
                    format!("counter value exceeds the 2^53 cap ({MAX_COUNTER})"),
                ));
            }
            Ok(())
        }
        Request::End { tenant, session } => {
            check_id("tenant", tenant)?;
            check_id("session", session)
        }
        Request::Reload { .. } | Request::Stats {} | Request::Drain {} => Ok(()),
    }
}

/// Parses one NDJSON request line.
///
/// # Errors
///
/// Returns [`rhmd_core::RhmdError::Parse`] with the offending line's
/// prefix on malformed input.
pub fn parse_request(line: &str) -> Result<Request, rhmd_core::RhmdError> {
    serde_json::from_str(line).map_err(|e| {
        let prefix: String = line.chars().take(64).collect();
        rhmd_core::RhmdError::parse(format!("request line '{prefix}'"), e.to_string())
    })
}

/// Serializes a response as one NDJSON line (no trailing newline).
///
/// # Panics
///
/// Never panics in practice: every `Response` variant is a closed data
/// type with no non-serializable fields.
pub fn render_response(response: &Response) -> String {
    serde_json::to_string(response).expect("responses always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let reqs = vec![
            Request::Event {
                tenant: "t".into(),
                session: "s".into(),
                seq: 3,
                window: Box::default(),
                deadline_ms: None,
            },
            Request::Event {
                tenant: "t".into(),
                session: "s".into(),
                seq: 4,
                window: Box::default(),
                deadline_ms: Some(250),
            },
            Request::End {
                tenant: "t".into(),
                session: "s".into(),
            },
            Request::Reload {
                model: "m.json".into(),
            },
            Request::Stats {},
            Request::Drain {},
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'));
            assert_eq!(parse_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::Verdict(VerdictMsg {
            tenant: "t".into(),
            session: "s".into(),
            verdict: "abstain".into(),
            reason: Some("shed".into()),
            voted: 0,
            abstained: 2,
            flag_rate: 0.0,
        });
        let line = render_response(&resp);
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn malformed_line_is_typed_parse_error() {
        let err = parse_request("{ nope").unwrap_err();
        assert!(matches!(err, rhmd_core::RhmdError::Parse { .. }));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn accounting_identity() {
        let mut s = StatsMsg {
            offered_sessions: 10,
            decided: 6,
            abstained: 2,
            shed_sessions: 1,
            quarantined: 1,
            ..StatsMsg::default()
        };
        assert!(s.accounted());
        s.quarantined = 0;
        assert!(!s.accounted());
    }

    #[test]
    fn stats_without_quarantine_field_still_parses() {
        let line = r#"{"offered_sessions":2,"decided":2,"abstained":0,
            "shed_sessions":0,"offered_events":4,"shed_events":0,
            "reloads_ok":0,"reloads_rejected":0}"#;
        let s: StatsMsg = serde_json::from_str(line).unwrap();
        assert_eq!(s.quarantined, 0);
        assert!(s.accounted());
    }

    #[test]
    fn validation_rejects_hostile_identifiers_and_counters() {
        let ok = Request::Event {
            tenant: "t".into(),
            session: "s".into(),
            seq: 0,
            window: Box::default(),
            deadline_ms: None,
        };
        assert!(validate_request(&ok).is_ok());

        let empty_tenant = Request::End {
            tenant: String::new(),
            session: "s".into(),
        };
        assert!(validate_request(&empty_tenant).is_err());

        let long_session = Request::End {
            tenant: "t".into(),
            session: "s".repeat(MAX_ID_BYTES + 1),
        };
        assert!(validate_request(&long_session).is_err());

        let window = RawWindow {
            instructions: MAX_COUNTER + 1,
            ..RawWindow::default()
        };
        let overflow = Request::Event {
            tenant: "t".into(),
            session: "s".into(),
            seq: 0,
            window: Box::new(window),
            deadline_ms: None,
        };
        let err = validate_request(&overflow).unwrap_err();
        assert!(matches!(err, rhmd_core::RhmdError::Parse { .. }));
        assert!(err.to_string().contains("2^53"));
    }
}
