//! The NDJSON wire protocol of `rhmd serve`.
//!
//! One JSON document per line, externally tagged by message type (the tag
//! is the variant name, verbatim). Clients stream committed-event
//! subwindows per `(tenant, session)` pair and receive exactly one
//! `Verdict` line per offered session — decided, abstained, or shed —
//! plus replies to control messages:
//!
//! ```text
//! → {"Event":{"tenant":"t0","session":"s1","seq":0,"window":{...}}}
//! → {"End":{"tenant":"t0","session":"s1"}}
//! ← {"Verdict":{"tenant":"t0","session":"s1","verdict":"malware",...}}
//! → {"Reload":{"model":"models/new.json"}}
//! ← {"Reloaded":{"model":"models/new.json","config_hash":1234}}
//! → {"Stats":{}}
//! ← {"Stats":{...accounting counters...}}
//! ```
//!
//! `window` is a serialized [`RawWindow`] — the same representation the
//! tracing substrate produces, so any corpus replays over the wire without
//! translation.

use rhmd_features::window::RawWindow;
use serde::{Deserialize, Serialize};

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// One committed-event subwindow for a session, with its stream
    /// sequence number (gaps are tolerated; regressions poison the
    /// session).
    Event {
        /// Tenant owning the session.
        tenant: String,
        /// Session identifier, unique within the tenant.
        session: String,
        /// Zero-based subwindow sequence number.
        seq: u64,
        /// The raw subwindow statistics.
        window: Box<RawWindow>,
    },
    /// End of a session's stream: assemble, score, and emit its verdict.
    End {
        /// Tenant owning the session.
        tenant: String,
        /// Session identifier.
        session: String,
    },
    /// Hot-reload the model from a path; rejected (keeping the old model)
    /// unless the new model's feature-spec config hash matches.
    Reload {
        /// Path to a model JSON file written by `rhmd train --out`.
        model: String,
    },
    /// Request an accounting snapshot.
    Stats {},
    /// Begin graceful drain (same as EOF / SIGTERM).
    Drain {},
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Terminal outcome for one session. Exactly one per offered session.
    Verdict(VerdictMsg),
    /// A successful hot reload.
    Reloaded {
        /// The model path that was loaded.
        model: String,
        /// The (unchanged) feature-spec config hash now serving.
        config_hash: u64,
    },
    /// An accounting snapshot.
    Stats(StatsMsg),
    /// A request-level error (bad line, rejected reload, draining).
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Drain finished; no further messages follow.
    Drained(StatsMsg),
}

/// Terminal outcome for one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerdictMsg {
    /// Tenant owning the session.
    pub tenant: String,
    /// Session identifier.
    pub session: String,
    /// `"malware"`, `"benign"`, or `"abstain"`.
    pub verdict: String,
    /// Why an abstention happened (`"coverage"`, `"shed"`, `"deadline"`,
    /// `"tenant-deadline"`, `"protocol"`, `"drain"`); `null` for decisions.
    pub reason: Option<String>,
    /// Collection windows that produced a vote.
    pub voted: usize,
    /// Collection windows the detector abstained on.
    pub abstained: usize,
    /// Fraction of voting windows that flagged malware.
    pub flag_rate: f64,
}

impl VerdictMsg {
    /// Whether this session got a decision (rather than an abstention).
    pub fn is_decided(&self) -> bool {
        self.verdict != "abstain"
    }
}

/// Accounting counters, disjoint by terminal state:
/// `offered_sessions == decided + abstained + shed_sessions`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsMsg {
    /// Sessions the service has seen a first message for.
    pub offered_sessions: u64,
    /// Sessions that ended with a decision.
    pub decided: u64,
    /// Sessions that ended abstained (coverage, deadline, drain, protocol).
    pub abstained: u64,
    /// Sessions refused or degraded by load-shedding (their verdict line is
    /// an abstention with reason `"shed"`, counted here, not in
    /// `abstained`).
    pub shed_sessions: u64,
    /// Subwindow events accepted into shard queues.
    pub offered_events: u64,
    /// Subwindow events dropped by load-shedding.
    pub shed_events: u64,
    /// Successful hot reloads.
    pub reloads_ok: u64,
    /// Rejected hot reloads (config-hash mismatch or unreadable model).
    pub reloads_rejected: u64,
}

impl StatsMsg {
    /// The no-silent-drops identity: every offered session reached exactly
    /// one terminal state.
    pub fn accounted(&self) -> bool {
        self.offered_sessions == self.decided + self.abstained + self.shed_sessions
    }
}

/// Parses one NDJSON request line.
///
/// # Errors
///
/// Returns [`rhmd_core::RhmdError::Parse`] with the offending line's
/// prefix on malformed input.
pub fn parse_request(line: &str) -> Result<Request, rhmd_core::RhmdError> {
    serde_json::from_str(line).map_err(|e| {
        let prefix: String = line.chars().take(64).collect();
        rhmd_core::RhmdError::parse(format!("request line '{prefix}'"), e.to_string())
    })
}

/// Serializes a response as one NDJSON line (no trailing newline).
///
/// # Panics
///
/// Never panics in practice: every `Response` variant is a closed data
/// type with no non-serializable fields.
pub fn render_response(response: &Response) -> String {
    serde_json::to_string(response).expect("responses always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let reqs = vec![
            Request::Event {
                tenant: "t".into(),
                session: "s".into(),
                seq: 3,
                window: Box::default(),
            },
            Request::End {
                tenant: "t".into(),
                session: "s".into(),
            },
            Request::Reload {
                model: "m.json".into(),
            },
            Request::Stats {},
            Request::Drain {},
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'));
            assert_eq!(parse_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::Verdict(VerdictMsg {
            tenant: "t".into(),
            session: "s".into(),
            verdict: "abstain".into(),
            reason: Some("shed".into()),
            voted: 0,
            abstained: 2,
            flag_rate: 0.0,
        });
        let line = render_response(&resp);
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn malformed_line_is_typed_parse_error() {
        let err = parse_request("{ nope").unwrap_err();
        assert!(matches!(err, rhmd_core::RhmdError::Parse { .. }));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn accounting_identity() {
        let mut s = StatsMsg {
            offered_sessions: 10,
            decided: 6,
            abstained: 3,
            shed_sessions: 1,
            ..StatsMsg::default()
        };
        assert!(s.accounted());
        s.shed_sessions = 0;
        assert!(!s.accounted());
    }
}
