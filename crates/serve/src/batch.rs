//! Size/deadline micro-batching of projected feature rows.
//!
//! Each tenant gets one [`MicroBatcher`]: sealed collection windows project
//! into flat rows here, and the batch flushes to
//! [`rhmd_ml::model::Classifier::score_batch`] either when it reaches
//! `max_rows` (size trigger) or when its oldest row has waited `deadline`
//! (latency trigger). Flat row storage means a flush hands the scorer one
//! contiguous [`rhmd_ml::matrix::FeatureMatrix`] with no per-row
//! allocation, the same layout the batch evaluation path uses — which is
//! half of the bit-identity story.

use crate::session::SessionKey;
use std::time::{Duration, Instant};

/// A flushed batch: flat rows plus the vote slots they resolve.
#[derive(Debug)]
pub struct TakenBatch {
    /// Row-major flat feature rows (`entries.len() * dims` values).
    pub flat: Vec<f64>,
    /// `(session, slot index)` per row, in row order.
    pub entries: Vec<(SessionKey, usize)>,
}

/// Accumulates projected rows for one tenant until a size or deadline
/// trigger fires.
#[derive(Debug)]
pub struct MicroBatcher {
    dims: usize,
    max_rows: usize,
    deadline: Duration,
    flat: Vec<f64>,
    entries: Vec<(SessionKey, usize)>,
    opened: Option<Instant>,
}

impl MicroBatcher {
    /// Creates a batcher for `dims`-wide rows flushing at `max_rows` or
    /// after `deadline` (measured from the first row of the batch).
    pub fn new(dims: usize, max_rows: usize, deadline: Duration) -> MicroBatcher {
        MicroBatcher {
            dims,
            max_rows: max_rows.max(1),
            deadline,
            flat: Vec::new(),
            entries: Vec::new(),
            opened: None,
        }
    }

    /// Appends one row; returns `true` when the batch hit the size trigger
    /// and must flush now.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the row width mismatches `dims`.
    pub fn push(&mut self, key: SessionKey, slot: usize, row: &[f64], now: Instant) -> bool {
        debug_assert_eq!(row.len(), self.dims);
        if self.entries.is_empty() {
            self.opened = Some(now);
        }
        self.flat.extend_from_slice(row);
        self.entries.push((key, slot));
        self.entries.len() >= self.max_rows
    }

    /// Rows currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Instant at which the deadline trigger fires, if a batch is open.
    pub fn deadline_at(&self) -> Option<Instant> {
        self.opened.map(|t| t + self.deadline)
    }

    /// Whether the deadline trigger has fired.
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline_at().is_some_and(|at| now >= at)
    }

    /// Takes the buffered batch, leaving the batcher empty.
    pub fn take(&mut self) -> TakenBatch {
        self.opened = None;
        TakenBatch {
            flat: std::mem::take(&mut self.flat),
            entries: std::mem::take(&mut self.entries),
        }
    }

    /// Row width.
    pub fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> SessionKey {
        SessionKey::new("t", s)
    }

    #[test]
    fn size_trigger_fires_at_max_rows() {
        let mut b = MicroBatcher::new(2, 3, Duration::from_secs(60));
        let now = Instant::now();
        assert!(!b.push(key("a"), 0, &[1.0, 2.0], now));
        assert!(!b.push(key("a"), 1, &[3.0, 4.0], now));
        assert!(b.push(key("b"), 0, &[5.0, 6.0], now));
        let taken = b.take();
        assert_eq!(taken.entries.len(), 3);
        assert_eq!(taken.flat, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(b.is_empty());
        assert_eq!(b.deadline_at(), None);
    }

    #[test]
    fn deadline_measured_from_first_row() {
        let mut b = MicroBatcher::new(1, 100, Duration::from_millis(10));
        let t0 = Instant::now();
        assert!(!b.expired(t0));
        b.push(key("a"), 0, &[1.0], t0);
        assert!(!b.expired(t0));
        assert!(b.expired(t0 + Duration::from_millis(10)));
        // A second row does not extend the deadline.
        b.push(key("a"), 1, &[2.0], t0 + Duration::from_millis(5));
        assert!(b.expired(t0 + Duration::from_millis(10)));
        // After a take, the batch closes.
        b.take();
        assert!(!b.expired(t0 + Duration::from_secs(1)));
    }
}
