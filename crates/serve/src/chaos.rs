//! The injectable fault plane for chaos-testing the serving stack.
//!
//! Two planes, one grammar. Both are seeded and decide every fault as a
//! pure function of `(seed, session, ...)`, so a chaos run is byte-for-byte
//! reproducible and the set of *targeted* sessions is independent of
//! batching, sharding, or timing:
//!
//! * [`EngineFaults`] — server-side faults, read from the
//!   `RHMD_SERVE_FAULTS` environment variable by `rhmd serve` (and
//!   `loadgen --chaos`). They perturb the scoring hot path itself —
//!   injected panics and non-finite scores — to exercise the poison-pill
//!   quarantine boundary in [`crate::engine`].
//! * [`WireFaults`] — client-side faults, applied by `loadgen --chaos` to
//!   the NDJSON frame stream before it reaches the parser: malformed and
//!   truncated frames, oversized payloads, duplicate and stale sequence
//!   numbers, and counter values no real PMU could produce. The parser and
//!   assembler must reject or repair every one of them with typed errors —
//!   never a panic, and never a changed verdict for an untargeted session.
//!
//! The fault grammar is `kind:rate[,kind:rate...][,seed:N]`, e.g.
//! `RHMD_SERVE_FAULTS="score_panic:0.05,score_nan:0.05,seed:7"`.

use rhmd_core::RhmdError;

/// splitmix64: the workspace-standard seed mixer (matches
/// `rhmd_bench::par` and `rhmd_ml::quant`).
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over `bytes`, folded through splitmix64 with `seed` and `salt` —
/// the deterministic coin every fault decision is derived from.
#[must_use]
pub fn fault_hash(seed: u64, salt: u64, bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h ^ splitmix64(seed ^ salt.rotate_left(17)))
}

/// Converts a hash to a uniform probability in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn parse_rate(kind: &str, v: &str) -> Result<f64, RhmdError> {
    let rate: f64 = v
        .parse()
        .map_err(|_| RhmdError::parse("fault spec", format!("{kind}: bad rate '{v}'")))?;
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(RhmdError::parse(
            "fault spec",
            format!("{kind}: rate must be in [0, 1], got {rate}"),
        ));
    }
    Ok(rate)
}

/// Server-side (engine) fault plane: deterministic, session-targeted
/// perturbations of the scoring path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineFaults {
    /// Probability that a session's rows panic inside `score_batch`.
    pub score_panic: f64,
    /// Probability that a session's scores come back non-finite.
    pub score_nan: f64,
    /// Seed for all fault decisions.
    pub seed: u64,
}

impl EngineFaults {
    /// Parses a `kind:rate[,seed:N]` spec.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Parse`] on unknown kinds or out-of-range rates.
    pub fn parse(spec: &str) -> Result<EngineFaults, RhmdError> {
        let mut f = EngineFaults::default();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (kind, v) = item.split_once(':').ok_or_else(|| {
                RhmdError::parse("fault spec", format!("'{item}' is not kind:value"))
            })?;
            match kind.trim() {
                "score_panic" => f.score_panic = parse_rate(kind, v.trim())?,
                "score_nan" => f.score_nan = parse_rate(kind, v.trim())?,
                "seed" => {
                    f.seed = v.trim().parse().map_err(|_| {
                        RhmdError::parse("fault spec", format!("seed: bad value '{v}'"))
                    })?;
                }
                other => {
                    return Err(RhmdError::parse(
                        "fault spec",
                        format!(
                            "unknown engine fault '{other}' \
                             (known: score_panic, score_nan, seed)"
                        ),
                    ))
                }
            }
        }
        Ok(f)
    }

    /// Reads the plane from `RHMD_SERVE_FAULTS` (absent/empty = no faults).
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Parse`] when the variable is set but malformed
    /// — a misconfigured chaos run must fail loudly at startup, not
    /// silently serve without faults.
    pub fn from_env() -> Result<EngineFaults, RhmdError> {
        match std::env::var("RHMD_SERVE_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => EngineFaults::parse(&spec),
            _ => Ok(EngineFaults::default()),
        }
    }

    /// Whether any fault kind is enabled.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.score_panic > 0.0 || self.score_nan > 0.0
    }

    fn targets(&self, rate: f64, salt: u64, tenant: &str, session: &str) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let mut key = Vec::with_capacity(tenant.len() + session.len() + 1);
        key.extend_from_slice(tenant.as_bytes());
        key.push(0xff);
        key.extend_from_slice(session.as_bytes());
        unit(fault_hash(self.seed, salt, &key)) < rate
    }

    /// Whether scoring any row of `(tenant, session)` must panic.
    #[must_use]
    pub fn panics(&self, tenant: &str, session: &str) -> bool {
        self.targets(self.score_panic, 0x70616e, tenant, session)
    }

    /// Whether `(tenant, session)`'s scores come back as NaN.
    #[must_use]
    pub fn nans(&self, tenant: &str, session: &str) -> bool {
        self.targets(self.score_nan, 0x6e616e, tenant, session)
    }

    /// Whether `(tenant, session)` is targeted by any enabled fault kind —
    /// i.e. expected to end quarantined rather than decided.
    #[must_use]
    pub fn quarantines(&self, tenant: &str, session: &str) -> bool {
        self.panics(tenant, session) || self.nans(tenant, session)
    }
}

/// Client-side (wire) fault plane: deterministic per-frame mutations of an
/// NDJSON session stream.
///
/// Every mutation is *recoverable by construction*: garbage frames draw a
/// typed error and are followed by the intact frame (modelling a
/// retransmit), and duplicate/stale frames are exact copies the server's
/// sequence filter drops — so a hardened server produces bit-identical
/// verdicts for every session, targeted or not. What the faults actually
/// test is that the parser, frame reader, and assembler *stay* hardened.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFaults {
    /// Fraction of sessions targeted by wire faults at all.
    pub target_rate: f64,
    /// P(frame is sent twice) for targeted sessions.
    pub dup: f64,
    /// P(the session's first frame is replayed after this one) — a stale,
    /// out-of-order re-delivery the sequence filter must drop.
    pub stale: f64,
    /// P(a malformed `{ nope` garbage frame precedes this one).
    pub malformed: f64,
    /// P(a truncated copy of this frame precedes the intact one).
    pub truncate: f64,
    /// P(an oversized (> frame cap) junk frame precedes this one).
    pub oversize: f64,
    /// P(a copy with absurd/non-representable counter values precedes the
    /// intact frame) — floats where u64s belong, and counters past
    /// [`crate::proto::MAX_COUNTER`].
    pub nonfinite: f64,
    /// Seed for all per-frame decisions.
    pub seed: u64,
}

impl Default for WireFaults {
    fn default() -> WireFaults {
        WireFaults {
            target_rate: 0.0,
            dup: 0.0,
            stale: 0.0,
            malformed: 0.0,
            truncate: 0.0,
            oversize: 0.0,
            nonfinite: 0.0,
            seed: 0,
        }
    }
}

impl WireFaults {
    /// The `loadgen --chaos` default: half the sessions targeted, every
    /// fault kind enabled at a visible rate.
    #[must_use]
    pub fn standard(seed: u64) -> WireFaults {
        WireFaults {
            target_rate: 0.5,
            dup: 0.10,
            stale: 0.05,
            malformed: 0.05,
            truncate: 0.05,
            oversize: 0.02,
            nonfinite: 0.05,
            seed,
        }
    }

    /// Parses a `kind:rate[,seed:N]` spec (kinds: `target`, `dup`,
    /// `stale`, `malformed`, `truncate`, `oversize`, `nonfinite`).
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Parse`] on unknown kinds or bad rates.
    pub fn parse(spec: &str) -> Result<WireFaults, RhmdError> {
        let mut f = WireFaults::default();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (kind, v) = item.split_once(':').ok_or_else(|| {
                RhmdError::parse("chaos spec", format!("'{item}' is not kind:value"))
            })?;
            let v = v.trim();
            match kind.trim() {
                "target" => f.target_rate = parse_rate(kind, v)?,
                "dup" => f.dup = parse_rate(kind, v)?,
                "stale" => f.stale = parse_rate(kind, v)?,
                "malformed" => f.malformed = parse_rate(kind, v)?,
                "truncate" => f.truncate = parse_rate(kind, v)?,
                "oversize" => f.oversize = parse_rate(kind, v)?,
                "nonfinite" => f.nonfinite = parse_rate(kind, v)?,
                "seed" => {
                    f.seed = v.parse().map_err(|_| {
                        RhmdError::parse("chaos spec", format!("seed: bad value '{v}'"))
                    })?;
                }
                other => {
                    return Err(RhmdError::parse(
                        "chaos spec",
                        format!("unknown wire fault '{other}'"),
                    ))
                }
            }
        }
        Ok(f)
    }

    /// Whether `session` receives wire faults at all.
    #[must_use]
    pub fn targets_session(&self, session: &str) -> bool {
        self.target_rate > 0.0
            && unit(fault_hash(self.seed, 0x746774, session.as_bytes())) < self.target_rate
    }

    fn roll(&self, session: &str, seq: u64, salt: u64) -> f64 {
        let mut key = Vec::with_capacity(session.len() + 8);
        key.extend_from_slice(session.as_bytes());
        key.extend_from_slice(&seq.to_le_bytes());
        unit(fault_hash(self.seed, salt, &key))
    }

    /// Expands one intact frame into the (possibly faulted) frame sequence
    /// actually sent. `first_frame` is the session's frame 0, replayed for
    /// stale-delivery faults. The intact frame always survives, so the
    /// *parsed* stream of a hardened server equals the clean stream.
    #[must_use]
    pub fn mutate(
        &self,
        session: &str,
        seq: u64,
        frame: &str,
        first_frame: &str,
    ) -> Vec<String> {
        if !self.targets_session(session) {
            return vec![frame.to_owned()];
        }
        let mut out = Vec::with_capacity(2);
        if self.roll(session, seq, 0x6d616c) < self.malformed {
            out.push("{\"Event\": nope".to_owned());
        }
        if self.roll(session, seq, 0x747263) < self.truncate && frame.len() > 2 {
            let cut = (frame.len() / 2..frame.len())
                .find(|&i| frame.is_char_boundary(i))
                .unwrap_or(frame.len());
            out.push(frame[..cut].to_owned());
        }
        if self.roll(session, seq, 0x6f7673) < self.oversize {
            let mut junk = String::with_capacity(crate::proto::MAX_FRAME_BYTES + 64);
            junk.push_str("{\"Event\":\"");
            while junk.len() <= crate::proto::MAX_FRAME_BYTES {
                junk.push_str("chaoschaoschaoschaos");
            }
            junk.push_str("\"}");
            out.push(junk);
        }
        if self.roll(session, seq, 0x6e6674) < self.nonfinite {
            // Floats where u64 counters belong: serde must reject them.
            out.push(frame.replacen("\"instructions\":", "\"instructions\":1e999,\"x\":", 1));
        }
        out.push(frame.to_owned());
        if self.roll(session, seq, 0x647570) < self.dup {
            out.push(frame.to_owned());
        }
        if seq > 0 && self.roll(session, seq, 0x73746c) < self.stale {
            out.push(first_frame.to_owned());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_spec_round_trip_and_errors() {
        let f = EngineFaults::parse("score_panic:0.25, score_nan:0.5, seed:9").unwrap();
        assert_eq!(f.score_panic, 0.25);
        assert_eq!(f.score_nan, 0.5);
        assert_eq!(f.seed, 9);
        assert!(f.is_active());
        assert!(!EngineFaults::parse("").unwrap().is_active());
        assert!(EngineFaults::parse("score_panic:2.0").is_err());
        assert!(EngineFaults::parse("bogus:0.1").is_err());
        assert!(EngineFaults::parse("score_panic").is_err());
    }

    #[test]
    fn targeting_is_deterministic_and_rate_shaped() {
        let f = EngineFaults {
            score_panic: 0.5,
            score_nan: 0.0,
            seed: 42,
        };
        let hits = (0..1000)
            .filter(|i| f.panics("t0", &format!("s{i}")))
            .count();
        assert!((300..700).contains(&hits), "rate far off: {hits}");
        for i in 0..50 {
            let s = format!("s{i}");
            assert_eq!(f.panics("t0", &s), f.panics("t0", &s));
        }
        // Zero rate targets nothing; quarantine set is the union.
        assert!(!f.nans("t0", "s1"));
        assert_eq!(f.quarantines("t0", "s1"), f.panics("t0", "s1"));
    }

    #[test]
    fn wire_mutation_keeps_the_intact_frame() {
        let f = WireFaults {
            target_rate: 1.0,
            dup: 1.0,
            stale: 1.0,
            malformed: 1.0,
            truncate: 1.0,
            oversize: 1.0,
            nonfinite: 1.0,
            seed: 1,
        };
        let frames = f.mutate("s0", 3, "{\"Event\":{\"instructions\":5}}", "FIRST");
        assert!(frames.contains(&"{\"Event\":{\"instructions\":5}}".to_owned()));
        assert!(frames.contains(&"FIRST".to_owned()));
        assert!(frames.iter().any(|l| l.len() > crate::proto::MAX_FRAME_BYTES));
        assert!(frames.iter().any(|l| l.contains("1e999")));
        // Untargeted sessions pass through untouched.
        let clean = WireFaults {
            target_rate: 0.0,
            ..f
        };
        assert_eq!(clean.mutate("s0", 3, "x", "y"), vec!["x".to_owned()]);
    }

    #[test]
    fn wire_spec_parses() {
        let f = WireFaults::parse("target:1.0,dup:0.5,seed:3").unwrap();
        assert_eq!(f.target_rate, 1.0);
        assert_eq!(f.dup, 0.5);
        assert_eq!(f.seed, 3);
        assert!(WireFaults::parse("dup:nope").is_err());
        assert!(WireFaults::parse("warp:0.1").is_err());
    }
}
