//! Per-session state: streaming, gap-tolerant assembly of subwindows into
//! collection windows, plus the vote ledger a session's verdict is built
//! from.
//!
//! [`WindowAssembler`] is the streaming twin of
//! [`rhmd_features::window::aggregate_with_gaps`]: feeding it a subwindow
//! stream one element at a time yields exactly the windows the batch
//! aggregator yields on the whole slice (a property test pins this), which
//! is what makes `rhmd serve` replay verdicts bit-identical to the batch
//! `rhmd evaluate` path.

use rhmd_features::window::{RawWindow, SUBWINDOW};
use std::sync::Arc;
use std::time::Instant;

/// Identity of one program session within a tenant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// The tenant owning the session.
    pub tenant: Arc<str>,
    /// The session id, unique within the tenant.
    pub session: Arc<str>,
}

impl SessionKey {
    /// Builds a key from borrowed names.
    pub fn new(tenant: &str, session: &str) -> SessionKey {
        SessionKey {
            tenant: Arc::from(tenant),
            session: Arc::from(session),
        }
    }

    /// Stable shard index for this key (FNV-1a over tenant + session).
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards > 0);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self
            .tenant
            .as_bytes()
            .iter()
            .chain([0xffu8].iter())
            .chain(self.session.as_bytes())
        {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % shards as u64) as usize
    }
}

/// Outcome of sealing one collection-window chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sealed {
    /// The merged window carries enough instructions to be judged.
    Window(Box<RawWindow>),
    /// The chunk fell below the `min_fill` floor (or was empty) and is
    /// dropped without a vote — exactly what `aggregate_with_gaps` does.
    Dropped,
}

/// Streaming aggregation of subwindows into `period`-sized collection
/// windows with `min_fill` gap tolerance.
#[derive(Debug, Clone)]
pub struct WindowAssembler {
    period: u32,
    per: usize,
    min_fill: f64,
    chunk: RawWindow,
    count: usize,
}

impl WindowAssembler {
    /// Creates an assembler for `period` (a positive multiple of
    /// [`SUBWINDOW`]) and gap-tolerance floor `min_fill`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or not a multiple of [`SUBWINDOW`] —
    /// callers validate specs before building sessions.
    pub fn new(period: u32, min_fill: f64) -> WindowAssembler {
        assert!(
            period > 0 && period.is_multiple_of(SUBWINDOW),
            "period {period} must be a positive multiple of {SUBWINDOW}"
        );
        WindowAssembler {
            period,
            per: (period / SUBWINDOW) as usize,
            min_fill,
            chunk: RawWindow::default(),
            count: 0,
        }
    }

    /// Feeds one subwindow; returns the sealed chunk when this subwindow
    /// completes one (every `per` received subwindows, mirroring the batch
    /// aggregator's `chunks(per)` — chunk position is by *received count*,
    /// so a faulted stream assembles exactly as its batch counterpart).
    pub fn push(&mut self, sub: &RawWindow) -> Option<Sealed> {
        self.chunk.merge(sub);
        self.count += 1;
        if self.count == self.per {
            Some(self.seal())
        } else {
            None
        }
    }

    /// Seals the trailing partial chunk at end-of-stream, if any subwindows
    /// are pending. Subject to the same `min_fill` filter as full chunks
    /// (so with `min_fill = 1.0` a partial tail drops, matching strict
    /// aggregation).
    pub fn finish(&mut self) -> Option<Sealed> {
        if self.count == 0 {
            return None;
        }
        Some(self.seal())
    }

    /// Rebuilds an assembler mid-stream from a snapshot's `(chunk, count)`
    /// pair, as captured by [`WindowAssembler::chunk_state`]. The resumed
    /// assembler continues the stream exactly where the snapshot left it —
    /// the foundation of bit-identical shard recovery.
    ///
    /// # Panics
    ///
    /// Panics if `period` is invalid (same contract as
    /// [`WindowAssembler::new`]) — snapshots only ever carry validated
    /// configs.
    pub fn resume(period: u32, min_fill: f64, chunk: RawWindow, count: usize) -> WindowAssembler {
        let mut asm = WindowAssembler::new(period, min_fill);
        asm.chunk = chunk;
        asm.count = count.min(asm.per.saturating_sub(1));
        asm
    }

    /// The in-flight partial chunk and how many subwindows it has merged —
    /// everything a snapshot needs to resume assembly.
    pub fn chunk_state(&self) -> (&RawWindow, usize) {
        (&self.chunk, self.count)
    }

    fn seal(&mut self) -> Sealed {
        let merged = std::mem::take(&mut self.chunk);
        self.count = 0;
        let fill = merged.instructions as f64 / f64::from(self.period);
        if merged.instructions > 0 && fill >= self.min_fill {
            Sealed::Window(Box::new(merged))
        } else {
            rhmd_obs::incr("serve.windows.gap_dropped");
            Sealed::Dropped
        }
    }
}

/// One vote slot in a session's ledger: reserved when a window seals,
/// resolved when its micro-batch flushes (or immediately, for abstaining
/// windows that never reach the scorer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Reserved; a batch flush will fill it.
    Pending,
    /// Resolved: `Some(flagged)` vote or `None` abstention.
    Done(Option<bool>),
}

/// Live state of one session on its owning shard worker.
#[derive(Debug)]
pub struct SessionState {
    /// Streaming window assembly.
    pub assembler: WindowAssembler,
    /// Per-collection-window vote ledger, in window order.
    pub slots: Vec<Slot>,
    /// Next expected subwindow sequence number.
    pub next_seq: u64,
    /// Subwindow sequence gaps observed (missed deadlines upstream).
    pub gap_events: u64,
    /// Stale or duplicate frames dropped by the sequence filter.
    pub stale_frames: u64,
    /// Last time any message touched this session (watchdog input).
    pub last_activity: Instant,
    /// Earliest client-requested verdict deadline, if any frame carried
    /// one; past it the session finalizes as `abstain`/`deadline`.
    pub deadline_at: Option<Instant>,
    /// The connection that opened the session (verdict routing).
    pub conn: u64,
}

impl SessionState {
    /// Fresh state for a session first seen now.
    pub fn new(period: u32, min_fill: f64, conn: u64, now: Instant) -> SessionState {
        SessionState {
            assembler: WindowAssembler::new(period, min_fill),
            slots: Vec::new(),
            next_seq: 0,
            gap_events: 0,
            stale_frames: 0,
            last_activity: now,
            deadline_at: None,
            conn,
        }
    }

    /// Sequence admission filter: `Some(gap)` admits the frame (recording
    /// how many sequence numbers were skipped), `None` drops it as a stale
    /// or duplicate re-delivery. Dropping rather than aborting is what
    /// makes redelivered streams assemble bit-identically to clean ones —
    /// the batch aggregator only ever sees each subwindow once.
    pub fn admit_seq(&mut self, seq: u64) -> Option<u64> {
        if seq < self.next_seq {
            self.stale_frames += 1;
            return None;
        }
        let gap = seq - self.next_seq;
        self.gap_events += gap;
        self.next_seq = seq + 1;
        Some(gap)
    }

    /// Tightens the session's verdict deadline to `at` if it is earlier
    /// than any previously requested deadline.
    pub fn tighten_deadline(&mut self, at: Instant) {
        self.deadline_at = Some(match self.deadline_at {
            Some(cur) => cur.min(at),
            None => at,
        });
    }

    /// Whether the client-requested verdict deadline has passed.
    pub fn past_deadline(&self, now: Instant) -> bool {
        self.deadline_at.is_some_and(|at| now >= at)
    }

    /// Resolved votes, in window order.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any slot is still pending — callers flush the
    /// session's micro-batch before finalizing.
    pub fn votes(&self) -> Vec<Option<bool>> {
        self.slots
            .iter()
            .map(|slot| match slot {
                Slot::Done(v) => *v,
                Slot::Pending => {
                    debug_assert!(false, "finalize before batch flush");
                    None
                }
            })
            .collect()
    }

    /// Resolved votes with pending slots degraded to abstentions — the
    /// quarantine/recovery path, where a slot's micro-batch may have died
    /// with its worker and will never flush.
    pub fn votes_lossy(&self) -> Vec<Option<bool>> {
        self.slots
            .iter()
            .map(|slot| match slot {
                Slot::Done(v) => *v,
                Slot::Pending => None,
            })
            .collect()
    }

    /// Captures everything needed to rebuild this session on a restarted
    /// shard. Pending slots are preserved as pending; [`restore`] degrades
    /// them to abstentions because their in-flight batch died unflushed.
    ///
    /// [`restore`]: SessionState::restore
    pub fn snapshot(&self) -> SessionSnapshot {
        let (chunk, count) = self.assembler.chunk_state();
        SessionSnapshot {
            chunk: chunk.clone(),
            count,
            slots: self.slots.clone(),
            next_seq: self.next_seq,
            gap_events: self.gap_events,
            stale_frames: self.stale_frames,
            deadline_at: self.deadline_at,
            conn: self.conn,
        }
    }

    /// Rebuilds a session from a snapshot on a restarted shard. Slots that
    /// were pending at capture time resolve to abstentions (their batch
    /// never flushed); slots resolved before the snapshot keep their votes,
    /// so a kill after a full batch flush + snapshot sync recovers
    /// bit-identically.
    pub fn restore(period: u32, min_fill: f64, snap: SessionSnapshot, now: Instant) -> SessionState {
        SessionState {
            assembler: WindowAssembler::resume(period, min_fill, snap.chunk, snap.count),
            slots: snap
                .slots
                .into_iter()
                .map(|slot| match slot {
                    Slot::Pending => Slot::Done(None),
                    done => done,
                })
                .collect(),
            next_seq: snap.next_seq,
            gap_events: snap.gap_events,
            stale_frames: snap.stale_frames,
            last_activity: now,
            deadline_at: snap.deadline_at,
            conn: snap.conn,
        }
    }
}

/// Point-in-time copy of one session's recoverable state, held by the
/// engine's in-memory snapshot store and replayed into a restarted shard.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// In-flight partial collection-window chunk.
    pub chunk: RawWindow,
    /// Subwindows merged into `chunk` so far.
    pub count: usize,
    /// Vote ledger at capture time.
    pub slots: Vec<Slot>,
    /// Next expected subwindow sequence number.
    pub next_seq: u64,
    /// Sequence gaps observed so far.
    pub gap_events: u64,
    /// Stale/duplicate frames dropped so far.
    pub stale_frames: u64,
    /// Client-requested verdict deadline, if any.
    pub deadline_at: Option<Instant>,
    /// The connection that opened the session.
    pub conn: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_features::window::aggregate_with_gaps;

    fn sub(instructions: u64) -> RawWindow {
        let mut w = RawWindow {
            instructions,
            ..RawWindow::default()
        };
        w.opcode_counts[0] = instructions;
        w
    }

    fn streamed(subs: &[RawWindow], period: u32, min_fill: f64) -> Vec<RawWindow> {
        let mut asm = WindowAssembler::new(period, min_fill);
        let mut out = Vec::new();
        for s in subs {
            if let Some(Sealed::Window(w)) = asm.push(s) {
                out.push(*w);
            }
        }
        if let Some(Sealed::Window(w)) = asm.finish() {
            out.push(*w);
        }
        out
    }

    #[test]
    fn matches_batch_aggregation_on_clean_and_gappy_streams() {
        let clean: Vec<RawWindow> = (0..13).map(|_| sub(u64::from(SUBWINDOW))).collect();
        let mut gappy = clean.clone();
        gappy[3] = sub(200); // short read
        gappy[7] = sub(3_500); // coalesced read
        for subs in [&clean, &gappy] {
            for min_fill in [1.0, 0.5, 0.0] {
                assert_eq!(
                    streamed(subs, 5_000, min_fill),
                    aggregate_with_gaps(subs, 5_000, min_fill),
                    "min_fill {min_fill}"
                );
            }
        }
    }

    #[test]
    fn partial_tail_drops_at_full_fill() {
        let subs: Vec<RawWindow> = (0..7).map(|_| sub(u64::from(SUBWINDOW))).collect();
        // 7 subwindows at period 5k: one full window, tail of 2 drops.
        assert_eq!(streamed(&subs, 5_000, 1.0).len(), 1);
        // With a permissive floor the 2k-instruction tail survives.
        assert_eq!(streamed(&subs, 5_000, 0.3).len(), 2);
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        let a = SessionKey::new("tenant-a", "s1");
        let b = SessionKey::new("tenant-a", "s1");
        assert_eq!(a, b);
        assert_eq!(a.shard(7), b.shard(7));
        for i in 0..50 {
            let k = SessionKey::new("t", &format!("s{i}"));
            assert!(k.shard(4) < 4);
        }
        // The separator byte keeps (tenant, session) concatenation
        // ambiguity out of the shard hash.
        let x = SessionKey::new("ab", "c");
        let y = SessionKey::new("a", "bc");
        assert_ne!((x.tenant.len(), x.shard(1 << 30)), (y.tenant.len(), y.shard(1 << 30)));
    }

    #[test]
    fn vote_ledger_resolves() {
        let mut s = SessionState::new(5_000, 1.0, 0, Instant::now());
        s.slots.push(Slot::Done(Some(true)));
        s.slots.push(Slot::Done(None));
        assert_eq!(s.votes(), vec![Some(true), None]);
    }

    #[test]
    fn seq_filter_drops_stale_and_duplicate_frames() {
        let mut s = SessionState::new(5_000, 1.0, 0, Instant::now());
        assert_eq!(s.admit_seq(0), Some(0));
        assert_eq!(s.admit_seq(0), None, "duplicate dropped");
        assert_eq!(s.admit_seq(1), Some(0));
        assert_eq!(s.admit_seq(0), None, "stale dropped");
        assert_eq!(s.admit_seq(4), Some(2), "gap admitted and counted");
        assert_eq!(s.admit_seq(3), None, "out-of-order behind cursor dropped");
        assert_eq!((s.stale_frames, s.gap_events, s.next_seq), (3, 2, 5));
    }

    #[test]
    fn deadline_tightens_to_earliest() {
        let now = Instant::now();
        let mut s = SessionState::new(5_000, 1.0, 0, now);
        assert!(!s.past_deadline(now));
        s.tighten_deadline(now + std::time::Duration::from_millis(100));
        s.tighten_deadline(now + std::time::Duration::from_millis(500));
        assert_eq!(s.deadline_at, Some(now + std::time::Duration::from_millis(100)));
        assert!(s.past_deadline(now + std::time::Duration::from_millis(100)));
    }

    #[test]
    fn snapshot_restore_resumes_assembly_exactly() {
        let subs: Vec<RawWindow> = (0..7).map(|i| sub(1_000 + i)).collect();
        // Straight-through assembly.
        let direct = streamed(&subs, 5_000, 0.0);
        // Snapshot after 3 subwindows, restore, continue with the rest.
        let mut s = SessionState::new(5_000, 0.0, 7, Instant::now());
        let mut resumed_out = Vec::new();
        for w in &subs[..3] {
            if let Some(Sealed::Window(w)) = s.assembler.push(w) {
                resumed_out.push(*w);
            }
        }
        s.slots.push(Slot::Done(Some(false)));
        s.slots.push(Slot::Pending);
        let snap = s.snapshot();
        let mut r = SessionState::restore(5_000, 0.0, snap, Instant::now());
        assert_eq!(r.conn, 7);
        assert_eq!(
            r.slots,
            vec![Slot::Done(Some(false)), Slot::Done(None)],
            "pending slots degrade to abstentions on restore"
        );
        for w in &subs[3..] {
            if let Some(Sealed::Window(w)) = r.assembler.push(w) {
                resumed_out.push(*w);
            }
        }
        if let Some(Sealed::Window(w)) = r.assembler.finish() {
            resumed_out.push(*w);
        }
        assert_eq!(resumed_out, direct, "kill/restore does not perturb windows");
    }
}
